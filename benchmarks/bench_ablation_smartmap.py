"""Ablation A4: SmartMap-style intra-node MPI.

Paper (footnote 1): "this intra-node communication overhead can
potentially be reduced if the SmartMap mechanism [3] is added to the
multicore implementation of [the] MPI runtime library."
"""

from __future__ import annotations

from repro.bench.figures import ablation_smartmap


def test_ablation_smartmap(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ablation_smartmap), rounds=1, iterations=1
    )
    speedups = result.series("speedup")
    assert all(s >= 1.0 for s in speedups)
    assert speedups[0] > 1.01, "SmartMap should help most when nodes are few"
