"""Extension experiment: breadth-first search.

The paper's introduction names graph algorithms first among the
unstructured applications motivating PPM, but never measures one.
This bench regenerates the numbers quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.bench.figures import ext_bfs


def test_ext_bfs(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ext_bfs), rounds=1, iterations=1
    )
    ratios = result.series("ppm/mpi")
    # PPM must win at scale; BFS is latency-bound so absolute strong
    # scaling is not expected of either version.
    assert ratios[-1] < 0.8
    assert ratios[-1] < ratios[0]
