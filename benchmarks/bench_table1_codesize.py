"""Table 1: application code size (number of lines), PPM vs MPI.

Paper: CG 161 vs 733; Matrix Generation 424 vs 744; Barnes-Hut 499 vs
N/A — "the PPM implementations are much smaller (and simpler) than the
MPI implementations of the same applications."
"""

from __future__ import annotations

from repro.bench.codesize import table1_codesize


def test_table1_codesize(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(table1_codesize), rounds=1, iterations=1
    )
    for row in result.rows:
        assert row["ppm_loc"] > 0 and row["mpi_loc"] > 0
        if row["application"] == "Barnes Hut":
            continue  # the paper had no MPI Barnes-Hut to compare
        assert row["mpi_loc"] > 1.5 * row["ppm_loc"], (
            f"{row['application']}: MPI should need substantially more code"
        )
