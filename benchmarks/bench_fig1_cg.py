"""Figure 1: Conjugate Gradient solver, PPM vs tuned MPI.

Paper (section 4.5): "PPM version started out much slower than the MPI
version when there is only one node (4 cores) but catches up quickly
as the number of nodes increases."
"""

from __future__ import annotations

from repro.bench.figures import fig1_cg

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def test_fig1_cg(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(fig1_cg, NODE_COUNTS), rounds=1, iterations=1
    )
    ratios = result.series("ppm/mpi")
    # Shape assertions — the paper's qualitative claims.
    assert ratios[0] > 2.0, "PPM should be much slower on one node"
    assert ratios[-1] < 1.1, "PPM should have (nearly) caught up at scale"
    assert ratios == sorted(ratios, reverse=True) or ratios[-1] < 0.5 * ratios[0], (
        "the PPM/MPI ratio should fall as nodes increase"
    )
