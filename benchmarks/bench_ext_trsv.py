"""Extension experiment: sparse triangular solve — an honest negative.

The paper's introduction cites [20] (parallel ICCG triangular solve)
as "unsuitable for MPI".  Measured on this kernel, a hand-tuned
asynchronous MPI push plan beats strict phase-per-wavefront PPM,
because PPM pays a cluster barrier on every wavefront level.  The
bench locks in that finding so the limitation stays documented.
"""

from __future__ import annotations

from repro.bench.figures import ext_trsv


def test_ext_trsv(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ext_trsv), rounds=1, iterations=1
    )
    ratios = result.series("ppm/mpi")
    # The documented limitation: tuned MPI wins on multi-node runs.
    assert all(r > 1.0 for r in ratios[1:])