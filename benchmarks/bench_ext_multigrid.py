"""Extension experiment: geometric multigrid.

"Multi-grid" is on the paper's introduction list of motivating
unstructured applications; the bench records how both programming
models behave under the V-cycle's coarse-level synchronisation
squeeze.
"""

from __future__ import annotations

from repro.bench.figures import ext_multigrid


def test_ext_multigrid(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ext_multigrid), rounds=1, iterations=1
    )
    # Both versions are latency-bound at depth; the assertion pins the
    # qualitative outcome: PPM at least matches MPI at scale.
    ratios = result.series("ppm/mpi")
    assert ratios[-1] < 1.2
