"""Ablation A5: runtime load balancing via processor virtualisation.

Paper (section 3): "Virtualization of processors allows for maximal
expression of inherent parallelism ... and therefore provides
opportunities for the compiler and runtime system to do optimizations
such as load balancing."  More VPs per core give the balancer more
room, so the speedup should grow with the virtualisation factor.
"""

from __future__ import annotations

from repro.bench.figures import ablation_loadbalance


def test_ablation_loadbalance(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ablation_loadbalance), rounds=1, iterations=1
    )
    speedups = result.series("speedup")
    assert all(s >= 1.0 for s in speedups)
    assert max(speedups) > 1.2, "balancing must pay off on skewed work"
