"""Diagnostics overhead: the phase-conflict sanitizer's host-time cost.

Not a paper figure — this guards the analysis subsystem's contract:
``sanitize=None`` (the default) must stay effectively free, and
``sanitize="warn"`` must stay cheap enough to leave on during
development runs.  The sweep also doubles as an end-to-end regression
that the shipped CG app is conflict-free under the sanitizer.
"""

from __future__ import annotations

from repro.bench.sanitizer_overhead import sanitizer_overhead


def test_sanitizer_overhead(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(sanitizer_overhead), rounds=1, iterations=1
    )
    for findings in result.series("findings"):
        assert findings == 0, "shipped CG app must be conflict-free"
    for pct in result.series("overhead_pct"):
        # warn mode replays footprints at every commit; anything under
        # 3x is acceptable for an opt-in debugging tool.  (The bound
        # was 2x before the hot-path overhaul; the sanitizer's absolute
        # cost went *down* with it, but the unsanitized baseline shrank
        # by ~3x, so the relative overhead grew.)
        assert pct < 200.0, "sanitizer overhead exceeded 3x"
