"""Observability regression: traced CG traffic and bundling ratio.

Not a paper figure — this pins down the observability layer's headline
numbers: a traced CG run must show the runtime bundling fine-grained
remote accesses into far fewer wire messages (the section 3.3 claim),
with a well-formed report (overlap fraction in [0, 1], bytes conserved
— the latter enforced inside ``RunReport.from_events``).
"""

from __future__ import annotations

from repro.bench.obs_traffic import obs_cg_traffic


def test_obs_cg_traffic(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(obs_cg_traffic), rounds=1, iterations=1
    )
    for ratio in result.series("bundling_ratio"):
        assert ratio > 10.0, "bundling must beat one-message-per-element by >10x"
    for msgs, unbundled in zip(
        result.series("bundled_msgs"), result.series("unbundled_msgs")
    ):
        assert 0 < msgs < unbundled
    for pct in result.series("overlap_pct"):
        assert 0.0 <= pct <= 100.0
