"""Figure 3: Barnes-Hut simulation.

Paper (section 4.5): "The PPM program scales well as the number of
nodes increases."  The paper had no MPI Barnes-Hut (Table 1: N/A); the
tree-replication method it criticises ([9]) is included as a reference
on the smaller node counts.
"""

from __future__ import annotations

from repro.bench.figures import fig3_barneshut

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def test_fig3_barneshut(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(fig3_barneshut, NODE_COUNTS), rounds=1, iterations=1
    )
    times = result.series("ppm_s")
    # PPM scales well: time falls monotonically over the first doublings
    # and ends far below the single-node time.
    assert times[1] < times[0]
    assert times[2] < times[1]
    assert min(times) < 0.4 * times[0]
