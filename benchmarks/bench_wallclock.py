"""Wall-clock trajectory: host seconds of the runtime hot path.

Unlike every other benchmark here, this one measures the *host* clock,
not the simulated one: hot_path="legacy" (copy-on-read, one-op-at-a-
time commit replay) against hot_path="fast" (zero-copy snapshot reads,
vectorized commit, sequential lock elision) on the Figure-1 CG sweep,
BFS, multigrid, and four per-access-kind microbenchmarks.  Simulated
times and committed results are bitwise identical between the modes —
the property tests assert that; this benchmark shows what the fast
path buys in real time.

The CI-sized run below uses ``small=True`` and does not touch the
committed ``BENCH_wallclock.json`` (that file records the full-size
run plus the same-window seed-revision baseline; regenerate it with
``python -m repro.bench wallclock``).
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.wallclock import wallclock


def _run():
    # Not record_sweep: the CI-sized numbers must not overwrite the
    # committed full-size table under bench_results/.
    result = wallclock(small=True, json_path=None)
    print("\n" + format_table(result))
    return result


def test_wallclock(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    workloads = result.series("workload")
    assert workloads == [
        "cg_fig1",
        "bfs",
        "multigrid",
        "micro_read",
        "micro_write",
        "micro_accumulate",
        "micro_commit",
    ]
    by_name = {row["workload"]: row for row in result.rows}
    # Shape assertion, deliberately loose (single-core CI boxes are
    # noisy): the fast path must not *lose* to legacy on the headline
    # CG workload, where the full-size gap is >2x in-repo and >3x
    # against the recorded seed baseline.
    assert by_name["cg_fig1"]["speedup"] > 1.0, (
        "fast hot path slower than legacy on the Figure-1 CG workload"
    )
    for mode in ("read", "write", "accumulate", "commit"):
        row = by_name[f"micro_{mode}"]
        assert row["fast_acc/s"] > 0 and row["legacy_acc/s"] > 0
