"""Ablation A3: communication/computation overlap and NIC scheduling.

Paper (section 3.3): the runtime "schedul[es] communication needs and
computation tasks to enable (automatic) overlap of computation and
communication; and ... reduce[s] contention of multiple cores
competing for network resources."
"""

from __future__ import annotations

from repro.bench.figures import ablation_overlap


def test_ablation_overlap(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ablation_overlap), rounds=1, iterations=1
    )
    speedups = result.series("speedup")
    assert all(s >= 1.0 for s in speedups)
    assert speedups[-1] > 1.02, "the optimisations must matter at scale"
