"""Figure 2: multiscale collocation matrix generation, PPM vs MPI.

Paper (section 4.5): "The PPM program consistently performs better
than the MPI implementation ... The PPM program scales better as the
number of nodes increases."
"""

from __future__ import annotations

from repro.bench.figures import fig2_matgen

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def test_fig2_matgen(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(fig2_matgen, NODE_COUNTS), rounds=1, iterations=1
    )
    ratios = result.series("ppm/mpi")
    assert max(ratios) < 1.25, "PPM should be at least competitive everywhere"
    assert ratios[-1] < 0.5, "PPM should scale clearly better"
    assert ratios[-1] < ratios[0], "the gap should widen with node count"
