"""Ablation A2: message bundling.

Paper (section 3.3): "the PPM runtime library is capable of bundling
up fine-grained remote shared data accesses into coarse-grained
packages in order to reduce overall communication overhead."  The
ablation sends one message per element instead.
"""

from __future__ import annotations

from repro.bench.figures import ablation_bundling


def test_ablation_bundling(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ablation_bundling), rounds=1, iterations=1
    )
    for speedup in result.series("speedup"):
        assert speedup > 3.0, "bundling must be a large win on fine-grained access"
