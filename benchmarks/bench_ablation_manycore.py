"""Ablation A1: the manycore outlook.

Paper (conclusion): "we believe the benefits of the PPM model will be
more significant when the number of cores per node increases (far
beyond the current 4 cores per node)."  Fixed total core budget,
redistributed into fatter nodes.
"""

from __future__ import annotations

from repro.bench.figures import ablation_manycore


def test_ablation_manycore(benchmark, record_sweep):
    result = benchmark.pedantic(
        lambda: record_sweep(ablation_manycore), rounds=1, iterations=1
    )
    ratios = result.series("ppm/mpi")
    # PPM's relative position should improve as nodes get fatter.
    assert ratios[-1] < ratios[0]
    assert ratios[-1] < 1.0, "PPM should win outright on manycore nodes"
