"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index).  Each runs its full sweep once per
benchmark round (``pedantic`` mode: the sweep is the unit of
measurement, not a single solver call), prints the regenerated series
and saves it under ``bench_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.report import save_result


@pytest.fixture
def record_sweep():
    """Run a sweep builder, persist and echo its table, and hand the
    result back for shape assertions."""

    def _record(builder, *args, **kwargs):
        result = builder(*args, **kwargs)
        text = save_result(result)
        print("\n" + text)
        return result

    return _record
