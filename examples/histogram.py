"""Two-level phases: a distributed histogram.

Demonstrates the PPM features the big applications don't show off:

* **node phases** — each node first bins its own data into a
  node-shared partial histogram (physical shared memory, no network);
* **accumulate writes** — combining writes that add instead of
  overwrite, both node-level and global;
* **phase collectives** — a reduction validates the total count and a
  parallel prefix computes each VP's output offset.

Run with:  python examples/histogram.py
"""

import numpy as np

from repro import Cluster, franklin, ppm_function, run_ppm

BINS = 32
ITEMS_PER_VP = 5_000


@ppm_function
def histogram(ctx, data, partial, hist, check):
    # Private prologue: locate this VP's slice of its node's data.
    lo = ctx.node_rank * ITEMS_PER_VP
    hi = lo + ITEMS_PER_VP

    yield ctx.node_phase
    # Node level: bin my slice into the node's partial histogram.
    mine = data[lo:hi]
    counts = np.bincount((mine * BINS).astype(np.int64), minlength=BINS)
    partial.accumulate(np.arange(BINS), counts.astype(np.float64))
    ctx.work(2 * (hi - lo))

    yield ctx.global_phase
    # Global level: one VP per node publishes the node's partials into
    # the global histogram; everyone contributes to the sanity total.
    if ctx.node_rank == 0:
        partials = partial[:]
        hist.accumulate(np.arange(BINS), partials)
    h = ctx.reduce(ITEMS_PER_VP, "sum")
    offset = ctx.scan(ITEMS_PER_VP, "sum")

    yield ctx.global_phase
    if ctx.global_rank == 0:
        check[0] = float(h.value)
    # Each VP knows where its items would start in a global output
    # (exclusive prefix = inclusive prefix minus its own count).
    assert offset.value - ITEMS_PER_VP == ctx.global_rank * ITEMS_PER_VP


def main(ppm):
    k = ppm.cores_per_node * 2  # VPs per node
    data = ppm.node_shared("data", k * ITEMS_PER_VP)
    partial = ppm.node_shared("partial", BINS)
    hist = ppm.global_shared("hist", BINS)
    check = ppm.global_shared("check", 1)

    for node in range(ppm.node_count):
        rng = np.random.default_rng(1000 + node)
        data.instance(node)[:] = rng.uniform(0.0, 0.999, k * ITEMS_PER_VP)

    ppm.do(k, histogram, data, partial, hist, check)
    return hist.committed, check.committed


if __name__ == "__main__":
    cluster = Cluster(franklin(n_nodes=4))
    ppm, (hist, check) = run_ppm(main, cluster)

    total_items = int(check[0])
    print(f"{cluster.n_nodes} nodes, {total_items} items binned into {BINS} bins")
    assert hist.sum() == total_items, "histogram mass mismatch"
    bar_max = hist.max()
    for b in range(0, BINS, 4):
        bar = "#" * int(40 * hist[b] / bar_max)
        print(f"  bin {b:2d}: {int(hist[b]):7d} {bar}")
    print(f"simulated time: {ppm.elapsed * 1e3:.3f} ms")
