"""Quickstart: the paper's own code example (section 5).

Given a sorted global array A and a node-level array B, every virtual
processor binary-searches one element of B inside A — the search of
each element is performed by a virtual processor, exactly as in the
paper's PPM/C listing:

    PPM_function binary_search(int n, PPM_global_shared double A[],
                               PPM_node_shared double B[],
                               PPM_node_shared int rank_in_A[]) {
        PPM_global_phase {
            int left, middle, right;
            ...
            rank_in_A[PPM_VP_node_rank()] = right;
        }
    }
    ...
    PPM_do(K) binary_search(N, A, B, rank_in_A);

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, franklin, ppm_function, run_ppm

N = 1000  # elements of the sorted global array
K = 16  # elements of B per node == virtual processors per node


@ppm_function
def binary_search(ctx, n, A, B, rank_in_A):
    yield ctx.global_phase  # PPM_global_phase { ... }
    left, right = 0, n
    b = B[ctx.node_rank]  # B[PPM_VP_node_rank()]
    while left + 1 < right:
        middle = (left + right) // 2
        if A[middle] < b:
            left = middle
        else:
            right = middle
    rank_in_A[ctx.node_rank] = right


def main(ppm):
    A = ppm.global_shared("A", N)  # PPM_global_shared double A[N]
    B = ppm.node_shared("B", K)  # PPM_node_shared double B[K]
    rank_in_A = ppm.node_shared("rank_in_A", K, dtype=np.int64)

    # Driver-level initialisation (both arrays "already initialized").
    rng = np.random.default_rng(0)
    A[:] = np.sort(rng.uniform(0.0, 1.0, N))
    for node in range(ppm.node_count):
        B.instance(node)[:] = np.random.default_rng(node + 1).uniform(0.0, 1.0, K)

    ppm.do(K, binary_search, N, A, B, rank_in_A)  # PPM_do(K) binary_search(...)
    return A, B, rank_in_A


if __name__ == "__main__":
    cluster = Cluster(franklin(n_nodes=4))
    ppm, (A, B, rank_in_A) = run_ppm(main, cluster)

    a = A[:]
    print(f"{cluster.n_nodes} nodes x {cluster.cores_per_node} cores, "
          f"{K} virtual processors per node")
    for node in range(cluster.n_nodes):
        found = rank_in_A.instance(node)
        expected = np.searchsorted(a, B.instance(node), side="left")
        status = "OK" if (found == expected).all() else "MISMATCH"
        print(f"  node {node}: searched {K} elements -> {status}")
    print(f"simulated time: {ppm.elapsed * 1e6:.1f} us")
