"""Geometric multigrid V-cycles — the intro's "multi-grid" workload.

Solves the 1-D Poisson problem with textbook V(2,2) cycles in all
three forms, shows the multigrid signature (residual contraction by
~10x per cycle), and the model comparison: every grid operation is one
PPM phase with plain indexing, versus the MPI version's per-level halo
plans, ghost exchanges, coarse-level agglomeration and replication.

Run with:  python examples/multigrid_solver.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro import Cluster, franklin
from repro.apps.multigrid import (
    build_mg_problem,
    mpi_mg_solve,
    ppm_mg_solve,
    serial_mg_solve,
)

if __name__ == "__main__":
    problem = build_mg_problem(levels=8)  # 1025 fine points
    print(
        f"1-D Poisson, {problem.n} fine points, "
        f"{problem.levels + 1} levels: {problem.sizes}"
    )

    u, history = serial_mg_solve(problem, cycles=8)
    print("\nresidual per V(2,2) cycle:")
    for i, res in enumerate(history):
        rate = f"  (x{res / history[i-1]:.3f})" if i else ""
        print(f"  cycle {i + 1}: {res:.3e}{rate}")

    u_ref = spla.spsolve(problem.operator(0).tocsc(), problem.f[1:-1])
    print(f"error vs direct solve: {np.abs(u[1:-1] - u_ref).max():.2e}")

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'MPI (ms)':>9}")
    for nodes in (1, 2, 4, 8):
        u_p, t_ppm = ppm_mg_solve(problem, Cluster(franklin(n_nodes=nodes)), cycles=8)
        u_m, t_mpi = mpi_mg_solve(problem, Cluster(franklin(n_nodes=nodes)), cycles=8)
        assert np.abs(u_p - u).max() == 0.0, "PPM must match serial bitwise"
        assert np.abs(u_m - u).max() == 0.0, "MPI must match serial bitwise"
        print(f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>9.3f}")

    print(
        "\nBoth parallel versions reproduce the serial iterates exactly.\n"
        "Neither scales well — the V-cycle's deep levels have almost no\n"
        "work but still pay per-operation synchronisation, the classic\n"
        "multigrid communication squeeze."
    )
