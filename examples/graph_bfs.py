"""Graph traversal: level-synchronous BFS.

The paper's introduction lists graph algorithms first among the
unstructured applications that motivate PPM.  This example runs a BFS
over a pseudo-random expander in both programming models and shows the
phase structure: one global phase per BFS level, neighbour discovery
as combining ``minimum`` writes that the runtime bundles.

Run with:  python examples/graph_bfs.py
"""

import numpy as np

from repro import Cluster, franklin
from repro.apps.graph import UNREACHED, hashed_graph, mpi_bfs, ppm_bfs, serial_bfs

if __name__ == "__main__":
    g = hashed_graph(4000, degree=4, seed=7)
    print(f"graph: {g.n} vertices, {g.n_edges} edges")

    ref = serial_bfs(g, source=0)
    reached = ref[ref != UNREACHED]
    print(
        f"BFS from vertex 0 reaches {reached.size} vertices, "
        f"eccentricity {reached.max()}"
    )
    levels, counts = np.unique(reached, return_counts=True)
    for lv, c in zip(levels, counts):
        print(f"  level {lv}: {c:5d} vertices")

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'MPI (ms)':>9}")
    for nodes in (1, 2, 4, 8):
        d_ppm, t_ppm = ppm_bfs(g, 0, Cluster(franklin(n_nodes=nodes)))
        d_mpi, t_mpi = mpi_bfs(g, 0, Cluster(franklin(n_nodes=nodes)))
        assert (d_ppm == ref).all() and (d_mpi == ref).all()
        print(f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>9.3f}")
    print("\nBoth parallel versions reproduce the serial BFS levels exactly.")
