"""Application 1: the Conjugate Gradient solver (paper Figure 1).

Solves the 27-point 3D diffusion system three ways — serial reference,
PPM, and the tuned MPI baseline — verifies they agree, and prints a
small strong-scaling table showing the paper's headline effect: PPM is
much slower on one node (shared-variable software overhead), then
catches up as the network becomes the bottleneck.

Run with:  python examples/cg_solver.py
"""

import numpy as np

from repro import Cluster, franklin
from repro.apps.cg import (
    build_chimney_problem,
    mpi_cg_solve,
    ppm_cg_solve,
    serial_cg_solve,
)

if __name__ == "__main__":
    problem = build_chimney_problem(10)  # 10 x 10 x 20 chimney
    print(
        f"27-point diffusion system: {problem.n} unknowns, "
        f"{problem.nnz} nonzeros"
    )

    ref = serial_cg_solve(problem.A, problem.b, tol=1e-8)
    print(
        f"serial CG: {ref.iterations} iterations, "
        f"residual {ref.residual_norm:.2e}"
    )

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'MPI (ms)':>9}  {'PPM/MPI':>7}")
    for nodes in (1, 2, 4, 8, 16):
        cluster_p = Cluster(franklin(n_nodes=nodes))
        res_p, t_ppm = ppm_cg_solve(problem, cluster_p, tol=1e-8)
        cluster_m = Cluster(franklin(n_nodes=nodes))
        res_m, t_mpi = mpi_cg_solve(problem, cluster_m, tol=1e-8)
        assert np.allclose(res_p.x, ref.x, atol=1e-6), "PPM result mismatch"
        assert np.allclose(res_m.x, ref.x, atol=1e-6), "MPI result mismatch"
        print(
            f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>9.3f}  "
            f"{t_ppm / t_mpi:>7.2f}"
        )
    print("\nAll three implementations produce the same solution.")
