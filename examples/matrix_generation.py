"""Application 2: multiscale collocation matrix generation (Figure 2).

Generates the sparse collocation matrix with PPM and with the MPI
request/reply baseline, checks both against the direct serial
computation, and prints the scaling comparison — PPM's implicit
bundled access wins, and the gap grows with the node count.

Run with:  python examples/matrix_generation.py
"""

from repro import Cluster, franklin
from repro.apps.collocation import (
    CollocationConfig,
    MultiscaleProblem,
    mpi_generate,
    ppm_generate,
    serial_generate,
)

if __name__ == "__main__":
    problem = MultiscaleProblem(CollocationConfig(levels=9))
    ref = serial_generate(problem).tocsr()
    print(
        f"multiscale collocation matrix: {problem.n} x {problem.n}, "
        f"{ref.nnz} nonzeros, {problem.cache_total} cached integrals "
        f"across {problem.config.levels + 1} levels"
    )

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'MPI (ms)':>9}  {'PPM/MPI':>7}")
    for nodes in (1, 2, 4, 8, 16):
        m_ppm, t_ppm = ppm_generate(problem, Cluster(franklin(n_nodes=nodes)))
        m_mpi, t_mpi = mpi_generate(problem, Cluster(franklin(n_nodes=nodes)))
        for name, m in (("PPM", m_ppm), ("MPI", m_mpi)):
            diff = abs(m.tocsr() - ref)
            assert diff.nnz == 0 or diff.max() < 1e-12, f"{name} result mismatch"
        print(
            f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>9.3f}  "
            f"{t_ppm / t_mpi:>7.2f}"
        )
    print("\nBoth parallel versions reproduce the serial matrix exactly.")
