"""Wavefront-scheduled sparse triangular solve — and an honest limit.

The paper's introduction cites the parallel ICCG triangular solve [20]
as an application "considered unsuitable for MPI parallel
programming".  This example runs the kernel both ways and shows two
things at once:

* the *programmability* story holds — the PPM version is a direct
  transcription of the recurrence (one global phase per wavefront),
  while the MPI version needs a precomputed push plan and per-level
  message choreography;
* the *performance* story is honest — on this latency-bound kernel the
  hand-tuned asynchronous MPI push beats phase-per-wavefront PPM,
  because PPM pays a cluster barrier on all ~60 wavefronts (see
  EXPERIMENTS.md, extension experiments).

Run with:  python examples/triangular_solve.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro import Cluster, franklin
from repro.apps.sptrsv import build_trsv_problem, mpi_trsv, ppm_trsv, serial_trsv

if __name__ == "__main__":
    problem = build_trsv_problem(8)
    print(
        f"lower-triangular system: {problem.n} unknowns, "
        f"{problem.L.nnz} nonzeros, {problem.n_levels} wavefront levels"
    )
    sizes = [problem.rows_of_level(l).size for l in range(problem.n_levels)]
    print(f"wavefront widths: min {min(sizes)}, max {max(sizes)}")

    x_ref = serial_trsv(problem)
    x_scipy = spla.spsolve_triangular(problem.L.tocsr(), problem.b, lower=True)
    assert np.allclose(x_ref, x_scipy, atol=1e-9)

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'MPI (ms)':>9}  {'PPM/MPI':>7}")
    for nodes in (1, 2, 4, 8):
        x_p, t_ppm = ppm_trsv(problem, Cluster(franklin(n_nodes=nodes)))
        x_m, t_mpi = mpi_trsv(problem, Cluster(franklin(n_nodes=nodes)))
        assert np.allclose(x_p, x_ref, atol=1e-12)
        assert np.allclose(x_m, x_ref, atol=1e-12)
        print(
            f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>9.3f}  "
            f"{t_ppm / t_mpi:>7.2f}"
        )
    print(
        "\nBoth versions match scipy exactly.  The tuned MPI push wins\n"
        "this latency-bound kernel — a documented limitation of strict\n"
        "phase-per-wavefront synchronisation (EXPERIMENTS.md)."
    )
