"""Application 3: Barnes-Hut N-body simulation (paper Figure 3).

Runs the PPM Barnes-Hut — tree in global shared memory, data-driven
traversal bundled by the runtime — against the serial reference, then
shows the scaling the paper reports and the communication-volume
contrast with the tree-replication MPI method the paper criticises.

Run with:  python examples/barnes_hut.py
"""

import numpy as np

from repro import Cluster, franklin
from repro.apps.barneshut import (
    direct_forces,
    bh_forces,
    make_plummer_cloud,
    mpi_bh_simulate,
    ppm_bh_simulate,
    serial_bh_simulate,
)

if __name__ == "__main__":
    n = 1024
    pos, vel, mass = make_plummer_cloud(n, seed=11)
    print(f"Barnes-Hut: {n} particles, theta = 0.5")

    # Accuracy of the approximation itself.
    a_bh = bh_forces(pos, mass, theta=0.5)
    a_exact = direct_forces(pos, mass)
    rel = np.linalg.norm(a_bh - a_exact, axis=1) / (
        np.linalg.norm(a_exact, axis=1) + 1e-12
    )
    print(f"force error vs direct summation: median {np.median(rel):.4f}")

    ref_pos, _ = serial_bh_simulate(pos, vel, mass, steps=2)

    print(f"\n{'nodes':>5}  {'PPM (ms)':>9}  {'replication MPI (ms)':>20}")
    for nodes in (1, 2, 4, 8):
        p_pos, _, t_ppm = ppm_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=nodes)), steps=2
        )
        assert np.allclose(p_pos, ref_pos, atol=1e-12), "PPM result mismatch"
        _, _, t_mpi = mpi_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=nodes)), steps=2
        )
        print(f"{nodes:>5}  {t_ppm * 1e3:>9.3f}  {t_mpi * 1e3:>20.3f}")

    print(
        "\nPPM matches the serial single-tree results exactly; the MPI\n"
        "method replicates whole subtrees every step, which is the\n"
        "high-volume data exchange the paper calls out."
    )
