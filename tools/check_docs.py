#!/usr/bin/env python
"""Documentation CI: intra-repo link checking and example execution.

Two passes, both offline:

1. **Links** — every relative markdown link in the checked documents
   must resolve to a file in the repository, and a ``#fragment`` must
   match a heading anchor (GitHub slug rules) or explicit HTML anchor
   in the target document.  External (``http(s)://``, ``mailto:``)
   links are ignored.
2. **Examples** — fenced ```python blocks in README.md,
   docs/OBSERVABILITY.md, docs/RESILIENCE.md and docs/ANALYSIS.md are
   executed
   *sequentially in one namespace per file* (so later blocks may use names defined by earlier ones),
   exactly as a reader following the document would.  A block preceded
   by an HTML comment containing ``doctest: skip`` is not executed.

Usage::

    python tools/check_docs.py            # both passes
    python tools/check_docs.py --links    # links only
    python tools/check_docs.py --exec     # examples only

Exit status: 0 when clean, 1 on any broken link or failing example.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documents whose links are checked.
LINK_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/DIAGNOSTICS.md",
    "docs/ANALYSIS.md",
    "docs/SEMANTICS.md",
    "docs/COST_MODEL.md",
    "docs/RESILIENCE.md",
]

#: Documents whose ```python blocks are executed.
EXEC_DOCS = [
    "README.md",
    "docs/OBSERVABILITY.md",
    "docs/RESILIENCE.md",
    "docs/ANALYSIS.md",
]

_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_ANCHOR_RE = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")
_SKIP_RE = re.compile(r"<!--.*doctest:\s*skip.*-->")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # keep link text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All link fragments resolvable inside one markdown file."""
    found: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if m:
            slug = github_slug(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            found.add(slug if n == 0 else f"{slug}-{n}")
        for a in _ANCHOR_RE.findall(line):
            found.add(a)
    return found


def check_links(docs: list[str]) -> list[str]:
    """Return a list of broken-link descriptions (empty when clean)."""
    problems: list[str] = []
    for doc in docs:
        doc_path = REPO / doc
        if not doc_path.exists():
            problems.append(f"{doc}: checked document does not exist")
            continue
        in_fence = False
        for lineno, line in enumerate(doc_path.read_text().splitlines(), 1):
            if _FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    file_part, fragment = "", target[1:]
                else:
                    file_part, _, fragment = target.partition("#")
                dest = (
                    doc_path
                    if not file_part
                    else (doc_path.parent / file_part).resolve()
                )
                if not dest.exists():
                    problems.append(
                        f"{doc}:{lineno}: broken link {target!r} "
                        f"(no such file {file_part!r})"
                    )
                    continue
                if fragment and dest.suffix == ".md":
                    if fragment not in anchors_of(dest):
                        problems.append(
                            f"{doc}:{lineno}: broken anchor {target!r} "
                            f"(no heading slugs to {fragment!r} in "
                            f"{dest.relative_to(REPO)})"
                        )
    return problems


def python_blocks(path: Path) -> list[tuple[int, str, bool]]:
    """(start line, source, skipped) for each ```python block."""
    blocks: list[tuple[int, str, bool]] = []
    lines = path.read_text().splitlines()
    i = 0
    skip_next = False
    while i < len(lines):
        if _SKIP_RE.search(lines[i]):
            skip_next = True
            i += 1
            continue
        m = _FENCE_RE.match(lines[i])
        if m:
            lang, start = m.group(1), i + 1
            body: list[str] = []
            i += 1
            while i < len(lines) and not _FENCE_RE.match(lines[i]):
                body.append(lines[i])
                i += 1
            if lang == "python":
                blocks.append((start + 1, "\n".join(body), skip_next))
            skip_next = False
        elif lines[i].strip():
            skip_next = False
        i += 1
    return blocks


def run_examples(docs: list[str]) -> list[str]:
    """Execute each document's python blocks; return failures."""
    sys.path.insert(0, str(REPO / "src"))
    problems: list[str] = []
    for doc in docs:
        doc_path = REPO / doc
        namespace: dict = {"__name__": f"doctest_{doc_path.stem}"}
        for lineno, source, skipped in python_blocks(doc_path):
            if skipped:
                continue
            stdout = io.StringIO()
            try:
                code = compile(source, f"{doc}:{lineno}", "exec")
                with contextlib.redirect_stdout(stdout):
                    exec(code, namespace)
            except Exception:
                problems.append(
                    f"{doc}:{lineno}: example block failed\n"
                    + traceback.format_exc(limit=3)
                    + (f"--- captured stdout ---\n{stdout.getvalue()}"
                       if stdout.getvalue() else "")
                )
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="links only")
    parser.add_argument("--exec", action="store_true", help="examples only")
    args = parser.parse_args(argv)
    do_links = args.links or not args.exec
    do_exec = args.exec or not args.links

    problems: list[str] = []
    if do_links:
        problems += check_links(LINK_DOCS)
    if do_exec:
        problems += run_examples(EXEC_DOCS)

    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        checked = []
        if do_links:
            checked.append(f"links in {len(LINK_DOCS)} documents")
        if do_exec:
            checked.append(f"examples in {len(EXEC_DOCS)} documents")
        print(f"docs OK ({'; '.join(checked)})")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
