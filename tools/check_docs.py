#!/usr/bin/env python
"""Documentation CI: link checking, example execution, API coverage.

Three passes, all offline:

1. **Links** — every relative markdown link in the checked documents
   must resolve to a file in the repository, and a ``#fragment`` must
   match a heading anchor (GitHub slug rules) or explicit HTML anchor
   in the target document.  External (``http(s)://``, ``mailto:``)
   links are ignored.
2. **Examples** — fenced ```python blocks in the ``EXEC_DOCS``
   documents (README, the GUIDE tutorial, PARALLEL, OBSERVABILITY,
   RESILIENCE, ANALYSIS) are executed *sequentially in one namespace
   per file* (so later blocks may use names defined by earlier ones),
   exactly as a reader following the document would.  A block preceded
   by an HTML comment containing ``doctest: skip`` is not executed.
3. **API reference** — every public symbol exported by ``repro`` and
   by each subsystem package (``repro.core``, ``repro.obs``, ...)
   must carry a docstring and be mentioned in at least one of
   README.md / docs/*.md.  Undocumented or unmentioned exports fail
   the gate, so the reference docs cannot silently drift behind the
   code.

Usage::

    python tools/check_docs.py            # all three passes
    python tools/check_docs.py --links    # links only
    python tools/check_docs.py --exec     # examples only
    python tools/check_docs.py --api      # API-coverage gate only

Exit status: 0 when clean, 1 on any broken link, failing example, or
API-coverage gap.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documents whose links are checked.
LINK_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/GUIDE.md",
    "docs/PARALLEL.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/DIAGNOSTICS.md",
    "docs/ANALYSIS.md",
    "docs/SEMANTICS.md",
    "docs/COST_MODEL.md",
    "docs/RESILIENCE.md",
]

#: Documents whose ```python blocks are executed.
EXEC_DOCS = [
    "README.md",
    "docs/GUIDE.md",
    "docs/PARALLEL.md",
    "docs/OBSERVABILITY.md",
    "docs/RESILIENCE.md",
    "docs/ANALYSIS.md",
]

#: Packages whose public API (``__all__``) the reference gate covers.
API_PACKAGES = [
    "repro",
    "repro.core",
    "repro.machine",
    "repro.obs",
    "repro.parallel",
    "repro.resilience",
    "repro.analysis",
    "repro.mpi",
    "repro.apps",
    "repro.bench",
]

_LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_ANCHOR_RE = re.compile(r"<a\s+(?:id|name)=[\"']([^\"']+)[\"']")
_SKIP_RE = re.compile(r"<!--.*doctest:\s*skip.*-->")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # keep link text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All link fragments resolvable inside one markdown file."""
    found: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if m:
            slug = github_slug(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            found.add(slug if n == 0 else f"{slug}-{n}")
        for a in _ANCHOR_RE.findall(line):
            found.add(a)
    return found


def check_links(docs: list[str]) -> list[str]:
    """Return a list of broken-link descriptions (empty when clean)."""
    problems: list[str] = []
    for doc in docs:
        doc_path = REPO / doc
        if not doc_path.exists():
            problems.append(f"{doc}: checked document does not exist")
            continue
        in_fence = False
        for lineno, line in enumerate(doc_path.read_text().splitlines(), 1):
            if _FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in _LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                if target.startswith("#"):
                    file_part, fragment = "", target[1:]
                else:
                    file_part, _, fragment = target.partition("#")
                dest = (
                    doc_path
                    if not file_part
                    else (doc_path.parent / file_part).resolve()
                )
                if not dest.exists():
                    problems.append(
                        f"{doc}:{lineno}: broken link {target!r} "
                        f"(no such file {file_part!r})"
                    )
                    continue
                if fragment and dest.suffix == ".md":
                    if fragment not in anchors_of(dest):
                        problems.append(
                            f"{doc}:{lineno}: broken anchor {target!r} "
                            f"(no heading slugs to {fragment!r} in "
                            f"{dest.relative_to(REPO)})"
                        )
    return problems


def python_blocks(path: Path) -> list[tuple[int, str, bool]]:
    """(start line, source, skipped) for each ```python block."""
    blocks: list[tuple[int, str, bool]] = []
    lines = path.read_text().splitlines()
    i = 0
    skip_next = False
    while i < len(lines):
        if _SKIP_RE.search(lines[i]):
            skip_next = True
            i += 1
            continue
        m = _FENCE_RE.match(lines[i])
        if m:
            lang, start = m.group(1), i + 1
            body: list[str] = []
            i += 1
            while i < len(lines) and not _FENCE_RE.match(lines[i]):
                body.append(lines[i])
                i += 1
            if lang == "python":
                blocks.append((start + 1, "\n".join(body), skip_next))
            skip_next = False
        elif lines[i].strip():
            skip_next = False
        i += 1
    return blocks


def run_examples(docs: list[str]) -> list[str]:
    """Execute each document's python blocks; return failures."""
    sys.path.insert(0, str(REPO / "src"))
    problems: list[str] = []
    for doc in docs:
        doc_path = REPO / doc
        namespace: dict = {"__name__": f"doctest_{doc_path.stem}"}
        for lineno, source, skipped in python_blocks(doc_path):
            if skipped:
                continue
            stdout = io.StringIO()
            try:
                code = compile(source, f"{doc}:{lineno}", "exec")
                with contextlib.redirect_stdout(stdout):
                    exec(code, namespace)
            except Exception:
                problems.append(
                    f"{doc}:{lineno}: example block failed\n"
                    + traceback.format_exc(limit=3)
                    + (f"--- captured stdout ---\n{stdout.getvalue()}"
                       if stdout.getvalue() else "")
                )
    return problems


def _reference_corpus() -> str:
    """The top-level guides plus every docs/*.md, for mention checks."""
    parts = [
        (REPO / name).read_text()
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
    ]
    for path in sorted((REPO / "docs").glob("*.md")):
        parts.append(path.read_text())
    return "\n".join(parts)


def check_api(packages: list[str]) -> list[str]:
    """Docstring + documentation-mention gate over public exports.

    For each package in ``packages``, every name in its ``__all__``
    must resolve to an object with a non-empty docstring, and the name
    must appear (as a whole word) somewhere in README.md or docs/*.md.
    """
    import importlib
    import inspect

    sys.path.insert(0, str(REPO / "src"))
    corpus = _reference_corpus()
    mentioned_cache: dict[str, bool] = {}

    def mentioned(name: str) -> bool:
        if name not in mentioned_cache:
            # A dotted reference (``repro.bench.run_sweep``) counts as
            # a mention of the leaf name.
            pattern = re.compile(rf"(?<!\w){re.escape(name)}(?!\w)")
            mentioned_cache[name] = bool(pattern.search(corpus))
        return mentioned_cache[name]

    problems: list[str] = []
    seen: set[int] = set()
    for pkg_name in packages:
        try:
            pkg = importlib.import_module(pkg_name)
        except Exception as exc:
            problems.append(f"api: cannot import {pkg_name}: {exc!r}")
            continue
        exports = getattr(pkg, "__all__", None)
        if exports is None:
            problems.append(f"api: {pkg_name} has no __all__")
            continue
        for name in exports:
            obj = getattr(pkg, name, None)
            if obj is None:
                problems.append(
                    f"api: {pkg_name}.__all__ lists {name!r} but the "
                    "attribute is missing"
                )
                continue
            # A symbol re-exported at several levels is checked once.
            key = id(obj)
            if key in seen:
                continue
            seen.add(key)
            doc = inspect.getdoc(obj)
            if not (doc and doc.strip()):
                # Data attributes (ints, dicts, ...) cannot carry their
                # own docstring; the mention requirement still applies.
                if callable(obj) or inspect.ismodule(obj):
                    problems.append(
                        f"api: {pkg_name}.{name} has no docstring"
                    )
            if not mentioned(name):
                problems.append(
                    f"api: {pkg_name}.{name} is not mentioned in "
                    "README.md or any docs/*.md"
                )
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links", action="store_true", help="links only")
    parser.add_argument("--exec", action="store_true", help="examples only")
    parser.add_argument(
        "--api", action="store_true", help="API-coverage gate only"
    )
    args = parser.parse_args(argv)
    explicit = args.links or args.exec or args.api
    do_links = args.links or not explicit
    do_exec = args.exec or not explicit
    do_api = args.api or not explicit

    problems: list[str] = []
    if do_links:
        problems += check_links(LINK_DOCS)
    if do_exec:
        problems += run_examples(EXEC_DOCS)
    if do_api:
        problems += check_api(API_PACKAGES)

    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        checked = []
        if do_links:
            checked.append(f"links in {len(LINK_DOCS)} documents")
        if do_exec:
            checked.append(f"examples in {len(EXEC_DOCS)} documents")
        if do_api:
            checked.append(f"public API of {len(API_PACKAGES)} packages")
        print(f"docs OK ({'; '.join(checked)})")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
