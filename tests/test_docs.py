"""Documentation stays honest.

Three guarantees:

* every intra-repo markdown link (and ``#anchor`` fragment) in the
  user-facing documents resolves (``tools/check_docs.py --links``);
* every fenced ```python block in README.md and docs/OBSERVABILITY.md
  executes, sequentially per document (``tools/check_docs.py --exec``);
* the EXPERIMENTS.md command-reference table names exactly the
  experiments the ``repro.bench`` CLI exposes — no stale rows, no
  undocumented experiments.
"""

from __future__ import annotations

import importlib.util
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


check_docs = _load_check_docs()


def test_intra_repo_links_resolve():
    problems = check_docs.check_links(check_docs.LINK_DOCS)
    assert problems == []


def test_doc_python_examples_execute():
    # Subprocess: the examples mutate module state (numpy seeds, sys
    # modules) and must not leak into this test session.
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py"), "--exec"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr


def _bench_cli_names() -> set[str]:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "--list"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    return {line.strip() for line in proc.stdout.splitlines() if line.strip()}


def _documented_cli_names() -> set[str]:
    """Experiment names used as ``python -m repro.bench <name>`` in the
    EXPERIMENTS.md command-reference table."""
    text = (REPO / "EXPERIMENTS.md").read_text()
    return set(re.findall(r"python -m repro\.bench (?!--)(\S+)`", text))


def test_experiments_table_matches_bench_cli():
    documented = _documented_cli_names()
    actual = _bench_cli_names()
    assert documented == actual, (
        f"EXPERIMENTS.md command table out of sync with "
        f"`python -m repro.bench --list`: "
        f"stale rows {sorted(documented - actual)}, "
        f"undocumented experiments {sorted(actual - documented)}"
    )


def test_bench_cli_spot_run():
    # The cheapest real experiment proves the documented command shape
    # (`python -m repro.bench <name>`) actually runs.
    proc = subprocess.run(
        [sys.executable, "-m", "repro.bench", "table1"],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stderr
    assert "table1" in proc.stdout or proc.stdout.strip()
