"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, franklin, testing as mkconfig
from repro.machine import Cluster


@pytest.fixture
def config2x2() -> MachineConfig:
    """Two nodes, two cores each — the workhorse test topology."""
    return mkconfig(n_nodes=2, cores_per_node=2)


@pytest.fixture
def cluster2x2(config2x2) -> Cluster:
    return Cluster(config2x2)


@pytest.fixture
def cluster1() -> Cluster:
    """Single node, single core."""
    return Cluster(mkconfig(n_nodes=1, cores_per_node=1))


@pytest.fixture
def franklin4() -> Cluster:
    """Four Franklin-like nodes (4 cores each)."""
    return Cluster(franklin(n_nodes=4))
