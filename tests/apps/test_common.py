"""Tests for shared application utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.common import block_of, hash_u64, hash_unit, split_range


class TestSplitRange:
    def test_covers_everything(self):
        blocks = split_range(10, 3)
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 10
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c

    def test_balanced(self):
        blocks = split_range(11, 4)
        sizes = [b - a for a, b in blocks]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 11

    def test_more_parts_than_items(self):
        blocks = split_range(2, 5)
        sizes = [b - a for a, b in blocks]
        assert sum(sizes) == 2
        assert all(s in (0, 1) for s in sizes)

    def test_zero_items(self):
        assert all(a == b for a, b in split_range(0, 3))

    def test_validation(self):
        with pytest.raises(ValueError):
            split_range(5, 0)
        with pytest.raises(ValueError):
            split_range(-1, 2)


class TestBlockOf:
    def test_matches_split_range(self):
        n, parts = 17, 5
        blocks = split_range(n, parts)
        for i in range(n):
            p = block_of(i, n, parts)
            lo, hi = blocks[p]
            assert lo <= i < hi

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            block_of(5, 5, 2)


class TestHashing:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert (hash_u64(x) == hash_u64(x)).all()

    def test_spreads_values(self):
        h = hash_unit(np.arange(10_000))
        assert 0.45 < h.mean() < 0.55
        assert h.min() >= 0.0 and h.max() < 1.0

    def test_distinct_inputs_distinct_outputs(self):
        h = hash_u64(np.arange(100_000, dtype=np.uint64))
        assert np.unique(h).size == 100_000

    def test_scalar_input(self):
        assert hash_u64(5) == hash_u64(np.array([5]))[0]
