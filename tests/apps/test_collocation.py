"""Tests for the multiscale collocation matrix generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.collocation import (
    CollocationConfig,
    MultiscaleProblem,
    mpi_generate,
    ppm_generate,
    serial_generate,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def problem():
    return MultiscaleProblem(CollocationConfig(levels=6))


class TestStructure:
    def test_dimension_is_dyadic(self, problem):
        assert problem.n == 2**7 - 1

    def test_level_of_matches_offsets(self, problem):
        for level in range(7):
            lo = int(problem.level_offsets[level])
            hi = int(problem.level_offsets[level + 1])
            assert problem.level_of(lo) == level
            assert problem.level_of(hi - 1) == level
            assert hi - lo == problem.level_width(level)

    def test_cache_offsets_consistent(self, problem):
        total = sum(problem.cache_size(l) for l in range(7))
        assert total == problem.cache_total

    def test_cache_level_of(self, problem):
        gidx = np.arange(problem.cache_total)
        levels = problem.cache_level_of(gidx)
        for level in range(7):
            lo = int(problem.cache_offsets[level])
            assert levels[lo] == level

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CollocationConfig(levels=0)
        with pytest.raises(ValueError):
            CollocationConfig(n_terms=0)
        with pytest.raises(ValueError):
            CollocationConfig(quad_points=1)


class TestPattern:
    def test_truncation_halves_with_level_distance(self, problem):
        rows = np.arange(problem.n, dtype=np.int64)
        base = problem.config.base_cols
        # A row at level 3 gets `base` columns at level 3, base/2 at
        # levels 2 and 4, etc.
        r, c, _ci, _co, _j = problem.row_entries(rows, col_level=3)
        row3 = int(problem.level_offsets[3])
        assert (r == row3).sum() == base
        r2, *_ = problem.row_entries(rows, col_level=2)
        assert (r2 == row3).sum() == base // 2

    def test_columns_live_at_requested_level(self, problem):
        rows = np.arange(problem.n, dtype=np.int64)
        for level in (0, 3, 6):
            _r, c, _ci, _co, _j = problem.row_entries(rows, level)
            if c.size:
                assert (np.asarray(problem.level_of(c)) == level).all()

    def test_cache_indices_live_at_requested_level(self, problem):
        rows = np.arange(problem.n, dtype=np.int64)
        _r, _c, cache_idx, _co, _j = problem.row_entries(rows, 4)
        levels = problem.cache_level_of(cache_idx.ravel())
        assert (levels == 4).all()

    def test_deterministic(self, problem):
        rows = np.arange(20, dtype=np.int64)
        a = problem.row_entries(rows, 3)
        b = problem.row_entries(rows, 3)
        for x, y in zip(a, b):
            assert (np.asarray(x) == np.asarray(y)).all()

    def test_near_linear_nnz(self):
        """The truncation keeps nnz ~ O(n log n), far below dense."""
        p = MultiscaleProblem(CollocationConfig(levels=8))
        m = serial_generate(p)
        assert m.nnz < 0.1 * p.n * p.n
        assert m.nnz > p.n  # but not trivially sparse


class TestCacheValues:
    def test_integrals_are_finite_and_positive(self, problem):
        vals = problem.cache_values(np.arange(problem.cache_total))
        assert np.isfinite(vals).all()
        assert (vals >= 0.0).all()  # kernel and hat are non-negative

    def test_deterministic(self, problem):
        idx = np.arange(0, problem.cache_total, 7)
        assert (problem.cache_values(idx) == problem.cache_values(idx)).all()

    def test_flop_charges_scale(self, problem):
        assert problem.quad_flops(10) == 10 * problem.quad_flops(1)
        assert problem.combine_flops(100) > 0


class TestAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial(self, problem, nodes):
        ref = serial_generate(problem).tocsr()
        m, elapsed = ppm_generate(problem, Cluster(franklin(n_nodes=nodes)))
        diff = (m.tocsr() - ref)
        assert diff.nnz == 0 or abs(diff).max() < 1e-12
        assert elapsed > 0

    @pytest.mark.parametrize("nodes", [1, 2])
    def test_mpi_matches_serial(self, problem, nodes):
        ref = serial_generate(problem).tocsr()
        m, elapsed = mpi_generate(problem, Cluster(franklin(n_nodes=nodes)))
        diff = (m.tocsr() - ref)
        assert diff.nnz == 0 or abs(diff).max() < 1e-12
        assert elapsed > 0

    def test_ppm_independent_of_vp_count(self, problem):
        m1, _ = ppm_generate(problem, Cluster(franklin(n_nodes=2)), vp_per_core=1)
        m2, _ = ppm_generate(problem, Cluster(franklin(n_nodes=2)), vp_per_core=4)
        diff = (m1.tocsr() - m2.tocsr())
        assert diff.nnz == 0 or abs(diff).max() < 1e-15


class TestFigure2Shape:
    def test_ppm_scales_better_than_mpi(self):
        problem = MultiscaleProblem(CollocationConfig(levels=8))
        t_ppm = []
        t_mpi = []
        for nodes in (2, 16):
            _, tp = ppm_generate(problem, Cluster(franklin(n_nodes=nodes)))
            _, tm = mpi_generate(problem, Cluster(franklin(n_nodes=nodes)))
            t_ppm.append(tp)
            t_mpi.append(tm)
        # PPM at least as good at 2 nodes and clearly better at 16.
        assert t_ppm[0] <= 1.1 * t_mpi[0]
        assert t_ppm[1] < 0.5 * t_mpi[1]
