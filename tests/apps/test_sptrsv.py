"""Tests for the sparse triangular solve application."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.apps.sptrsv import (
    build_trsv_problem,
    level_schedule,
    mpi_trsv,
    ppm_trsv,
    serial_trsv,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def problem():
    return build_trsv_problem(6)  # 432 rows


class TestLevelSchedule:
    def test_no_dependency_rows_are_level_zero(self, problem):
        L = problem.L
        for i in range(problem.n):
            deps = L.indices[L.indptr[i] : L.indptr[i + 1]]
            if (deps < i).sum() == 0:
                assert problem.levels[i] == 0

    def test_levels_respect_dependencies(self, problem):
        """Every row's level is strictly greater than all of its
        dependencies' levels — the property that makes wavefront
        scheduling legal."""
        L = problem.L
        for i in range(problem.n):
            deps = L.indices[L.indptr[i] : L.indptr[i + 1]]
            for j in deps[deps < i]:
                assert problem.levels[i] > problem.levels[j]

    def test_levels_partition_rows(self, problem):
        counted = sum(
            problem.rows_of_level(l).size for l in range(problem.n_levels)
        )
        assert counted == problem.n

    def test_diagonal_matrix_single_level(self):
        L = sp.identity(10, format="csr")
        assert (level_schedule(L) == 0).all()

    def test_chain_matrix_n_levels(self):
        """A bidiagonal matrix forces fully sequential levels."""
        n = 6
        L = sp.diags([np.ones(n - 1), np.full(n, 2.0)], offsets=[-1, 0]).tocsr()
        levels = level_schedule(L)
        assert levels.tolist() == list(range(n))


class TestSerial:
    def test_matches_scipy(self, problem):
        x = serial_trsv(problem)
        x_ref = spla.spsolve_triangular(problem.L.tocsr(), problem.b, lower=True)
        assert np.allclose(x, x_ref, atol=1e-9)

    def test_residual_small(self, problem):
        x = serial_trsv(problem)
        assert np.linalg.norm(problem.L @ x - problem.b) < 1e-9


class TestDistributedAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial(self, problem, nodes):
        ref = serial_trsv(problem)
        x, elapsed = ppm_trsv(problem, Cluster(franklin(n_nodes=nodes)))
        assert np.allclose(x, ref, atol=1e-12)
        assert elapsed > 0

    @pytest.mark.parametrize("nodes", [1, 2])
    def test_mpi_matches_serial(self, problem, nodes):
        ref = serial_trsv(problem)
        x, elapsed = mpi_trsv(problem, Cluster(franklin(n_nodes=nodes)))
        assert np.allclose(x, ref, atol=1e-12)
        assert elapsed > 0

    def test_ppm_independent_of_vp_count(self, problem):
        x1, _ = ppm_trsv(problem, Cluster(franklin(n_nodes=2)), vp_per_core=1)
        x2, _ = ppm_trsv(problem, Cluster(franklin(n_nodes=2)), vp_per_core=4)
        assert np.allclose(x1, x2, atol=1e-15)


class TestHonestLimitation:
    def test_wavefront_ppm_loses_to_tuned_push(self, problem):
        """Documented negative result (EXPERIMENTS.md): the strict
        phase-per-wavefront PPM pays a cluster barrier per level, so a
        hand-tuned asynchronous push MPI code wins this latency-bound
        kernel — consistent with [20]'s reputation."""
        _, t_ppm = ppm_trsv(problem, Cluster(franklin(n_nodes=4)))
        _, t_mpi = mpi_trsv(problem, Cluster(franklin(n_nodes=4)))
        assert t_mpi < t_ppm
