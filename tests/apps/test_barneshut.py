"""Tests for the Barnes-Hut application: octree invariants, traversal
accuracy, and the three implementations' agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.barneshut import (
    bh_forces,
    build_octree,
    check_octree,
    direct_forces,
    make_plummer_cloud,
    max_tree_nodes,
    mpi_bh_simulate,
    ppm_bh_simulate,
    serial_bh_simulate,
    walk_forces,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def cloud():
    return make_plummer_cloud(256, seed=7)


class TestCloud:
    def test_shapes(self, cloud):
        pos, vel, mass = cloud
        assert pos.shape == (256, 3)
        assert vel.shape == (256, 3)
        assert mass.shape == (256,)

    def test_unit_total_mass(self, cloud):
        assert cloud[2].sum() == pytest.approx(1.0)

    def test_deterministic(self):
        a = make_plummer_cloud(64, seed=3)
        b = make_plummer_cloud(64, seed=3)
        assert (a[0] == b[0]).all()

    def test_different_seeds_differ(self):
        a = make_plummer_cloud(64, seed=3)
        b = make_plummer_cloud(64, seed=4)
        assert not (a[0] == b[0]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_plummer_cloud(0)


class TestOctree:
    def test_invariants(self, cloud):
        pos, _vel, mass = cloud
        tree = build_octree(pos, mass)
        check_octree(tree, pos, mass)

    def test_leaf_size_respected(self, cloud):
        pos, _vel, mass = cloud
        tree = build_octree(pos, mass, leaf_size=8)
        from repro.apps.barneshut.octree import F_NCHILDREN, F_PCOUNT

        leaves = tree.nodes[tree.nodes[:, F_NCHILDREN] == 0]
        assert leaves[:, F_PCOUNT].max() <= 8

    def test_single_particle(self):
        tree = build_octree(np.zeros((1, 3)), np.ones(1))
        assert tree.n_nodes == 1
        assert tree.perm.tolist() == [0]

    def test_coincident_particles_small_leaf(self):
        """Degenerate input (identical points) must not loop forever:
        leaf_size >= duplicate count keeps it finite."""
        pos = np.zeros((5, 3))
        tree = build_octree(pos, np.ones(5), leaf_size=8)
        assert tree.n_nodes == 1

    def test_max_tree_nodes_bound_holds(self, cloud):
        pos, _vel, mass = cloud
        for leaf in (1, 4, 16):
            tree = build_octree(pos, mass, leaf_size=leaf)
            assert tree.n_nodes <= max_tree_nodes(256, leaf)

    def test_build_flops_positive(self, cloud):
        pos, _vel, mass = cloud
        assert build_octree(pos, mass).build_flops > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_octree(np.zeros((0, 3)), np.zeros(0))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 2)), np.ones(4))
        with pytest.raises(ValueError):
            build_octree(np.zeros((4, 3)), np.ones(4), leaf_size=0)


class TestForces:
    def test_bh_close_to_direct(self, cloud):
        pos, _vel, mass = cloud
        a_bh = bh_forces(pos, mass, theta=0.5)
        a_direct = direct_forces(pos, mass)
        rel = np.linalg.norm(a_bh - a_direct, axis=1) / (
            np.linalg.norm(a_direct, axis=1) + 1e-12
        )
        assert np.median(rel) < 0.02
        assert rel.max() < 0.3

    def test_theta_zero_is_exact(self, cloud):
        """theta = 0 forces full descent: BH degenerates to direct
        summation."""
        pos, _vel, mass = cloud
        a_bh = bh_forces(pos, mass, theta=0.0)
        a_direct = direct_forces(pos, mass)
        assert np.allclose(a_bh, a_direct, atol=1e-9)

    def test_smaller_theta_more_accurate(self, cloud):
        pos, _vel, mass = cloud
        a_direct = direct_forces(pos, mass)

        def err(theta):
            a = bh_forces(pos, mass, theta=theta)
            return np.linalg.norm(a - a_direct)

        assert err(0.3) < err(0.9)

    def test_momentum_roughly_conserved(self, cloud):
        pos, _vel, mass = cloud
        a = bh_forces(pos, mass, theta=0.5)
        # Equal masses: net acceleration should be near zero.
        assert np.abs((a * mass[:, None]).sum(axis=0)).max() < 1e-2 * np.abs(a).max()

    def test_walk_empty_chunk(self, cloud):
        pos, _vel, mass = cloud
        tree = build_octree(pos, mass)
        posm = np.concatenate([pos, mass[:, None]], axis=1)
        res = walk_forces(
            np.zeros((0, 3)),
            lambda rows: tree.nodes[rows],
            lambda s, c: tree.perm[s : s + c],
            lambda ids: posm[ids],
        )
        assert res.acc.shape == (0, 3)
        assert res.interactions == 0


class TestAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial(self, cloud, nodes):
        pos, vel, mass = cloud
        ref_p, ref_v = serial_bh_simulate(pos, vel, mass, steps=2)
        pp, pv, elapsed = ppm_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=nodes)), steps=2
        )
        assert np.allclose(pp, ref_p, atol=1e-12)
        assert np.allclose(pv, ref_v, atol=1e-12)
        assert elapsed > 0

    def test_ppm_independent_of_vp_count(self, cloud):
        pos, vel, mass = cloud
        p1, _v1, _ = ppm_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=2)), steps=1, vp_per_core=1
        )
        p2, _v2, _ = ppm_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=2)), steps=1, vp_per_core=4
        )
        assert np.allclose(p1, p2, atol=1e-15)

    def test_mpi_replication_close_to_serial(self, cloud):
        """The tree-replication baseline sums per-subtree
        approximations; positions agree with the single-tree run to
        within the method's approximation error."""
        pos, vel, mass = cloud
        ref_p, _ = serial_bh_simulate(pos, vel, mass, steps=2)
        mp, _mv, elapsed = mpi_bh_simulate(
            pos, vel, mass, Cluster(franklin(n_nodes=2)), steps=2, ranks=4
        )
        drift = np.abs(ref_p - pos).max()
        assert np.abs(mp - ref_p).max() < 0.05 * drift
        assert elapsed > 0


class TestFigure3Shape:
    def test_ppm_scales_well(self):
        """Figure 3: PPM time keeps dropping as nodes are added."""
        pos, vel, mass = make_plummer_cloud(1024, seed=5)
        times = []
        for nodes in (1, 4, 16):
            _, _, t = ppm_bh_simulate(
                pos, vel, mass, Cluster(franklin(n_nodes=nodes)), steps=1
            )
            times.append(t)
        assert times[1] < times[0]
        assert times[2] < times[1]

    def test_mpi_replication_ships_far_more_bytes(self):
        """The paper's critique of the MPI method: whole-tree
        replication moves vastly more data than PPM's on-demand
        bundled fetches."""
        from repro.apps.barneshut.octree import build_octree
        from repro.mpi.datatypes import payload_nbytes

        pos, vel, mass = make_plummer_cloud(512, seed=5)
        cluster = Cluster(franklin(n_nodes=4))
        ppm_bh_simulate(pos, vel, mass, cluster, steps=1)
        ppm_bytes = cluster.trace.total_bytes("ppm_global_phase")
        assert ppm_bytes > 0

        # Analytic replication volume: every rank ships its whole
        # subtree package to every other rank, so the wire volume
        # grows ~linearly with the rank count while PPM's on-demand
        # fetches do not.
        def replication_bytes(ranks: int) -> int:
            per_rank = 512 // ranks
            tree = build_octree(pos[:per_rank], mass[:per_rank])
            posm = np.concatenate(
                [pos[:per_rank], mass[:per_rank, None]], axis=1
            )
            package = payload_nbytes((tree.nodes, tree.perm, posm))
            return ranks * (ranks - 1) * package

        assert replication_bytes(16) > ppm_bytes
        assert replication_bytes(64) > 5 * ppm_bytes
        assert replication_bytes(64) > 3 * replication_bytes(16)
