"""Tests for the multigrid application."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.apps.multigrid import (
    build_mg_problem,
    mpi_mg_solve,
    ppm_mg_solve,
    serial_mg_solve,
    vcycle_schedule,
)
from repro.apps.multigrid.problem import (
    coarse_solve,
    prolong_window,
    restrict_window,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def problem():
    return build_mg_problem(levels=5)  # 129 fine points


class TestHierarchy:
    def test_sizes_halve(self, problem):
        for a, b in zip(problem.sizes, problem.sizes[1:]):
            assert a == 2 * (b - 1) + 1

    def test_mesh_widths(self, problem):
        assert problem.h(0) == pytest.approx(1.0 / (problem.n - 1))
        assert problem.h(1) == pytest.approx(2 * problem.h(0))

    def test_rhs_boundaries_zero(self, problem):
        assert problem.f[0] == 0.0 and problem.f[-1] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_mg_problem(levels=0)


class TestSchedule:
    def test_op_counts(self):
        sched = vcycle_schedule(3, nu1=2, nu2=1)
        ops = [op for op, _ in sched]
        assert ops.count("coarse") == 1
        assert ops.count("restrict") == 3
        assert ops.count("prolong") == 3
        assert ops.count("smooth") == 3 * (2 + 1)

    def test_descend_then_ascend(self):
        sched = vcycle_schedule(2, nu1=1, nu2=1)
        levels = [l for op, l in sched]
        # down: 0, 0(res), 0(restr), 1, 1, 1, coarse(2), up: 1..., 0...
        assert levels[0] == 0
        assert max(levels) == 2
        assert levels[-1] == 0


class TestGridOperators:
    def test_restriction_of_constant(self):
        r = np.ones(17)
        coarse = restrict_window(r[1 : 2 * 7 + 2])
        assert np.allclose(coarse, 1.0)

    def test_prolongation_of_linear_is_exact(self):
        # Linear functions are reproduced exactly by linear interpolation.
        xc = np.linspace(0, 1, 9)
        uc = 3.0 * xc
        fine = prolong_window(uc, 1, 15)
        xf = np.linspace(0, 1, 17)[1:-1]
        assert np.allclose(fine, 3.0 * xf)

    def test_coarse_solve_exact(self):
        n = 9
        h = 1.0 / (n - 1)
        x = np.linspace(0, 1, n)
        f = np.pi**2 * np.sin(np.pi * x)
        f[0] = f[-1] = 0.0
        u = coarse_solve(f, h)
        # Residual of the *discrete* system must vanish.
        res = (-u[:-2] + 2 * u[1:-1] - u[2:]) / h**2 - f[1:-1]
        assert np.abs(res).max() < 1e-10


class TestSerial:
    def test_converges_to_direct_solution(self, problem):
        u, hist = serial_mg_solve(problem, cycles=12)
        u_ref = spla.spsolve(problem.operator(0).tocsc(), problem.f[1:-1])
        assert np.abs(u[1:-1] - u_ref).max() < 1e-8

    def test_textbook_convergence_rate(self, problem):
        """Weighted-Jacobi V(2,2) cycles contract the residual by ~0.1
        per cycle — the multigrid signature."""
        _, hist = serial_mg_solve(problem, cycles=6)
        rates = [b / a for a, b in zip(hist, hist[1:])]
        assert max(rates) < 0.2

    def test_boundaries_stay_zero(self, problem):
        u, _ = serial_mg_solve(problem, cycles=3)
        assert u[0] == 0.0 and u[-1] == 0.0


class TestDistributedAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial_bitwise(self, problem, nodes):
        ref, _ = serial_mg_solve(problem, cycles=6)
        u, elapsed = ppm_mg_solve(problem, Cluster(franklin(n_nodes=nodes)), cycles=6)
        assert np.abs(u - ref).max() == 0.0
        assert elapsed > 0

    @pytest.mark.parametrize("nodes", [1, 2])
    def test_mpi_matches_serial_bitwise(self, problem, nodes):
        ref, _ = serial_mg_solve(problem, cycles=6)
        u, elapsed = mpi_mg_solve(problem, Cluster(franklin(n_nodes=nodes)), cycles=6)
        assert np.abs(u - ref).max() == 0.0
        assert elapsed > 0

    def test_ppm_independent_of_vp_count(self, problem):
        u1, _ = ppm_mg_solve(problem, Cluster(franklin(n_nodes=2)), cycles=3, vp_per_core=1)
        u2, _ = ppm_mg_solve(problem, Cluster(franklin(n_nodes=2)), cycles=3, vp_per_core=4)
        assert (u1 == u2).all()

    def test_many_ranks_small_levels(self, problem):
        """More ranks than coarse-level points: the replicated-level
        machinery must keep the MPI version exact."""
        ref, _ = serial_mg_solve(problem, cycles=4)
        u, _ = mpi_mg_solve(problem, Cluster(franklin(n_nodes=4)), cycles=4)
        assert np.abs(u - ref).max() == 0.0
