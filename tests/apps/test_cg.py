"""Tests for the CG application: problem generator, serial reference,
PPM and MPI solvers, and their agreement."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.apps.cg import (
    build_chimney_problem,
    mpi_cg_solve,
    ppm_cg_solve,
    serial_cg_solve,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def problem():
    return build_chimney_problem(6)  # 6x6x12 = 432 rows


class TestProblemGenerator:
    def test_dimensions(self, problem):
        assert problem.n == 6 * 6 * 12
        assert problem.A.shape == (432, 432)
        assert problem.b.shape == (432,)

    def test_27_point_interior_rows(self, problem):
        # An interior cell couples to all 26 neighbours + itself.
        nnz_per_row = np.diff(problem.A.indptr)
        assert nnz_per_row.max() == 27
        # Corners couple to 7 neighbours + diagonal.
        assert nnz_per_row.min() == 8

    def test_symmetric(self, problem):
        d = problem.A - problem.A.T
        assert abs(d).max() < 1e-12 if d.nnz else True

    def test_positive_definite(self, problem):
        # Strict diagonal dominance with positive diagonal implies SPD.
        diag = problem.A.diagonal()
        offdiag = np.abs(problem.A).sum(axis=1).A1 - np.abs(diag)
        assert (diag > offdiag).all()

    def test_deterministic(self):
        p1 = build_chimney_problem(4)
        p2 = build_chimney_problem(4)
        assert (p1.b == p2.b).all()
        assert (p1.A != p2.A).nnz == 0

    def test_chimney_default_is_tall(self, problem):
        assert problem.nz == 2 * problem.nx

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            build_chimney_problem(0)


class TestSerialCg:
    def test_solves_the_system(self, problem):
        res = serial_cg_solve(problem.A, problem.b, tol=1e-10)
        assert res.converged
        assert np.linalg.norm(problem.A @ res.x - problem.b) < 1e-8

    def test_matches_scipy(self, problem):
        res = serial_cg_solve(problem.A, problem.b, tol=1e-10)
        x_ref = spla.spsolve(problem.A.tocsc(), problem.b)
        assert np.allclose(res.x, x_ref, atol=1e-7)

    def test_residual_history_decreases_overall(self, problem):
        res = serial_cg_solve(problem.A, problem.b, tol=1e-10)
        hist = res.residual_history
        assert hist[-1] < 1e-3 * hist[0]

    def test_max_iters_respected(self, problem):
        res = serial_cg_solve(problem.A, problem.b, tol=0.0, max_iters=5)
        assert res.iterations == 5
        assert not res.converged

    def test_shape_validation(self, problem):
        with pytest.raises(ValueError):
            serial_cg_solve(problem.A, np.zeros(3))

    def test_identity_system(self):
        A = sp.identity(10, format="csr")
        b = np.arange(10.0)
        res = serial_cg_solve(A, b)
        assert np.allclose(res.x, b)


class TestDistributedAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial(self, problem, nodes):
        ref = serial_cg_solve(problem.A, problem.b, tol=1e-9)
        res, elapsed = ppm_cg_solve(
            problem, Cluster(franklin(n_nodes=nodes)), tol=1e-9
        )
        assert res.converged
        assert res.iterations == ref.iterations
        assert np.allclose(res.x, ref.x, atol=1e-6)
        assert elapsed > 0

    @pytest.mark.parametrize("nodes", [1, 2])
    def test_mpi_matches_serial(self, problem, nodes):
        ref = serial_cg_solve(problem.A, problem.b, tol=1e-9)
        res, elapsed = mpi_cg_solve(
            problem, Cluster(franklin(n_nodes=nodes)), tol=1e-9
        )
        assert res.converged
        assert np.allclose(res.x, ref.x, atol=1e-6)
        assert elapsed > 0

    def test_ppm_result_independent_of_vp_count(self, problem):
        cluster = Cluster(franklin(n_nodes=2))
        r1, _ = ppm_cg_solve(problem, cluster, tol=1e-9, vp_per_core=1)
        r2, _ = ppm_cg_solve(
            problem, Cluster(franklin(n_nodes=2)), tol=1e-9, vp_per_core=4
        )
        assert np.allclose(r1.x, r2.x, atol=1e-9)

    def test_mpi_reduced_rank_count(self, problem):
        ref = serial_cg_solve(problem.A, problem.b, tol=1e-9)
        res, _ = mpi_cg_solve(
            problem, Cluster(franklin(n_nodes=2)), tol=1e-9, ranks=3
        )
        assert np.allclose(res.x, ref.x, atol=1e-6)


class TestFigure1Shape:
    """The paper's Figure 1 story, as assertions."""

    def test_ppm_much_slower_on_one_node(self):
        problem = build_chimney_problem(8)
        _, t_ppm = ppm_cg_solve(problem, Cluster(franklin(n_nodes=1)), max_iters=10, tol=0)
        _, t_mpi = mpi_cg_solve(problem, Cluster(franklin(n_nodes=1)), max_iters=10, tol=0)
        assert t_ppm > 2.0 * t_mpi

    def test_ppm_catches_up_at_scale(self):
        problem = build_chimney_problem(8)
        ratios = []
        for nodes in (1, 16):
            _, t_ppm = ppm_cg_solve(problem, Cluster(franklin(n_nodes=nodes)), max_iters=10, tol=0)
            _, t_mpi = mpi_cg_solve(problem, Cluster(franklin(n_nodes=nodes)), max_iters=10, tol=0)
            ratios.append(t_ppm / t_mpi)
        assert ratios[1] < 0.5 * ratios[0]
