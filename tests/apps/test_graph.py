"""Tests for the BFS graph application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.graph import (
    UNREACHED,
    hashed_graph,
    mpi_bfs,
    ppm_bfs,
    serial_bfs,
    to_networkx,
)
from repro.config import franklin
from repro.machine import Cluster


@pytest.fixture(scope="module")
def graph():
    return hashed_graph(300, degree=3, seed=5)


class TestGenerator:
    def test_csr_structure(self, graph):
        assert graph.indptr.shape == (graph.n + 1,)
        assert graph.indptr[0] == 0
        assert graph.indptr[-1] == graph.indices.size

    def test_undirected(self, graph):
        edges = set()
        for v in range(graph.n):
            for w in graph.neighbors(v):
                edges.add((v, int(w)))
        for v, w in edges:
            assert (w, v) in edges

    def test_no_self_loops(self, graph):
        for v in range(graph.n):
            assert v not in graph.neighbors(v)

    def test_no_duplicate_edges(self, graph):
        for v in range(graph.n):
            nbrs = graph.neighbors(v)
            assert np.unique(nbrs).size == nbrs.size

    def test_deterministic(self):
        a = hashed_graph(100, seed=9)
        b = hashed_graph(100, seed=9)
        assert (a.indices == b.indices).all()

    def test_seed_changes_graph(self):
        a = hashed_graph(100, seed=9)
        b = hashed_graph(100, seed=10)
        assert a.indices.size != b.indices.size or not (a.indices == b.indices).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            hashed_graph(1)
        with pytest.raises(ValueError):
            hashed_graph(10, degree=0)


class TestSerialBfs:
    def test_matches_networkx(self, graph):
        import networkx as nx

        dist = serial_bfs(graph, 0)
        lengths = nx.single_source_shortest_path_length(to_networkx(graph), 0)
        for v in range(graph.n):
            if v in lengths:
                assert dist[v] == lengths[v]
            else:
                assert dist[v] == UNREACHED

    def test_source_distance_zero(self, graph):
        assert serial_bfs(graph, 7)[7] == 0

    def test_neighbour_distances_differ_by_at_most_one(self, graph):
        dist = serial_bfs(graph, 0)
        for v in range(graph.n):
            if dist[v] == UNREACHED:
                continue
            for w in graph.neighbors(v):
                if dist[w] != UNREACHED:
                    assert abs(int(dist[v]) - int(dist[w])) <= 1

    def test_disconnected_vertices_unreached(self):
        # A path graph built by hand: 0-1, plus isolated vertex 2.
        import scipy.sparse as sp
        from repro.apps.graph.generator import Graph

        adj = sp.csr_matrix(
            (np.ones(2), (np.array([0, 1]), np.array([1, 0]))), shape=(3, 3)
        )
        g = Graph(indptr=adj.indptr.astype(np.int64), indices=adj.indices.astype(np.int64), n=3)
        dist = serial_bfs(g, 0)
        assert dist.tolist() == [0, 1, UNREACHED]

    def test_source_validation(self, graph):
        with pytest.raises(ValueError):
            serial_bfs(graph, -1)
        with pytest.raises(ValueError):
            serial_bfs(graph, graph.n)


class TestDistributedAgreement:
    @pytest.mark.parametrize("nodes", [1, 2, 3])
    def test_ppm_matches_serial(self, graph, nodes):
        ref = serial_bfs(graph, 0)
        dist, elapsed = ppm_bfs(graph, 0, Cluster(franklin(n_nodes=nodes)))
        assert (dist == ref).all()
        assert elapsed > 0

    @pytest.mark.parametrize("nodes", [1, 2])
    def test_mpi_matches_serial(self, graph, nodes):
        ref = serial_bfs(graph, 0)
        dist, elapsed = mpi_bfs(graph, 0, Cluster(franklin(n_nodes=nodes)))
        assert (dist == ref).all()
        assert elapsed > 0

    def test_nonzero_source(self, graph):
        ref = serial_bfs(graph, 42)
        dist, _ = ppm_bfs(graph, 42, Cluster(franklin(n_nodes=2)))
        assert (dist == ref).all()

    def test_ppm_independent_of_vp_count(self, graph):
        d1, _ = ppm_bfs(graph, 0, Cluster(franklin(n_nodes=2)), vp_per_core=1)
        d2, _ = ppm_bfs(graph, 0, Cluster(franklin(n_nodes=2)), vp_per_core=4)
        assert (d1 == d2).all()

    def test_ppm_degrades_slower_than_mpi(self):
        """BFS is latency-bound at this size, so strong scaling stalls
        for both; the meaningful comparison is that PPM's per-level
        cost stays bounded while MPI's per-level message count grows
        with the rank count."""
        g = hashed_graph(2000, degree=4, seed=3)
        _, tp1 = ppm_bfs(g, 0, Cluster(franklin(n_nodes=1)))
        _, tp8 = ppm_bfs(g, 0, Cluster(franklin(n_nodes=8)))
        _, tm8 = mpi_bfs(g, 0, Cluster(franklin(n_nodes=8)))
        assert tp8 < tm8, "PPM should beat MPI at scale"
        assert tp8 < 2.0 * tp1, "PPM overhead must stay bounded"
