"""Retry policy, per-flight delivery accounting, sequence numbers."""

from __future__ import annotations

import pytest

from repro.core.errors import ResilienceConfigError
from repro.resilience import RetryPolicy, SequencedChannel
from repro.resilience.faults import FaultVerdict
from repro.resilience.retry import deliver_flight


class TestPolicyValidation:
    @pytest.mark.parametrize("timeout", [0.0, -1e-6, float("nan"), float("inf")])
    def test_rejects_bad_timeout(self, timeout):
        with pytest.raises(ResilienceConfigError, match="PPM304"):
            RetryPolicy(timeout=timeout)

    def test_rejects_backoff_factor_below_one(self):
        with pytest.raises(ResilienceConfigError, match="PPM304"):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_max_backoff_below_timeout(self):
        with pytest.raises(ResilienceConfigError, match="PPM304"):
            RetryPolicy(timeout=1e-3, max_backoff=1e-4)

    def test_rejects_zero_max_retries(self):
        with pytest.raises(ResilienceConfigError, match="PPM304"):
            RetryPolicy(max_retries=0)


class TestBackoffSchedule:
    def test_exponential_growth(self):
        pol = RetryPolicy(timeout=10e-6, backoff_factor=2.0, max_backoff=1.0)
        assert pol.backoff(1) == pytest.approx(10e-6)
        assert pol.backoff(2) == pytest.approx(20e-6)
        assert pol.backoff(3) == pytest.approx(40e-6)

    def test_capped_at_max_backoff(self):
        pol = RetryPolicy(timeout=10e-6, backoff_factor=10.0, max_backoff=50e-6)
        assert pol.backoff(5) == pytest.approx(50e-6)

    def test_monotone_nondecreasing(self):
        pol = RetryPolicy()
        waits = [pol.backoff(k) for k in range(1, 20)]
        assert waits == sorted(waits)


class TestDeliverFlight:
    def test_clean_flight_costs_nothing(self):
        out = deliver_flight(
            RetryPolicy(),
            FaultVerdict([], 0.0, False),
            resend_wire_time=1e-6,
            duplicate_cpu_time=1e-6,
        )
        assert out.attempts == 1
        assert out.extra_time == 0.0
        assert out.retries == []

    def test_each_failure_charges_backoff_plus_resend(self):
        pol = RetryPolicy(timeout=10e-6, backoff_factor=2.0, max_backoff=1.0)
        out = deliver_flight(
            pol,
            FaultVerdict(["drop", "corrupt"], 0.0, False),
            resend_wire_time=5e-6,
            duplicate_cpu_time=0.0,
        )
        assert out.attempts == 3
        assert out.extra_time == pytest.approx((10e-6 + 5e-6) + (20e-6 + 5e-6))
        assert [(a, r) for a, r, _ in out.retries] == [(1, "drop"), (2, "corrupt")]

    def test_delay_and_duplicate_charges(self):
        out = deliver_flight(
            RetryPolicy(),
            FaultVerdict([], 30e-6, True),
            resend_wire_time=0.0,
            duplicate_cpu_time=2e-6,
        )
        assert out.extra_time == pytest.approx(30e-6 + 2e-6)
        assert out.duplicates == 1

    def test_max_retries_stops_charging(self):
        pol = RetryPolicy(timeout=10e-6, max_retries=2, max_backoff=1.0)
        out = deliver_flight(
            pol,
            FaultVerdict(["drop"] * 10, 0.0, False),
            resend_wire_time=0.0,
            duplicate_cpu_time=0.0,
        )
        assert len(out.retries) == 2, "escalation caps the charged re-sends"

    def test_pure_in_inputs(self):
        pol = RetryPolicy()
        v = FaultVerdict(["drop"], 1e-6, True)
        a = deliver_flight(pol, v, resend_wire_time=1e-6, duplicate_cpu_time=1e-6)
        b = deliver_flight(pol, v, resend_wire_time=1e-6, duplicate_cpu_time=1e-6)
        assert a.extra_time == b.extra_time and a.retries == b.retries


class TestSequencedChannel:
    def test_duplicate_delivery_is_noop(self):
        ch = SequencedChannel()
        seq = ch.next_seq(src=0)
        assert ch.receive(0, seq, "payload") is True
        assert ch.receive(0, seq, "payload") is False
        assert ch.duplicates_dropped == 1
        assert ch.delivered(0) == ["payload"]

    def test_per_sender_sequences_independent(self):
        ch = SequencedChannel()
        assert ch.next_seq(0) == 0
        assert ch.next_seq(1) == 0
        assert ch.next_seq(0) == 1

    def test_delivered_in_sequence_order(self):
        ch = SequencedChannel()
        ch.receive(2, 1, "b")
        ch.receive(2, 0, "a")
        assert ch.delivered(2) == ["a", "b"]
