"""Crash recovery: the headline property is that a run with injected
faults commits results bitwise-identical to a fault-free run, while
its simulated clock pays for the faults.

Faults only ever add simulated time (retransmits, backoff waits,
detection, restore, re-executed lost work) — never mutate payloads —
and a phase boundary is a consistent global cut, so recovery by
rollback + deterministic replay reproduces the exact committed state.
docs/RESILIENCE.md states the argument; these tests check it end to
end on the paper's applications.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.core.errors import ResilienceError
from repro.machine import Cluster
from repro.obs import RunReport
from repro.obs.events import PhaseTrace
from repro.resilience import FaultPlan, ResiliencePolicy


def _cluster(n_nodes=2, **kw):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=2, **kw))


def _cg_main(nx=4, iters=5):
    from repro.apps.cg.ppm_cg import _cg_kernel
    from repro.apps.cg.problem import build_chimney_problem

    prob = build_chimney_problem(nx)

    def main(ppm):
        n = prob.n
        xs = ppm.global_shared("cg_x", n)
        rs = ppm.global_shared("cg_r", n)
        ps = ppm.global_shared("cg_p", n)
        qs = ppm.global_shared("cg_q", n)
        stats = ppm.global_shared("cg_stats", 3)
        rs[:] = prob.b
        ps[:] = prob.b
        ppm.reset_clocks()
        ppm.do(4, _cg_kernel, prob.A, xs, rs, ps, qs, stats, 1.0, iters, 0.0)
        return xs.committed

    return main


class TestDefaultPathUntouched:
    def test_no_resilience_manager_by_default(self):
        ppm, _ = run_ppm(_cg_main(), _cluster())
        assert ppm.runtime.resilience is None

    def test_rejects_non_policy_resilience(self):
        with pytest.raises(ValueError, match="ResiliencePolicy"):
            run_ppm(_cg_main(), _cluster(), resilience="aggressive")


class TestCrashRecovery:
    def test_crash_with_checkpoint_bitwise_identical(self):
        main = _cg_main()
        _, x_clean = run_ppm(main, _cluster())
        plan = FaultPlan(seed=5).crash(node=1, phase=7)
        trace = PhaseTrace()
        ppm, x = run_ppm(
            main, _cluster(), faults=plan, checkpoint_every=3, trace=trace
        )
        assert np.array_equal(x, x_clean)
        mgr = ppm.runtime.resilience
        assert mgr.recoveries == 1
        assert mgr.incarnations == 2
        recs = [e for e in trace.events if e.kind == "recovery"]
        assert len(recs) == 1
        rec = recs[0]
        assert rec.phase == 7 and rec.node == 1
        assert rec.checkpoint_phase == 5  # last multiple-of-3 boundary
        assert rec.t_resume > rec.t_crash
        # Rolled back to a checkpoint, so only the work since that cut
        # was lost — strictly less than restarting the whole run.
        assert 0 <= rec.lost_work < rec.t_crash

    def test_crash_without_checkpoint_restarts_from_scratch(self):
        main = _cg_main()
        _, x_clean = run_ppm(main, _cluster())
        plan = FaultPlan(seed=5).crash(node=0, phase=4)
        trace = PhaseTrace()
        ppm, x = run_ppm(main, _cluster(), faults=plan, trace=trace)
        assert np.array_equal(x, x_clean)
        rec = next(e for e in trace.events if e.kind == "recovery")
        assert rec.checkpoint_phase == -1
        assert rec.lost_work == pytest.approx(rec.t_crash)

    def test_crash_costs_simulated_time(self):
        main = _cg_main()
        ppm_clean, _ = run_ppm(main, _cluster())
        plan = FaultPlan(seed=5).crash(node=1, phase=7)
        ppm, _ = run_ppm(main, _cluster(), faults=plan, checkpoint_every=3)
        pol = ppm.runtime.resilience.policy
        assert ppm.elapsed > ppm_clean.elapsed + pol.detection_timeout

    def test_two_crashes_two_recoveries(self):
        main = _cg_main()
        _, x_clean = run_ppm(main, _cluster())
        plan = (
            FaultPlan(seed=5).crash(node=0, phase=3).crash(node=1, phase=9)
        )
        ppm, x = run_ppm(main, _cluster(), faults=plan, checkpoint_every=2)
        assert np.array_equal(x, x_clean)
        assert ppm.runtime.resilience.recoveries == 2

    def test_max_incarnations_aborts_eventually(self):
        main = _cg_main()
        plan = FaultPlan(seed=5)
        for ph in range(4):
            plan = plan.crash(node=0, phase=ph)
        with pytest.raises(ResilienceError, match="incarnations"):
            run_ppm(
                main,
                _cluster(),
                faults=plan,
                resilience=ResiliencePolicy(max_incarnations=2),
            )


class TestMessageFaults:
    def test_drops_charge_retries_but_preserve_results(self):
        main = _cg_main()
        ppm_clean, x_clean = run_ppm(main, _cluster())
        plan = (
            FaultPlan(seed=3)
            .drop_messages(0.5)
            .duplicate_messages(0.3)
            .delay_messages(0.2, 20e-6)
        )
        trace = PhaseTrace()
        ppm, x = run_ppm(main, _cluster(), faults=plan, trace=trace)
        assert np.array_equal(x, x_clean)
        mgr = ppm.runtime.resilience
        assert mgr.retries > 0
        assert ppm.elapsed > ppm_clean.elapsed
        assert any(e.kind == "retry_attempt" for e in trace.events)
        report = RunReport.from_trace(trace)
        assert report.resilience is not None
        assert report.resilience.retries == mgr.retries

    def test_straggler_inflates_elapsed_only(self):
        main = _cg_main()
        ppm_clean, x_clean = run_ppm(main, _cluster())
        plan = FaultPlan(seed=1).straggle(node=0, factor=3.0)
        ppm, x = run_ppm(main, _cluster(), faults=plan)
        assert np.array_equal(x, x_clean)
        assert ppm.elapsed > ppm_clean.elapsed

    def test_fault_free_report_has_no_resilience_section(self):
        trace = PhaseTrace()
        run_ppm(_cg_main(), _cluster(), trace=trace)
        report = RunReport.from_trace(trace)
        assert report.resilience is None


class TestRecoveryEquivalenceProperty:
    """Hypothesis: for any seed, crash site and checkpoint interval,
    recovery reproduces the fault-free committed state exactly."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        crash_phase=st.integers(1, 14),
        every=st.one_of(st.none(), st.integers(1, 6)),
    )
    def test_cg_recovery_equivalence(self, seed, crash_phase, every):
        main = _cg_main()
        _, x_clean = run_ppm(main, _cluster())
        plan = (
            FaultPlan(seed=seed)
            .drop_messages(0.2)
            .crash(node=seed % 2, phase=crash_phase)
        )
        _, x = run_ppm(main, _cluster(), faults=plan, checkpoint_every=every)
        assert np.array_equal(x, x_clean)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), crash_phase=st.integers(1, 5))
    def test_bfs_recovery_equivalence(self, seed, crash_phase):
        from repro.apps.graph import hashed_graph, ppm_bfs

        graph = hashed_graph(300, degree=4, seed=7)
        clean, _ = ppm_bfs(graph, 0, _cluster())
        plan = (
            FaultPlan(seed=seed)
            .drop_messages(0.2)
            .crash(node=0, phase=crash_phase)
        )
        dist, _ = ppm_bfs(
            graph, 0, _cluster(), faults=plan, checkpoint_every=2
        )
        assert np.array_equal(dist, clean)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), crash_phase=st.integers(1, 8))
    def test_multigrid_recovery_equivalence(self, seed, crash_phase):
        from repro.apps.multigrid import build_mg_problem, ppm_mg_solve

        problem = build_mg_problem(levels=4)
        clean, _ = ppm_mg_solve(problem, _cluster(), cycles=2)
        plan = FaultPlan(seed=seed).crash(node=1, phase=crash_phase)
        u, _ = ppm_mg_solve(
            problem, _cluster(), cycles=2, faults=plan, checkpoint_every=3
        )
        assert np.array_equal(u, clean)
