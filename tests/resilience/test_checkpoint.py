"""Checkpoint schedule, capture/restore and cost charging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.errors import ResilienceConfigError
from repro.machine import Cluster
from repro.obs.events import PhaseTrace
from repro.resilience.checkpoint import CheckpointManager


def _cluster(**kw):
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2, **kw))


@ppm_function
def _bump(ctx, A, B, rounds):
    for _ in range(rounds):
        yield ctx.global_phase
        A[ctx.global_rank] = A[ctx.global_rank] + 1.0
        B[ctx.node_rank] = B[ctx.node_rank] + 10.0
        ctx.work(100)


class TestValidation:
    @pytest.mark.parametrize("every", [0, -1, 1.5, True, "2"])
    def test_rejects_bad_interval(self, every):
        with pytest.raises(ResilienceConfigError, match="PPM303"):
            CheckpointManager(every)

    def test_rejects_bad_cost_knobs(self):
        with pytest.raises(ResilienceConfigError, match="PPM303"):
            CheckpointManager(1, bytes_per_second=0.0)
        with pytest.raises(ResilienceConfigError, match="PPM303"):
            CheckpointManager(1, alpha=-1.0)


class TestSchedule:
    def test_due_every_phase(self):
        ck = CheckpointManager(1)
        assert all(ck.due(i) for i in range(5))

    def test_due_every_third_phase(self):
        ck = CheckpointManager(3)
        assert [ck.due(i) for i in range(7)] == [
            False, False, True, False, False, True, False,
        ]


class TestTakeAndRestore:
    def test_checkpoint_captures_committed_state(self):
        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.node_shared("B", 2)
            ppm.do(2, _bump, A, B, 4)
            return A.committed.copy(), B.instance(0).copy()

        trace = PhaseTrace()
        ppm, (a, b0) = run_ppm(
            main, _cluster(), checkpoint_every=2, trace=trace
        )
        ck = ppm.runtime.resilience.checkpoints
        assert ck.count == 2
        assert ck.latest.phase == 3
        # After 4 bump phases every element was incremented 4 times.
        assert np.array_equal(a, np.full(4, 4.0))
        assert np.array_equal(ck.latest.arrays["A"], a)
        assert [np.array_equal(x, np.full(2, 40.0)) for x in ck.latest.arrays["B"]]
        kinds = [e.kind for e in trace.events if e.kind == "checkpoint_taken"]
        assert len(kinds) == 2

    def test_checkpoint_charges_simulated_time(self):
        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.node_shared("B", 2)
            ppm.do(2, _bump, A, B, 3)
            return None

        ppm_plain, _ = run_ppm(main, _cluster())
        ppm_ck, _ = run_ppm(main, _cluster(), checkpoint_every=1)
        ck = ppm_ck.runtime.resilience.checkpoints
        assert ck.count == 3
        assert ppm_ck.elapsed == pytest.approx(
            ppm_plain.elapsed + ck.total_time
        ), "checkpoint write-out must be charged to the simulated clock"

    def test_only_latest_checkpoint_retained(self):
        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.node_shared("B", 2)
            ppm.do(2, _bump, A, B, 5)
            return None

        ppm, _ = run_ppm(main, _cluster(), checkpoint_every=1)
        ck = ppm.runtime.resilience.checkpoints
        assert ck.count == 5
        assert ck.latest.phase == 4

    def test_restore_overwrites_shared_state(self):
        """Take a checkpoint mid-run, mutate, restore, compare."""
        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.node_shared("B", 2)
            ppm.do(2, _bump, A, B, 2)  # phases 0..1, checkpoint after 1
            mid = A.committed.copy()
            ppm.do(2, _bump, A, B, 1)  # phase 2 mutates; no checkpoint due
            ck = ppm.runtime.resilience.checkpoints
            assert not np.array_equal(A.committed, mid)
            # Roll the arrays (not the clocks) back by hand.
            saved_latest = ck.latest
            assert saved_latest.phase == 1
            ck.restore(ppm.runtime)
            assert np.array_equal(A.committed, mid)
            assert np.array_equal(B.instance(0), saved_latest.arrays["B"][0])
            return None

        run_ppm(main, _cluster(), checkpoint_every=2)
