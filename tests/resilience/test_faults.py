"""Fault-plan validation and injector determinism."""

from __future__ import annotations

import pytest

from repro.core.errors import ResilienceConfigError
from repro.resilience import FaultInjector, FaultPlan


class TestPlanValidation:
    def test_rejects_probability_of_one(self):
        # p == 1 would make every attempt fail: the flight never
        # delivers and the retry loop only ends at the escalation cap.
        with pytest.raises(ResilienceConfigError, match="PPM301"):
            FaultPlan().drop_messages(1.0)

    @pytest.mark.parametrize("p", [-0.1, float("nan"), float("inf"), 2.0])
    def test_rejects_bad_probabilities(self, p):
        with pytest.raises(ResilienceConfigError, match="PPM301"):
            FaultPlan().corrupt_messages(p)

    def test_rejects_negative_delay(self):
        with pytest.raises(ResilienceConfigError, match="PPM301"):
            FaultPlan().delay_messages(0.1, -1e-6)

    @pytest.mark.parametrize("node", [-1, 1.5, True, "0"])
    def test_rejects_bad_crash_node(self, node):
        with pytest.raises(ResilienceConfigError, match="PPM302"):
            FaultPlan().crash(node=node, phase=0)

    def test_rejects_negative_crash_phase(self):
        with pytest.raises(ResilienceConfigError, match="PPM302"):
            FaultPlan().crash(node=0, phase=-1)

    @pytest.mark.parametrize("factor", [0.5, 0.0, -1.0, float("nan")])
    def test_rejects_straggler_factor_below_one(self, factor):
        with pytest.raises(ResilienceConfigError, match="PPM305"):
            FaultPlan().straggle(node=0, factor=factor)

    def test_chaining_returns_self(self):
        plan = FaultPlan(seed=1).drop_messages(0.1).crash(node=0, phase=3)
        assert isinstance(plan, FaultPlan)
        assert plan.has_message_faults
        assert len(plan.crashes) == 1

    def test_no_message_faults_without_message_rules(self):
        assert not FaultPlan().crash(node=0, phase=1).has_message_faults


class TestInjectorBinding:
    def test_crash_node_range_checked_against_cluster(self):
        plan = FaultPlan().crash(node=4, phase=0)
        with pytest.raises(ResilienceConfigError, match="PPM302"):
            FaultInjector(plan, 4)

    def test_straggler_node_range_checked_against_cluster(self):
        plan = FaultPlan().straggle(node=2, factor=2.0)
        with pytest.raises(ResilienceConfigError, match="PPM302"):
            FaultInjector(plan, 2)


class TestDeterminism:
    def test_same_coordinates_same_verdict(self):
        plan = FaultPlan(seed=42).drop_messages(0.5).duplicate_messages(0.3)
        a = FaultInjector(plan, 4)
        b = FaultInjector(plan, 4)
        for phase in range(20):
            for src in range(4):
                for dst in range(4):
                    va = a.flight(phase, src, dst)
                    vb = b.flight(phase, src, dst)
                    assert va.failures == vb.failures
                    assert va.delay == vb.delay
                    assert va.duplicate == vb.duplicate

    def test_repeated_query_is_pure(self):
        inj = FaultInjector(FaultPlan(seed=7).drop_messages(0.5), 2)
        first = [inj.flight(p, 0, 1).failures for p in range(50)]
        second = [inj.flight(p, 0, 1).failures for p in range(50)]
        assert first == second

    def test_seed_changes_verdicts(self):
        def pattern(seed):
            inj = FaultInjector(FaultPlan(seed=seed).drop_messages(0.5), 2)
            return [len(inj.flight(p, 0, 1).failures) for p in range(64)]

        assert pattern(1) != pattern(2)


class TestTargeting:
    def test_phase_filter(self):
        plan = FaultPlan(seed=0).drop_messages(0.999999, phases=[3])
        inj = FaultInjector(plan, 2)
        assert inj.flight(3, 0, 1).failures
        assert inj.flight(4, 0, 1).clean

    def test_src_dst_filter(self):
        plan = FaultPlan(seed=0).drop_messages(0.999999, src=0, dst=1)
        inj = FaultInjector(plan, 3)
        assert inj.flight(0, 0, 1).failures
        assert inj.flight(0, 1, 0).clean
        assert inj.flight(0, 0, 2).clean

    def test_flight_caps_consecutive_failures(self):
        plan = FaultPlan(seed=0).drop_messages(0.999999)
        inj = FaultInjector(plan, 2, max_attempts=5)
        v = inj.flight(0, 0, 1)
        assert len(v.failures) == 4  # the 5th attempt escalates through


class TestCrashSchedule:
    def test_crash_fires_once(self):
        inj = FaultInjector(FaultPlan().crash(node=1, phase=5), 2)
        crash = inj.crash_at(5)
        assert crash is not None and crash.node == 1
        inj.consume(crash)
        assert inj.crash_at(5) is None, "consumed crash must not re-fire"

    def test_no_crash_on_other_phases(self):
        inj = FaultInjector(FaultPlan().crash(node=0, phase=5), 2)
        assert inj.crash_at(4) is None


class TestStragglers:
    def test_factor_multiplies(self):
        plan = (
            FaultPlan()
            .straggle(node=1, factor=2.0)
            .straggle(node=1, factor=3.0, phases=[0])
        )
        inj = FaultInjector(plan, 2)
        assert inj.straggler_factor(0, 1) == pytest.approx(6.0)
        assert inj.straggler_factor(1, 1) == pytest.approx(2.0)
        assert inj.straggler_factor(0, 0) == 1.0
