"""The ``python -m repro.resilience`` chaos demo."""

from __future__ import annotations

import json

from repro.resilience.__main__ import main


class TestDemo:
    def test_small_check_passes(self, capsys):
        assert main(["demo", "--small", "--check"]) == 0
        out = capsys.readouterr().out
        assert "bitwise-identical solution: True" in out
        assert "check passed" in out
        assert "recoveries: 1" in out

    def test_writes_trace(self, tmp_path, capsys):
        out_file = tmp_path / "chaos.trace.json"
        assert main(["demo", "--small", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "ppm-trace"
        kinds = {e["event"] for e in payload["events"]}
        assert "fault_injected" in kinds
        assert "recovery" in kinds
        assert "checkpoint_taken" in kinds

    def test_usage_error_exits_2(self):
        assert main(["nonsense"]) == 2
