"""Smoke tests: the fast examples must run end-to-end as scripts.

The heavyweight examples (cg_solver, matrix_generation, barnes_hut,
graph_bfs, triangular_solve) exercise code paths already covered by
tests/apps at smaller sizes; here we execute the two quick ones in a
real subprocess to catch import/path/printing regressions.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run_example("quickstart.py")
        assert "OK" in out
        assert "simulated time" in out

    def test_histogram(self):
        out = _run_example("histogram.py")
        assert "binned into" in out
        assert "simulated time" in out

    def test_all_examples_exist_and_have_docstrings(self):
        expected = {
            "quickstart.py",
            "cg_solver.py",
            "matrix_generation.py",
            "barnes_hut.py",
            "histogram.py",
            "graph_bfs.py",
            "triangular_solve.py",
            "multigrid_solver.py",
        }
        present = {f for f in os.listdir(_EXAMPLES) if f.endswith(".py")}
        assert expected <= present
        for name in expected:
            with open(os.path.join(_EXAMPLES, name)) as fh:
                head = fh.read(200)
            assert head.lstrip().startswith('"""'), f"{name} lacks a docstring"
