"""Tests for SARIF 2.1.0 export and baseline suppression."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sarif import (
    BASELINE_VERSION,
    SARIF_VERSION,
    apply_baseline,
    fingerprint,
    fingerprint_v1,
    load_baseline,
    to_sarif,
    write_baseline,
    write_sarif,
)


def diag(rule="PPM401", severity="error", path="app.py", line=12, **kw):
    kw.setdefault("expr", "X[ctx.global_rank]")
    kw.setdefault("kernel", "kernel")
    return Diagnostic(
        tool="dataflow",
        rule=rule,
        severity=severity,
        message=f"{rule} finding",
        path=path,
        line=line,
        phase_index=0,
        phase_kind="global",
        variable="X",
        **kw,
    )


class TestSarifDocument:
    def test_structure_and_rule_metadata(self):
        doc = to_sarif([diag(), diag(rule="PPM404", severity="note")])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        [run] = doc["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert set(rules) == {"PPM401", "PPM404"}
        assert rules["PPM401"]["helpUri"].endswith(
            "docs/DIAGNOSTICS.md#ppm401"
        )
        results = run["results"]
        assert len(results) == 2
        assert results[0]["ruleId"] == "PPM401"
        assert results[0]["level"] == "error"
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "app.py"
        assert loc["region"]["startLine"] == 12
        prints = results[0]["partialFingerprints"]
        assert prints["ppmFingerprint/v1"] == fingerprint_v1(diag())
        assert prints["ppmFingerprint/v2"] == fingerprint(diag())

    def test_write_sarif_round_trips_as_json(self, tmp_path):
        out = tmp_path / "out.sarif"
        write_sarif([diag()], str(out))
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "PPM401"

    def test_suppressed_results_are_marked(self):
        d = diag()
        doc = to_sarif([d], suppressed={fingerprint(d)})
        [res] = doc["runs"][0]["results"]
        assert res["suppressions"][0]["kind"] == "external"

    def test_v1_fingerprint_also_suppresses(self):
        d = diag()
        doc = to_sarif([d], suppressed={fingerprint_v1(d)})
        [res] = doc["runs"][0]["results"]
        assert res["suppressions"][0]["kind"] == "external"


class TestFingerprints:
    def test_v1_fingerprint_is_rule_path_line(self):
        assert fingerprint_v1(diag()) == "PPM401:app.py:12"

    def test_content_fingerprint_ignores_position(self):
        """The v2 fingerprint survives edits that shift lines or move
        the kernel to another file."""
        a = diag(line=12, path="app.py")
        b = diag(line=250, path="moved/app.py")
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint_v1(a) != fingerprint_v1(b)

    def test_content_fingerprint_keys_on_rule_kernel_phase_expr(self):
        base = diag()
        assert fingerprint(diag(rule="PPM406")) != fingerprint(base)
        assert fingerprint(diag(kernel="other")) != fingerprint(base)
        assert fingerprint(diag(expr="X[r + 1]")) != fingerprint(base)

    def test_expression_is_whitespace_normalized(self):
        a = diag(expr="X[ i +  1 ]")
        b = diag(expr="X[ i + 1 ]")
        assert fingerprint(a) == fingerprint(b)

    def test_falls_back_to_message_without_expr(self):
        d = diag(expr=None)
        assert "PPM401 finding" in fingerprint(d)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [diag(), diag(rule="PPM402", severity="warning", line=30)]
        write_baseline(findings, str(path))
        assert load_baseline(str(path)) == {
            fingerprint(d) for d in findings
        }

    def test_written_baseline_is_versioned(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([diag()], str(path))
        doc = json.loads(path.read_text())
        assert doc["version"] == BASELINE_VERSION == 2
        assert doc["suppressions"] == [fingerprint(diag())]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_apply_baseline_splits(self):
        old = diag()
        new = diag(rule="PPM403", line=40)
        active, suppressed = apply_baseline(
            [old, new], {fingerprint(old)}
        )
        assert active == [new]
        assert suppressed == [old]

    def test_legacy_v1_baseline_still_suppresses(self, tmp_path):
        """A version-1 file (rule:path:line strings, no version key)
        keeps suppressing via the legacy fingerprint."""
        d = diag()
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"suppressions": [fingerprint_v1(d)]}))
        active, suppressed = apply_baseline([d], load_baseline(str(path)))
        assert active == []
        assert suppressed == [d]

    def test_v1_to_v2_migration(self, tmp_path):
        """Loading a v1 baseline and rewriting it produces a v2 file
        whose content fingerprints survive a line shift."""
        d = diag()
        old = tmp_path / "old.json"
        old.write_text(json.dumps([fingerprint_v1(d)]))
        _, suppressed = apply_baseline([d], load_baseline(str(old)))
        write_baseline(suppressed, str(old))
        doc = json.loads(old.read_text())
        assert doc["version"] == 2
        moved = diag(line=99)
        active, quiet = apply_baseline([moved], load_baseline(str(old)))
        assert active == [] and quiet == [moved]


# ----------------------------------------------------------------------
# SARIF 2.1.0 schema validation
# ----------------------------------------------------------------------
# Faithful subset of the OASIS sarif-schema-2.1.0.json covering every
# property this exporter emits.  ``additionalProperties: false`` on the
# objects we produce keeps the exporter honest: an unknown key fails
# validation here exactly as it would against the full schema.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "additionalProperties": False,
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "additionalProperties": False,
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "additionalProperties": False,
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                                "helpUri": {
                                                    "type": "string"
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "additionalProperties": False,
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": (
                                                                    "string"
                                                                )
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": (
                                                                    "integer"
                                                                ),
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "partialFingerprints": {
                                    "type": "object",
                                    "additionalProperties": {
                                        "type": "string"
                                    },
                                },
                                "properties": {"type": "object"},
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            },
                                            "justification": {
                                                "type": "string"
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifSchema:
    @pytest.fixture(autouse=True)
    def _validator(self):
        jsonschema = pytest.importorskip("jsonschema")
        self.validate = lambda doc: jsonschema.validate(
            doc, SARIF_SUBSET_SCHEMA
        )

    def test_empty_run_validates(self):
        self.validate(to_sarif([]))

    def test_all_bounds_and_liveness_rules_validate(self):
        findings = [
            diag(rule="PPM406", expr="X[ctx.global_rank + n]"),
            diag(rule="PPM407", severity="warning", expr="X[hi]"),
            diag(rule="PPM408", expr="X[i] = Y[i]"),
            diag(rule="PPM409", severity="warning", expr="X[lo:hi]"),
            diag(rule="PPM410", severity="warning", expr=None),
        ]
        doc = to_sarif(findings)
        self.validate(doc)
        rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert rules == {"PPM406", "PPM407", "PPM408", "PPM409", "PPM410"}

    def test_baseline_suppressed_results_validate(self):
        old, new = diag(), diag(rule="PPM406", line=40)
        doc = to_sarif([old, new], suppressed={fingerprint(old)})
        self.validate(doc)
        marked = [
            r
            for r in doc["runs"][0]["results"]
            if "suppressions" in r
        ]
        assert len(marked) == 1

    def test_diag_without_location_validates(self):
        self.validate(to_sarif([diag(path=None, line=None)]))

    def test_invalid_document_rejected(self):
        """The subset schema has teeth: a malformed level fails."""
        jsonschema = pytest.importorskip("jsonschema")
        doc = to_sarif([diag()])
        doc["runs"][0]["results"][0]["level"] = "fatal"
        with pytest.raises(jsonschema.ValidationError):
            self.validate(doc)
