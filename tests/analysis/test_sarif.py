"""Tests for SARIF 2.1.0 export and baseline suppression."""

from __future__ import annotations

import json

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.sarif import (
    SARIF_VERSION,
    apply_baseline,
    fingerprint,
    load_baseline,
    to_sarif,
    write_baseline,
    write_sarif,
)


def diag(rule="PPM401", severity="error", path="app.py", line=12):
    return Diagnostic(
        tool="dataflow",
        rule=rule,
        severity=severity,
        message=f"{rule} finding",
        path=path,
        line=line,
        phase_index=0,
        phase_kind="global",
        variable="X",
    )


class TestSarifDocument:
    def test_structure_and_rule_metadata(self):
        doc = to_sarif([diag(), diag(rule="PPM404", severity="note")])
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        [run] = doc["runs"]
        rules = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert set(rules) == {"PPM401", "PPM404"}
        assert rules["PPM401"]["helpUri"].endswith(
            "docs/DIAGNOSTICS.md#ppm401"
        )
        results = run["results"]
        assert len(results) == 2
        assert results[0]["ruleId"] == "PPM401"
        assert results[0]["level"] == "error"
        loc = results[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "app.py"
        assert loc["region"]["startLine"] == 12
        assert (
            results[0]["partialFingerprints"]["ppmFingerprint/v1"]
            == fingerprint(diag())
        )

    def test_write_sarif_round_trips_as_json(self, tmp_path):
        out = tmp_path / "out.sarif"
        write_sarif([diag()], str(out))
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "PPM401"

    def test_suppressed_results_are_marked(self):
        d = diag()
        doc = to_sarif([d], suppressed={fingerprint(d)})
        [res] = doc["runs"][0]["results"]
        assert res["suppressions"][0]["kind"] == "external"


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [diag(), diag(rule="PPM402", severity="warning", line=30)]
        write_baseline(findings, str(path))
        assert load_baseline(str(path)) == {
            fingerprint(d) for d in findings
        }

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_apply_baseline_splits(self):
        old = diag()
        new = diag(rule="PPM403", line=40)
        active, suppressed = apply_baseline(
            [old, new], {fingerprint(old)}
        )
        assert active == [new]
        assert suppressed == [old]

    def test_fingerprint_is_rule_path_line(self):
        assert fingerprint(diag()) == "PPM401:app.py:12"
