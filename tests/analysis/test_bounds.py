"""Unit tests for the interprocedural bounds & shape passes.

PPM406 (proven out-of-bounds, concrete witness rank), PPM407
(unprovable bound over chunk-algebra expressions, named), PPM408
(row-width/dtype mismatch along RAW edges), and the extent-group
canonicalization that lets one array be indexed with a same-sized
array's block bounds.
"""

from __future__ import annotations

from repro.analysis import extent_groups
from repro.analysis.dataflow import verify_source
from repro.analysis.lint import build_module_model


def rules(diags):
    return {d.rule for d in diags}


OOB = '''
from repro.core import ppm_function

def build(ppm, cluster):
    X = ppm.global_shared("X", 64)
    ppm.do(cluster.total_cores(), oob, X)

@ppm_function
def oob(ctx, X):
    yield ctx.global_phase
    X[64] = 0.0
'''


CLEAN = '''
from repro.core import ppm_function
from repro.apps.common import split_range

def build(ppm, cluster):
    X = ppm.global_shared("X", 64)
    ppm.do(cluster.total_cores(), k, X)

@ppm_function
def k(ctx, X):
    yield ctx.global_phase
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    X[lo:hi] = 1.0
'''


MIXED = '''
from repro.core import ppm_function

def build(ppm, cluster):
    X = ppm.global_shared("X", 64)
    Y = ppm.global_shared("Y", 32)
    ppm.do(cluster.total_cores(), k, X, Y)

@ppm_function
def k(ctx, X, Y):
    yield ctx.global_phase
    lo, hi = Y.local_range(ctx.node_id)
    if ctx.global_rank == 0:
        X[lo:hi] = 1.0
'''


SHAPE = '''
from repro.core import ppm_function

def build(ppm, cluster):
    X = ppm.global_shared("X", 64)
    Y = ppm.global_shared("Y", 64)
    ppm.do(cluster.total_cores(), k, X, Y)

@ppm_function
def k(ctx, X, Y):
    yield ctx.global_phase
    if ctx.global_rank == 0:
        X[0:8] = Y[0:4]
    yield ctx.global_phase
    if ctx.global_rank == 0:
        Y[0:8] = X[0:8]
'''


class TestBounds:
    def test_constant_oob_is_ppm406_with_witness_rank(self):
        diags, _ = verify_source(OOB, "oob.py")
        d = next(d for d in diags if d.rule == "PPM406")
        assert d.severity == "error"
        assert d.kernel == "oob"
        # The witness is concrete: rank 0 always exists, and the
        # folded index and declared extent are both named.
        assert "at VP rank 0, index 64 >= extent 64" in d.message

    def test_split_range_block_write_proves_clean(self):
        diags, (summary,) = verify_source(CLEAN, "clean.py")
        assert not rules(diags) & {"PPM406", "PPM407", "PPM408"}
        assert summary.certified

    def test_cross_extent_indexing_is_ppm407_naming_the_bound(self):
        diags, (summary,) = verify_source(MIXED, "mixed.py")
        d = next(d for d in diags if d.rule == "PPM407")
        assert d.severity == "warning"
        assert "unprovable upper bound" in d.message
        assert "'X'" in d.message
        # Advisory only: the conflict-freedom certificate is separate.
        assert summary.certified

    def test_same_extent_group_discharges_silently(self):
        same = MIXED.replace(
            'global_shared("Y", 32)', 'global_shared("Y", 64)'
        )
        diags, _ = verify_source(same, "same.py")
        assert "PPM407" not in rules(diags)

    def test_extent_groups_share_a_representative(self):
        model = build_module_model(
            MIXED.replace('global_shared("Y", 32)', 'global_shared("Y", 64)'),
            "same.py",
        )
        fn = next(f for f in model.functions if f.name == "k")
        groups = extent_groups(fn)
        assert groups["X"] == groups["Y"]

    def test_distinct_sizes_keep_distinct_groups(self):
        model = build_module_model(MIXED, "mixed.py")
        fn = next(f for f in model.functions if f.name == "k")
        groups = extent_groups(fn)
        assert groups["X"] != groups["Y"]


class TestShapes:
    def test_width_mismatch_on_raw_edge_is_ppm408(self):
        diags, _ = verify_source(SHAPE, "shape.py")
        d = next(d for d in diags if d.rule == "PPM408")
        assert d.severity == "error"
        assert "length 4" in d.message and "8 rows" in d.message
        assert "downstream phase reads" in d.message

    def test_width_mismatch_without_reader_is_silent(self):
        # No downstream phase reads X, so the mismatched write is the
        # kernel's own business (no RAW edge, no PPM408).
        unread = SHAPE.replace("Y[0:8] = X[0:8]", "Y[0:8] = 2.0")
        diags, _ = verify_source(unread, "unread.py")
        assert "PPM408" not in rules(diags)
