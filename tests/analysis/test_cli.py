"""Tests for the ``python -m repro.analysis`` command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

CLEAN = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] = 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)

BUGGY = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] += 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)

WARN_ONLY = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] = 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(8, kernel, X)
    """
)


def run_cli(*args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        proc = run_cli(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean: no findings" in proc.stdout

    def test_error_finding_exits_one(self, tmp_path):
        path = tmp_path / "buggy.py"
        path.write_text(BUGGY)
        proc = run_cli(str(path))
        assert proc.returncode == 1
        assert "PPM103" in proc.stdout
        assert "1 error(s)" in proc.stdout

    def test_warning_only_passes_unless_strict(self, tmp_path):
        path = tmp_path / "warn.py"
        path.write_text(WARN_ONLY)
        assert run_cli(str(path)).returncode == 0
        proc = run_cli("--strict", str(path))
        assert proc.returncode == 1
        assert "PPM105" in proc.stdout

    def test_directory_recursion(self, tmp_path):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text(CLEAN)
        (sub / "b.py").write_text(BUGGY)
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "b.py" in proc.stdout and "a.py" not in proc.stdout

    def test_json_output(self, tmp_path):
        path = tmp_path / "buggy.py"
        path.write_text(BUGGY)
        proc = run_cli("--json", str(path))
        findings = json.loads(proc.stdout)
        assert len(findings) == 1
        assert findings[0]["rule"] == "PPM103"
        assert findings[0]["path"] == str(path)
        assert findings[0]["line"] == 6

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("PPM101", "PPM102", "PPM103", "PPM104", "PPM105"):
            assert rule_id in proc.stdout

    def test_verify_list_rules_covers_all_dataflow_codes(self):
        """No hard-coded rule tuple: every registered PPM4xx code is
        listed, including the bounds/liveness family."""
        from repro.analysis.diagnostics import ALL_CODES

        proc = run_cli("verify", "--list-rules")
        assert proc.returncode == 0
        for code in (c for c in ALL_CODES if c.startswith("PPM4")):
            assert code in proc.stdout

    def test_list_codes_prints_every_registered_code(self):
        from repro.analysis.diagnostics import ALL_CODES

        proc = run_cli("--list-codes")
        assert proc.returncode == 0
        for code, summary in ALL_CODES.items():
            assert code in proc.stdout
            assert summary in proc.stdout

    def test_no_paths_is_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        proc = run_cli(str(tmp_path / "nope.txt"))
        assert proc.returncode == 2

    def test_repo_gate_passes(self):
        """The CI lint gate: the shipped examples and apps are clean."""
        proc = run_cli("examples", os.path.join("src", "repro", "apps"))
        assert proc.returncode == 0, proc.stdout + proc.stderr


CONFLICTING = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] = float(ctx.global_rank)

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)

CERTIFIABLE = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[ctx.global_rank] = 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)


class TestExplain:
    def test_known_code_prints_docs_section(self):
        proc = run_cli("--explain", "PPM401")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.startswith("### PPM401")
        assert "write" in proc.stdout.lower()

    def test_lowercase_code_accepted(self):
        proc = run_cli("--explain", "ppm201")
        assert proc.returncode == 0
        assert proc.stdout.startswith("### PPM201")

    def test_unknown_code_is_usage_error(self):
        proc = run_cli("--explain", "PPM999")
        assert proc.returncode == 2
        assert "PPM999" in proc.stderr

    def test_every_registered_code_has_a_docs_anchor(self):
        """Satellite guarantee: ``--explain`` never falls back to the
        one-liner for a shipped rule — every code in the registry has
        a ``### PPMxxx`` section in docs/DIAGNOSTICS.md."""
        from repro.analysis.diagnostics import ALL_CODES

        doc = open(
            os.path.join(REPO_ROOT, "docs", "DIAGNOSTICS.md"),
            encoding="utf-8",
        ).read()
        missing = [c for c in ALL_CODES if f"### {c}" not in doc]
        assert missing == []


class TestVerifyCli:
    def test_conflicting_file_flagged_without_execution(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(CONFLICTING)
        proc = run_cli("verify", str(path))
        assert proc.returncode == 1
        assert "PPM401" in proc.stdout
        assert "0/1 phases certified" in proc.stdout

    def test_certifiable_file_reports_certificate(self, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(CERTIFIABLE)
        proc = run_cli("verify", str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "kernel: certified conflict-free" in proc.stdout
        assert "clean: no findings" in proc.stdout

    def test_json_output_includes_kernels_and_edges(self, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(CERTIFIABLE)
        proc = run_cli("verify", "--json", str(path))
        doc = json.loads(proc.stdout)
        assert doc["findings"] == []
        [kernel] = doc["kernels"]
        assert kernel["certified"] is True
        assert kernel["phases"][0]["kind"] == "global"
        assert "dependence_edges" in kernel

    def test_sarif_written_even_on_findings(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(CONFLICTING)
        sarif = tmp_path / "out.sarif"
        proc = run_cli("verify", "--sarif", str(sarif), str(path))
        assert proc.returncode == 1
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "PPM401" for r in doc["runs"][0]["results"]
        )

    def test_baseline_suppression_round_trip(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(CONFLICTING)
        baseline = tmp_path / "baseline.json"
        wrote = run_cli(
            "verify", "--write-baseline", str(baseline), str(path)
        )
        assert wrote.returncode == 1  # still failing on first run
        proc = run_cli("verify", "--baseline", str(baseline), str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "suppressed by baseline" in proc.stdout

    def test_verify_no_paths_is_usage_error(self):
        proc = run_cli("verify")
        assert proc.returncode == 2

    def test_json_and_sarif_are_mutually_exclusive(self, tmp_path):
        path = tmp_path / "good.py"
        path.write_text(CERTIFIABLE)
        proc = run_cli(
            "verify",
            "--json",
            "--sarif",
            str(tmp_path / "out.sarif"),
            str(path),
        )
        assert proc.returncode == 2
        assert "not allowed with" in proc.stderr

    def test_written_baseline_is_version_2(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text(CONFLICTING)
        baseline = tmp_path / "baseline.json"
        run_cli("verify", "--write-baseline", str(baseline), str(path))
        doc = json.loads(baseline.read_text())
        assert doc["version"] == 2
        # Content fingerprints, not rule:path:line positional ones.
        assert doc["suppressions"]
        assert not any(
            str(path) in s for s in doc["suppressions"]
        )

    def test_repo_verify_gate_passes(self):
        """The CI verify gate: all six shipped apps certify clean."""
        proc = run_cli(
            "verify", "--strict", os.path.join("src", "repro", "apps")
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert proc.stdout.count("certified conflict-free") >= 6
