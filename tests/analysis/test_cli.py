"""Tests for the ``python -m repro.analysis`` command-line interface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

CLEAN = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] = 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)

BUGGY = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] += 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(ppm.cores_per_node, kernel, X)
    """
)

WARN_ONLY = textwrap.dedent(
    """\
    from repro.core import ppm_function

    @ppm_function
    def kernel(ctx, X):
        yield ctx.global_phase
        X[0] = 1.0

    def main(ppm):
        X = ppm.global_shared("x", 10)
        ppm.do(8, kernel, X)
    """
)


def run_cli(*args: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text(CLEAN)
        proc = run_cli(str(path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean: no findings" in proc.stdout

    def test_error_finding_exits_one(self, tmp_path):
        path = tmp_path / "buggy.py"
        path.write_text(BUGGY)
        proc = run_cli(str(path))
        assert proc.returncode == 1
        assert "PPM103" in proc.stdout
        assert "1 error(s)" in proc.stdout

    def test_warning_only_passes_unless_strict(self, tmp_path):
        path = tmp_path / "warn.py"
        path.write_text(WARN_ONLY)
        assert run_cli(str(path)).returncode == 0
        proc = run_cli("--strict", str(path))
        assert proc.returncode == 1
        assert "PPM105" in proc.stdout

    def test_directory_recursion(self, tmp_path):
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "a.py").write_text(CLEAN)
        (sub / "b.py").write_text(BUGGY)
        proc = run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "b.py" in proc.stdout and "a.py" not in proc.stdout

    def test_json_output(self, tmp_path):
        path = tmp_path / "buggy.py"
        path.write_text(BUGGY)
        proc = run_cli("--json", str(path))
        findings = json.loads(proc.stdout)
        assert len(findings) == 1
        assert findings[0]["rule"] == "PPM103"
        assert findings[0]["path"] == str(path)
        assert findings[0]["line"] == 6

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("PPM101", "PPM102", "PPM103", "PPM104", "PPM105"):
            assert rule_id in proc.stdout

    def test_no_paths_is_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        proc = run_cli(str(tmp_path / "nope.txt"))
        assert proc.returncode == 2

    def test_repo_gate_passes(self):
        """The CI lint gate: the shipped examples and apps are clean."""
        proc = run_cli("examples", os.path.join("src", "repro", "apps"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
