"""Unit tests for the static linter: model construction + one class
per rule."""

from __future__ import annotations

import textwrap

from repro.analysis import build_module_model, lint_paths, lint_source

#: Shared scaffold: a driver declaring shared variables and launching a
#: kernel, with a hole for the kernel body.
TEMPLATE = """\
import numpy as np
from repro.core import ppm_function, run_ppm


@ppm_function
def kernel(ctx, X, Y):
{body}


def main(ppm):
    X = ppm.global_shared("x", 100)
    Y = ppm.node_shared("y", 100)
    ppm.do(ppm.cores_per_node, kernel, X, Y)
"""


def lint_kernel(body: str):
    src = TEMPLATE.format(body=textwrap.indent(textwrap.dedent(body), "    "))
    return lint_source(src, path="case.py")


def rules_of(diagnostics):
    return sorted(d.rule for d in diagnostics)


# ======================================================================
# Model construction
# ======================================================================
class TestModuleModel:
    def test_shared_declarations_and_do_mapping(self):
        src = TEMPLATE.format(body="    yield ctx.global_phase\n    X[0] = 1.0")
        model = build_module_model(src, path="m.py")
        assert model.shared_vars["X"].kind == "global"
        assert model.shared_vars["Y"].kind == "node"
        assert len(model.do_calls) == 1
        (fn,) = model.functions
        assert fn.name == "kernel"
        assert fn.shared_params["X"].kind == "global"
        assert fn.shared_params["Y"].kind == "node"

    def test_container_of_shared_is_modelled(self):
        src = textwrap.dedent(
            """\
            from repro.core import ppm_function

            @ppm_function
            def kernel(ctx, U):
                yield ctx.global_phase
                U[0][3] = 1.0

            def main(ppm):
                U = [ppm.global_shared(f"u{l}", 10) for l in range(3)]
                ppm.do(ppm.cores_per_node, kernel, U)
            """
        )
        model = build_module_model(src, path="m.py")
        assert model.shared_vars["U"].container
        (fn,) = model.functions
        accs = [a for a in fn.accesses if a.kind == "write"]
        assert len(accs) == 1 and accs[0].name == "U"

    def test_unresolved_names_produce_no_accesses(self):
        src = textwrap.dedent(
            """\
            from repro.core import ppm_function

            @ppm_function
            def kernel(ctx, A):
                local = [0] * 4
                yield ctx.global_phase
                local[0] = 1  # not a shared variable
            """
        )
        model = build_module_model(src, path="m.py")
        assert model.functions[0].accesses == []

    def test_syntax_error_reports_ppm100(self):
        found = lint_source("def broken(:\n", path="bad.py")
        assert rules_of(found) == ["PPM100"]
        assert found[0].severity == "error"


# ======================================================================
# PPM101 — prologue access
# ======================================================================
class TestPrologueAccess:
    def test_read_before_first_yield_flagged(self):
        found = lint_kernel(
            """\
            v = X[0]
            yield ctx.global_phase
            X[1] = v
            """
        )
        assert rules_of(found) == ["PPM101"]
        assert found[0].line == 7  # the prologue read

    def test_metadata_calls_in_prologue_are_legal(self):
        found = lint_kernel(
            """\
            lo, hi = X.local_range(ctx.node_id)
            yield ctx.global_phase
            X[lo:hi] = np.zeros(hi - lo)
            """
        )
        assert found == []

    def test_accumulate_in_prologue_flagged(self):
        found = lint_kernel(
            """\
            X.accumulate(np.array([0]), np.array([1.0]))
            yield ctx.global_phase
            """
        )
        assert rules_of(found) == ["PPM101"]


# ======================================================================
# PPM102 — global write in a node phase
# ======================================================================
class TestNodePhaseGlobalWrite:
    def test_global_write_in_node_phase_flagged(self):
        found = lint_kernel(
            """\
            yield ctx.node_phase
            X[0] = 1.0
            """
        )
        assert rules_of(found) == ["PPM102"]

    def test_global_read_in_node_phase_is_legal(self):
        found = lint_kernel(
            """\
            yield ctx.node_phase
            Y[0] = X[0]
            """
        )
        assert found == []

    def test_node_write_in_node_phase_is_legal(self):
        found = lint_kernel(
            """\
            yield ctx.node_phase
            Y[0] = 1.0
            """
        )
        assert found == []

    def test_global_write_in_global_phase_is_legal(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = 1.0
            """
        )
        assert found == []


# ======================================================================
# PPM103 — plain-write reduction
# ======================================================================
class TestPlainWriteReduction:
    def test_augassign_flagged(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] += 1.0
            """
        )
        assert rules_of(found) == ["PPM103"]

    def test_spelled_out_self_update_flagged(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[2:5] = X[2:5] + np.ones(3)
            """
        )
        assert rules_of(found) == ["PPM103"]

    def test_accumulate_form_is_the_fix(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X.accumulate(np.arange(2, 5), np.ones(3))
            """
        )
        assert found == []

    def test_plain_write_of_fresh_value_is_legal(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = 1.0
            """
        )
        assert found == []

    def test_different_index_self_reference_is_legal(self):
        # X[1:4] = X[0:3] + c is a stencil shift, not a reduction.
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[1:4] = X[0:3] + np.ones(3)
            """
        )
        assert found == []

    def test_container_element_augassign_flagged(self):
        src = textwrap.dedent(
            """\
            from repro.core import ppm_function

            @ppm_function
            def kernel(ctx, U):
                yield ctx.global_phase
                U[0][3] += 1.0

            def main(ppm):
                U = [ppm.global_shared(f"u{l}", 10) for l in range(3)]
                ppm.do(ppm.cores_per_node, kernel, U)
            """
        )
        assert rules_of(lint_source(src, path="m.py")) == ["PPM103"]


# ======================================================================
# PPM104 — read after write in one phase
# ======================================================================
class TestStaleReadAfterWrite:
    def test_read_after_write_flagged(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = 1.0
            v = X[0]
            """
        )
        assert rules_of(found) == ["PPM104"]

    def test_same_statement_read_is_legal(self):
        # Evaluation order reads before the write takes effect; this is
        # PPM103's business, not PPM104's.
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = X[1] * 2.0
            """
        )
        assert found == []

    def test_read_in_next_phase_is_legal(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = 1.0
            yield ctx.global_phase
            v = X[0]
            """
        )
        assert found == []

    def test_mutually_exclusive_branches_are_legal(self):
        # The multigrid dispatch shape: write and read in different
        # arms of an op dispatch never execute in the same phase.
        found = lint_kernel(
            """\
            op = "smooth"
            yield ctx.global_phase
            if op == "restrict":
                X[0] = 1.0
            else:
                v = X[0]
            """
        )
        assert found == []

    def test_write_on_path_of_read_flagged(self):
        found = lint_kernel(
            """\
            yield ctx.global_phase
            X[0] = 1.0
            if ctx.global_rank == 0:
                v = X[0]
            """
        )
        assert rules_of(found) == ["PPM104"]


# ======================================================================
# PPM105 — literal VP count (warn-only)
# ======================================================================
class TestLiteralVpCount:
    def _driver(self, k_expr: str) -> str:
        return textwrap.dedent(
            f"""\
            from repro.core import ppm_function

            K = 16

            @ppm_function
            def kernel(ctx, X):
                yield ctx.global_phase
                X[0] = 1.0

            def main(ppm):
                X = ppm.global_shared("x", 10)
                ppm.do({k_expr}, kernel, X)
            """
        )

    def test_inline_literal_flagged_as_warning(self):
        found = lint_source(self._driver("8"), path="m.py")
        assert rules_of(found) == ["PPM105"]
        assert found[0].severity == "warning"

    def test_literal_list_flagged(self):
        found = lint_source(self._driver("[4, 4]"), path="m.py")
        assert rules_of(found) == ["PPM105"]

    def test_named_constant_is_legal(self):
        # The paper's own listings size K as a module constant.
        assert lint_source(self._driver("K"), path="m.py") == []

    def test_geometry_derived_count_is_legal(self):
        found = lint_source(
            self._driver("ppm.cores_per_node * 2"), path="m.py"
        )
        assert found == []


# ======================================================================
# The repository's own PPM code stays clean
# ======================================================================
class TestRepositoryGate:
    def test_examples_and_apps_are_clean(self):
        found = lint_paths(["examples", "src/repro/apps"])
        assert [d.format() for d in found] == []
