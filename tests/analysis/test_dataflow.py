"""Tests for the symbolic phase-dataflow verifier.

Each case feeds a small PPM module through ``verify_source`` and
checks the findings (rules PPM401-PPM404), the certification verdict,
and the cross-phase dependence graph.  The shipped apps are the
zero-false-positive regression at the end.
"""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.analysis.dataflow import verify_file, verify_source

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)

APP_FILES = [
    "src/repro/apps/cg/ppm_cg.py",
    "src/repro/apps/collocation/ppm_gen.py",
    "src/repro/apps/barneshut/ppm_bh.py",
    "src/repro/apps/multigrid/ppm_mg.py",
    "src/repro/apps/graph/ppm_bfs.py",
    "src/repro/apps/sptrsv/ppm_trsv.py",
]


def verify(src: str):
    return verify_source(textwrap.dedent(src), "test.py")


def rules_of(diags):
    return sorted({d.rule for d in diags})


def module(kernel_body: str, *, decls: str = 'X = ppm.global_shared("x", 64)',
           do: str = "ppm.do(cluster.total_cores(), kernel, X)",
           params: str = "ctx, X") -> str:
    return textwrap.dedent(
        f"""\
        from repro.core import ppm_function
        from repro.apps.common import split_range

        def main(ppm, cluster):
            {decls}
            {do}

        @ppm_function
        def kernel({params}):
        """
    ) + textwrap.indent(textwrap.dedent(kernel_body), "    ")


# ======================================================================
# PPM401: provable cross-VP write-write overlap
# ======================================================================
class TestWriteWriteOverlap:
    def test_ppm201_demo_is_flagged_statically(self):
        """The acceptance case: the sanitizer's PPM201 demo program is
        proven conflicting with no execution at all."""
        diags, summaries = verify_source(
            module(
                """\
                yield ctx.global_phase
                X[0] = float(ctx.global_rank)
                """
            ),
            "demo.py",
        )
        errors = [d for d in diags if d.severity == "error"]
        assert [d.rule for d in errors] == ["PPM401"]
        diag = errors[0]
        assert diag.tool == "dataflow"
        assert diag.variable == "X"
        assert diag.phase_kind == "global"
        assert diag.path == "demo.py"
        assert "demo.py" in diag.format()
        assert not summaries[0].certified

    def test_rank_offset_point_writes_are_clean(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X[ctx.global_rank] = 1.0
                """
            )
        )
        assert diags == []
        assert summaries[0].certified

    def test_overlapping_chunks_from_different_bases_conflict(self):
        diags, summaries = verify(
            module(
                """\
                lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
                yield ctx.global_phase
                X[lo:hi] = 0.0
                X[0:2] = 1.0
                """
            )
        )
        assert "PPM401" in rules_of(diags)
        assert not summaries[0].certified

    def test_same_uniform_value_overlap_is_warning_but_blocks(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X[0] = 1.0
                """
            )
        )
        assert [d.rule for d in diags] == ["PPM401"]
        assert diags[0].severity == "warning"
        assert not summaries[0].certified

    def test_single_rank_guard_excludes_the_pair(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                if ctx.global_rank == 0:
                    X[0] = 1.0
                """
            )
        )
        assert diags == []
        assert summaries[0].certified


# ======================================================================
# Chunked partitioning proofs
# ======================================================================
class TestChunkProofs:
    def test_split_range_chunks_certify(self):
        diags, summaries = verify(
            module(
                """\
                lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
                yield ctx.global_phase
                X[lo:hi] = float(ctx.global_rank)
                yield ctx.global_phase
                doubled = X[lo:hi] * 2.0
                X[lo:hi] = doubled
                """
            )
        )
        assert diags == []
        summary = summaries[0]
        assert summary.certified
        assert len(summary.phases) == 2

    def test_local_range_node_chunks_certify(self):
        """The CG idiom: node block from ``local_range``, split across
        the node's VPs by ``node_rank``."""
        diags, summaries = verify(
            module(
                """\
                node_lo, node_hi = X.local_range(ctx.node_id)
                lo, hi = split_range(
                    node_hi - node_lo, ctx.node_vp_count
                )[ctx.node_rank]
                yield ctx.global_phase
                X[node_lo + lo:node_lo + hi] = 1.0
                """
            )
        )
        assert diags == []
        assert summaries[0].certified


# ======================================================================
# PPM402: snapshot-semantics read-write overlap
# ======================================================================
class TestReadWriteOverlap:
    def test_read_of_own_written_rows_warns_without_blocking(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X[ctx.global_rank] = 2.0
                y = X[ctx.global_rank] + 1.0
                """
            )
        )
        flow = [d for d in diags if d.tool == "dataflow"]
        # The lint layer reports the same staleness at whole-variable
        # granularity (PPM104); the dataflow finding adds index sets.
        assert "PPM104" in rules_of(diags)
        assert [d.rule for d in flow] == ["PPM402"]
        assert flow[0].severity == "warning"
        # Snapshot reads are deterministic: certification stands.
        assert summaries[0].certified

    def test_disjoint_read_and_write_rows_are_silent(self):
        diags, summaries = verify(
            module(
                """\
                lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
                yield ctx.global_phase
                s = float(X[lo:hi].sum())
                X[lo:hi] = s
                yield ctx.global_phase
                t = X[lo:hi].mean()
                X[lo:hi] = t
                """
            )
        )
        # Reading the snapshot then overwriting it in one statement (or
        # before any write) is the model's idiom, not a staleness bug.
        assert "PPM402" not in rules_of(diags)
        assert summaries[0].certified


# ======================================================================
# PPM403: accumulate operator discipline
# ======================================================================
class TestAccumulate:
    def test_same_op_overlapping_accumulates_certify(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X.accumulate([0], [1.0], op="add")
                """
            )
        )
        assert diags == []
        assert summaries[0].certified

    def test_mixed_ops_on_overlapping_rows_flagged(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X.accumulate([0], [1.0], op="add")
                X.accumulate([0], [2.0], op="max")
                """
            )
        )
        assert "PPM403" in rules_of(diags)
        assert not summaries[0].certified

    def test_accumulate_overlapping_plain_write_flagged(self):
        """Mixed plain write + accumulate on one element (the static
        analogue of sanitizer rule PPM202) is rank-order dependent."""
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                if ctx.global_rank == 0:
                    X[0] = 1.0
                else:
                    X.accumulate([0], [2.0], op="add")
                """
            )
        )
        assert rules_of(diags) == ["PPM401"]
        assert "accumulate" in diags[0].message
        assert not summaries[0].certified


# ======================================================================
# PPM404: unanalyzable accesses
# ======================================================================
class TestUnanalyzable:
    def test_data_dependent_scatter_write_names_the_expression(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                i = int(X[ctx.global_rank])
                yield ctx.global_phase
                X[i] = 1.0
                """
            )
        )
        ppm404 = [d for d in diags if d.rule == "PPM404"]
        assert ppm404, rules_of(diags)
        assert "X[i]" in ppm404[0].message
        assert not summaries[0].certified

    def test_unanalyzable_read_does_not_block_certification(self):
        diags, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                i = int(X[ctx.global_rank])
                yield ctx.global_phase
                v = X[i]
                X[ctx.global_rank] = v + 1.0
                """
            )
        )
        assert "PPM404" not in rules_of(diags)
        assert summaries[0].certified


# ======================================================================
# Cross-phase dependence graph
# ======================================================================
class TestDependenceGraph:
    def test_raw_war_waw_edges(self):
        _, summaries = verify(
            module(
                """\
                lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
                yield ctx.global_phase
                X[lo:hi] = 1.0
                yield ctx.global_phase
                s = float(X[0:64].sum())
                yield ctx.global_phase
                X[lo:hi] = s
                """
            )
        )
        summary = summaries[0]
        # Edges are keyed by the phases' declaring yield lines.
        p = [ph.yield_lineno for ph in summary.phases]
        assert len(p) == 3
        edges = {(e.src_phase, e.dst_phase, e.kind) for e in summary.edges}
        assert (p[0], p[1], "RAW") in edges   # phase 1 reads phase 0's rows
        assert (p[1], p[2], "WAR") in edges   # phase 2 overwrites them
        assert (p[0], p[2], "WAW") in edges

    def test_disjoint_phases_have_no_edge(self):
        _, summaries = verify(
            module(
                """\
                yield ctx.global_phase
                X[0:32] = 1.0
                yield ctx.global_phase
                X[32:64] = 2.0
                """,
                do="ppm.do(1, kernel, X)",
            )
        )
        assert summaries[0].edges == []


# ======================================================================
# The shipped apps: zero false positives, full certificates
# ======================================================================
class TestShippedApps:
    @pytest.mark.parametrize("rel", APP_FILES, ids=lambda p: p.split("/")[-1])
    def test_app_verifies_clean_and_certified(self, rel):
        diags, summaries = verify_file(os.path.join(REPO_ROOT, rel))
        assert diags == [], [d.format() for d in diags]
        assert summaries, "no PPM kernels found"
        for s in summaries:
            assert s.analyzable, (s.name, s.reason)
            assert s.certified, (s.name, sorted(s.certified_lines))
