"""Tests for overlap certificates and ``sanitize="auto"``.

The contract under test: ``"auto"`` is strict dynamic checking whose
per-phase conflict check is skipped exactly where the static verifier
proved it redundant — with committed arrays and simulated times
bitwise-identical to ``"strict"`` — and certificates never make a run
*less* safe (uncertifiable kernels fall back to the full check).
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.analysis.certify import certificate_for
from repro.apps.cg.problem import build_chimney_problem
from repro.apps.cg.ppm_cg import ppm_cg_solve
from repro.apps.common import split_range
from repro.config import testing as mkconfig
from repro.core import PhaseConflictError, ppm_function, run_ppm
from repro.core.errors import ConfigError
from repro.machine import Cluster


@ppm_function
def chunked_kernel(ctx, X):
    lo, hi = split_range(X.shape[0], ctx.global_vp_count)[ctx.global_rank]
    yield ctx.global_phase
    X[lo:hi] = float(ctx.global_rank)
    yield ctx.global_phase
    doubled = X[lo:hi] * 2.0
    X[lo:hi] = doubled


@ppm_function
def conflicting_kernel(ctx, X):
    yield ctx.global_phase
    X[0] = float(ctx.global_rank)


@ppm_function
def offset_kernel(X, ctx, offset):
    # Declared for partial use: the pre-bound shared handle comes
    # first, the runtime-supplied ctx after it.
    yield ctx.global_phase
    X[offset + ctx.global_rank] = 1.0


def chunked_main(ppm):
    X = ppm.global_shared("x", 16)
    ppm.do(2, chunked_kernel, X)
    return X.committed


def conflicting_main(ppm):
    X = ppm.global_shared("x", 4)
    ppm.do(2, conflicting_kernel, X)
    return X.committed


# ======================================================================
# certificate_for
# ======================================================================
class TestCertificateFor:
    def test_certifies_chunked_kernel(self, cluster2x2):
        ppm, _ = run_ppm(chunked_main, cluster2x2)
        # Rebuild the certificate the runtime would compute.
        [x] = [
            h for h in ppm.runtime.shared_registry.values()
        ]
        cert = certificate_for(chunked_kernel, (x,), {})
        assert cert is not None
        assert not cert.whole  # generator kernels certify per-line

    def test_conflicting_kernel_gets_no_certified_lines(self, cluster2x2):
        ppm, _ = run_ppm(
            conflicting_main, cluster2x2, sanitize="warn"
        )
        [x] = list(ppm.runtime.shared_registry.values())
        cert = certificate_for(conflicting_kernel, (x,), {})
        assert cert is None or not cert.certified

    def test_partial_wrapped_kernel_certifies(self, cluster2x2):
        """functools.partial pre-bound args resolve to leading params."""

        def main(ppm):
            X = ppm.global_shared("x", 32)
            ppm.do(2, functools.partial(offset_kernel, X), 4)
            return X.committed

        ppm, committed = run_ppm(main, cluster2x2, sanitize="auto")
        assert ppm.runtime.stats_certified_phases == 1
        assert ppm.runtime.sanitizer.phases_checked == 0
        assert committed[4] == 1.0 and committed[7] == 1.0
        # Re-derive directly: partial(kernel, X) leaves (ctx, offset).
        [x] = list(ppm.runtime.shared_registry.values())
        cert = certificate_for(
            functools.partial(offset_kernel, x), (4,), {}
        )
        assert cert is not None

    def test_cache_lives_on_the_function(self, cluster2x2):
        ppm, _ = run_ppm(chunked_main, cluster2x2)
        [x] = list(ppm.runtime.shared_registry.values())
        c1 = certificate_for(chunked_kernel, (x,), {})
        c2 = certificate_for(chunked_kernel, (x,), {})
        assert c1 is c2
        assert hasattr(chunked_kernel, "__ppm_certificates__")


# ======================================================================
# sanitize="auto" end to end
# ======================================================================
class TestSanitizeAuto:
    def test_auto_matches_strict_bitwise_and_skips_checks(self, config2x2):
        ppm_a, out_a = run_ppm(
            chunked_main, Cluster(config2x2), sanitize="auto"
        )
        ppm_s, out_s = run_ppm(
            chunked_main, Cluster(config2x2), sanitize="strict"
        )
        assert np.array_equal(out_a, out_s)
        assert ppm_a.elapsed == ppm_s.elapsed
        assert ppm_a.runtime.stats_certified_phases == 2
        assert ppm_a.runtime.sanitizer.phases_checked == 0
        assert ppm_s.runtime.sanitizer.phases_checked > 0

    def test_auto_still_catches_real_conflicts(self, config2x2):
        with pytest.raises(PhaseConflictError):
            run_ppm(conflicting_main, Cluster(config2x2), sanitize="auto")

    def test_cg_auto_is_bitwise_identical_to_strict(self):
        """The acceptance case: certified CG under "auto" skips all
        per-phase checks yet commits the same bits as "strict"."""
        problem = build_chimney_problem(8)

        def solve(mode):
            cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
            return ppm_cg_solve(
                problem, cluster, max_iters=8, sanitize=mode
            )

        res_a, t_a = solve("auto")
        res_s, t_s = solve("strict")
        assert np.array_equal(res_a.x, res_s.x)
        assert t_a == t_s


# ======================================================================
# Scheduler overlap certificates
# ======================================================================
class TestCertifiedOverlap:
    def test_default_none_keeps_times_identical(self, config2x2):
        ppm_plain, _ = run_ppm(chunked_main, Cluster(config2x2))
        ppm_auto, _ = run_ppm(
            chunked_main, Cluster(config2x2), sanitize="auto"
        )
        assert ppm_plain.elapsed == ppm_auto.elapsed

    def test_certified_overlap_speeds_up_certified_runs(self):
        base = mkconfig(n_nodes=2, cores_per_node=2)
        boosted = mkconfig(
            n_nodes=2, cores_per_node=2, certified_overlap_fraction=1.0
        )
        assert boosted.certified_overlap_fraction == 1.0
        ppm_base, out_base = run_ppm(chunked_main, Cluster(base))
        ppm_fast, out_fast = run_ppm(chunked_main, Cluster(boosted))
        assert np.array_equal(out_base, out_fast)  # results never change
        assert ppm_fast.elapsed <= ppm_base.elapsed
        assert ppm_fast.runtime.stats_certified_phases > 0

    def test_uncertified_phases_keep_baseline_overlap(self):
        boosted = mkconfig(
            n_nodes=2, cores_per_node=2, certified_overlap_fraction=1.0
        )
        ppm, _ = run_ppm(
            conflicting_main, Cluster(boosted), sanitize="warn"
        )
        assert ppm.runtime.stats_certified_phases == 0

    def test_config_validates_fraction(self):
        with pytest.raises(ConfigError):
            mkconfig(n_nodes=1, cores_per_node=1,
                     certified_overlap_fraction=1.5)
        with pytest.raises(ConfigError):
            mkconfig(n_nodes=1, cores_per_node=1,
                     certified_overlap_fraction=float("nan"))
