"""Unit tests for the liveness pass (PPM409/PPM410) and its plans.

Dead writes, view-escape paranoia (returns, containers, unknown
methods on non-array receivers), per-phase read-set certificates, and
the degradation contract: an unanalyzable kernel gets PPM410 and an
empty pruning plan, never a wrong one.
"""

from __future__ import annotations

import os

from repro.analysis import LivenessPlan
from repro.analysis.dataflow import verify_file, verify_source


def rules(diags):
    return {d.rule for d in diags}


HEADER = '''
from repro.core import ppm_function
from repro.apps.common import split_range

def build(ppm, cluster):
    X = ppm.global_shared("X", 64)
    ppm.do(cluster.total_cores(), k, X)

@ppm_function
'''


DEAD = HEADER + '''
def k(ctx, X):
    yield ctx.global_phase
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    X[lo:hi] = 1.0
    yield ctx.global_phase
    X[lo:hi] = 2.0
'''


HELD_VIEW = HEADER + '''
def k(ctx, X):
    yield ctx.global_phase
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    v = X[lo:hi]
    yield ctx.global_phase
    X[lo:hi] = v * 2.0
'''


RETURNED_VIEW = HEADER + '''
def k(ctx, X):
    yield ctx.global_phase
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    return X[lo:hi]
'''


LEAKY_APPEND = HEADER + '''
def k(ctx, X):
    held = []
    yield ctx.global_phase
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    held.append(X[lo:hi])
    yield ctx.global_phase
    X[lo:hi] = held[0] * 2.0
'''


PHASE_LOOP = HEADER + '''
def k(ctx, X):
    lo, hi = split_range(64, ctx.global_vp_count)[ctx.global_rank]
    for _ in range(3):
        yield ctx.global_phase
        X[lo:hi] = 1.0
'''


UNANALYZABLE = HEADER + '''
def k(ctx, X):
    if ctx.global_rank == 0:
        yield ctx.global_phase
    X[0] = 1.0
'''


def plan_of(src, name="probe.py") -> tuple[list, LivenessPlan]:
    diags, (summary,) = verify_source(src, name)
    return diags, summary.liveness


class TestDeadWrites:
    def test_overwritten_block_is_ppm409(self):
        diags, plan = plan_of(DEAD)
        d = next(d for d in diags if d.rule == "PPM409")
        assert d.kernel == "k"
        assert plan.analyzable and plan.prunable == {"X"}

    def test_read_set_certificate_per_phase(self):
        _, plan = plan_of(DEAD)
        # Two phase segments, neither reads X (writes only).
        assert len(plan.reads_by_phase) == 2
        assert all("X" not in reads for reads in plan.reads_by_phase)

    def test_phase_loops_disable_deadness(self):
        # Segments repeat dynamically under a phase loop: the static
        # "later phase overwrites" order is unsound, so no PPM409.
        diags, _ = plan_of(PHASE_LOOP)
        assert "PPM409" not in rules(diags)


class TestViewEscapes:
    def test_cross_segment_view_use_disqualifies(self):
        _, plan = plan_of(HELD_VIEW)
        assert plan.analyzable
        assert plan.prunable == frozenset()
        assert any(param == "X" for param, _ in plan.reasons)

    def test_returned_view_disqualifies(self):
        _, plan = plan_of(RETURNED_VIEW)
        assert plan.prunable == frozenset()

    def test_unknown_method_on_non_array_receiver_disqualifies(self):
        # Regression: list.append(view) retains the view past its
        # segment; the numpy "fresh result" contract must not apply
        # to arbitrary container methods.
        _, plan = plan_of(LEAKY_APPEND)
        assert plan.prunable == frozenset()
        reason = dict(plan.reasons)["X"]
        assert "append" in reason and "retain" in reason


class TestDegradation:
    def test_unanalyzable_kernel_is_ppm410_with_empty_plan(self):
        diags, plan = plan_of(UNANALYZABLE)
        d = next(d for d in diags if d.rule == "PPM410")
        assert d.severity == "warning"
        assert "degrades to copying every shared array" in d.message
        assert not plan.analyzable
        assert plan.prunable == frozenset()
        assert dict(plan.reasons) == {"X": "kernel unanalyzable"}


class TestShippedApps:
    def test_cg_kernel_has_a_nontrivial_plan(self):
        # The acceptance anchor: the shipped CG app's kernel must keep
        # a non-trivial liveness certificate (pruned snapshots are
        # what the wallclock sweep and parallel smoke measure).
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        path = os.path.join(root, "src", "repro", "apps", "cg", "ppm_cg.py")
        diags, summaries = verify_file(os.path.normpath(path))
        assert not rules(diags) & {"PPM406", "PPM408", "PPM409", "PPM410"}
        plans = [s.liveness for s in summaries if s.liveness is not None]
        assert any(p.analyzable and p.prunable for p in plans)
