"""Hypothesis cross-check: static verdicts vs dynamic reality.

Two contracts, each checked over randomly generated phase programs:

1. **Soundness** — whenever the dataflow verifier certifies every
   kernel of a generated program conflict-free, actually *running* the
   program under the dynamic sanitizer must produce zero error
   findings.  (The converse is not required: the static layer may be
   conservative and refuse programs the sanitizer would pass.)
2. **Transparency** — for certified kernels, ``sanitize="auto"``
   (which skips the per-phase dynamic check) commits arrays
   bitwise-identical to ``sanitize="strict"`` at identical simulated
   times, across randomized shapes, VP counts and values.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import verify_source
from repro.apps.common import split_range
from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster

N = 16  # shared-array length of every generated program


# ----------------------------------------------------------------------
# Program generator: each phase is a small list of statements drawn
# from a pool that mixes provably-safe, provably-conflicting and
# unanalyzable shapes.
# ----------------------------------------------------------------------
STATEMENTS = [
    # (template, needs_chunk)
    ("X[lo:hi] = float(ctx.global_rank) + {v}", True),
    ("X[ctx.global_rank] = {v}", False),
    ("X[{k}] = {v}", False),                    # conflicting (or benign)
    ("X[{k}] = float(ctx.global_rank)", False),  # conflicting
    ("if ctx.global_rank == {k}:\n    X[{k}] = {v}", False),
    ("X.accumulate([{k}], [{v}], op=\"add\")", False),
    ("X.accumulate([{k}], [{v}], op=\"maximum\")", False),
    ("s = float(X[0:{n}].sum())", False),
]


@st.composite
def phase_programs(draw):
    n_phases = draw(st.integers(1, 3))
    phases = []
    uses_chunk = False
    for _ in range(n_phases):
        n_stmts = draw(st.integers(1, 2))
        stmts = []
        for _ in range(n_stmts):
            template, needs_chunk = draw(st.sampled_from(STATEMENTS))
            uses_chunk = uses_chunk or needs_chunk
            stmts.append(
                template.format(
                    k=draw(st.integers(0, 3)),
                    v=float(draw(st.integers(0, 4))),
                    n=N,
                )
            )
        phases.append(stmts)
    body = []
    if uses_chunk:
        body.append(
            "lo, hi = split_range("
            f"{N}, ctx.global_vp_count)[ctx.global_rank]"
        )
    for stmts in phases:
        body.append("yield ctx.global_phase")
        body.extend(stmts)
    lines = [
        "from repro.core import ppm_function",
        "from repro.apps.common import split_range",
        "",
        "@ppm_function",
        "def kernel(ctx, X):",
    ]
    lines += [
        "    " + line for chunk in body for line in chunk.split("\n")
    ]
    lines += [
        "",
        "def main(ppm):",
        f'    X = ppm.global_shared("x", {N})',
        "    ppm.do(2, kernel, X)",
        "    return X.committed",
    ]
    return "\n".join(lines) + "\n"


def run_generated(source: str, *, sanitize):
    namespace: dict = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    return run_ppm(
        namespace["main"],
        Cluster(mkconfig(n_nodes=2, cores_per_node=2)),
        sanitize=sanitize,
    )


class TestStaticNeverContradictedByDynamic:
    @settings(max_examples=60, deadline=None)
    @given(source=phase_programs())
    def test_certified_programs_run_clean(self, source):
        diags, summaries = verify_source(source, "generated.py")
        flow_errors = [
            d for d in diags
            if d.tool == "dataflow" and d.severity == "error"
        ]
        certified = (
            bool(summaries)
            and all(s.analyzable and s.certified for s in summaries)
        )
        if not certified:
            return  # conservative rejection is always allowed
        assert flow_errors == [], [d.format() for d in flow_errors]
        ppm, _ = run_generated(source, sanitize="warn")
        dynamic_errors = [
            d for d in ppm.diagnostics if d.severity == "error"
        ]
        assert dynamic_errors == [], (
            source,
            [d.format() for d in dynamic_errors],
        )


@ppm_function
def chunked_kernel(ctx, X, scale):
    lo, hi = split_range(X.shape[0], ctx.global_vp_count)[ctx.global_rank]
    yield ctx.global_phase
    X[lo:hi] = float(ctx.global_rank) * scale
    yield ctx.global_phase
    shifted = X[lo:hi] + scale
    X[lo:hi] = shifted


class TestAutoIsBitwiseTransparent:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(4, 64),
        vps=st.integers(1, 3),
        scale=st.floats(-1e3, 1e3, allow_nan=False),
    )
    def test_auto_matches_strict(self, n, vps, scale):
        def main(ppm):
            X = ppm.global_shared("x", n)
            ppm.do(vps, chunked_kernel, X, scale)
            return X.committed

        def run(mode):
            return run_ppm(
                main,
                Cluster(mkconfig(n_nodes=2, cores_per_node=2)),
                sanitize=mode,
            )

        ppm_a, out_a = run("auto")
        ppm_s, out_s = run("strict")
        assert np.array_equal(out_a, out_s)
        assert ppm_a.elapsed == ppm_s.elapsed
        # The skip actually happened: every phase round certified.
        assert ppm_a.runtime.stats_certified_phases == 2
        assert ppm_a.runtime.sanitizer.phases_checked == 0
        assert ppm_s.runtime.sanitizer.phases_checked > 0
