"""Tests for the dynamic phase-conflict sanitizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import PhaseSanitizer
from repro.analysis.diagnostics import Diagnostic
from repro.core import PhaseConflictError, ppm_function, run_ppm
from repro.machine import Cluster


def rules_of(diagnostics):
    return sorted({d.rule for d in diagnostics})


# ======================================================================
# Conflict classification
# ======================================================================
class TestConflictClassification:
    def test_seeded_write_write_conflict_is_detected(self, config2x2):
        """The acceptance regression: distinct VPs plain-write different
        values to one element -> PPM201 error with full context."""

        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[0] = float(ctx.global_rank)

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)
            return X.committed

        ppm, committed = run_ppm(main, Cluster(config2x2), sanitize="warn")
        errors = [d for d in ppm.diagnostics if d.severity == "error"]
        assert len(errors) == 1
        diag = errors[0]
        assert diag.rule == "PPM201"
        assert diag.tool == "sanitizer"
        assert diag.variable == "x"
        assert diag.rows == (0,)
        assert diag.ranks == (0, 1, 2, 3)
        assert diag.phase_kind == "global"
        # R3 still commits deterministically (highest rank wins).
        assert committed[0] == 3.0

    def test_benign_same_value_overlap_is_warning(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[1] = 7.0

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert rules_of(ppm.diagnostics) == ["PPM203"]
        assert all(d.severity == "warning" for d in ppm.diagnostics)

    def test_mixed_write_and_accumulate_is_ppm202(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            if ctx.global_rank == 0:
                X[1] = 5.0
            else:
                X.accumulate(np.array([1]), np.array([2.0]))

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(1, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert "PPM202" in rules_of(ppm.diagnostics)

    def test_mixed_accumulate_ops_are_rank_order_dependent(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            op = "add" if ctx.global_rank % 2 == 0 else "multiply"
            X.accumulate(np.array([0]), np.array([3.0]), op=op)

        def main(ppm):
            X = ppm.global_shared("x", 2, fill=1.0)
            ppm.do(1, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert "PPM201" in rules_of(ppm.diagnostics)

    def test_three_writers_agreeing_at_both_extremes_still_flagged(self, cluster1):
        """Writers a, b, a agree under forward AND reverse commit order
        but disagree under (0, 2, 1) — classification must be exact,
        not a two-permutation probe."""

        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[0] = 1.0 if ctx.global_rank in (0, 2) else 2.0

        def main(ppm):
            X = ppm.global_shared("x", 2)
            ppm.do(3, kernel, X)

        ppm, _ = run_ppm(main, cluster1, sanitize="warn")
        assert "PPM201" in rules_of(ppm.diagnostics)


# ======================================================================
# Blessed patterns stay clean
# ======================================================================
class TestCleanPatterns:
    def test_overlapping_same_op_accumulates_are_blessed(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X.accumulate(np.array([0, 1]), np.array([1.0, 1.0]))

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)
            return X.committed

        ppm, committed = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert ppm.diagnostics == []
        assert committed[0] == 4.0  # all four VPs combined (R4)

    def test_disjoint_chunks_are_clean(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[ctx.global_rank] = float(ctx.global_rank)

        def main(ppm):
            X = ppm.global_shared("x", 8)
            ppm.do(2, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert ppm.diagnostics == []

    def test_single_writer_is_clean(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            if ctx.global_rank == 0:
                X[:] = np.ones(4)
                X[0] = 5.0  # same-VP overwrite is program order, not a race

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        assert ppm.diagnostics == []


# ======================================================================
# Node-shared instances
# ======================================================================
class TestNodeShared:
    def test_node_shared_conflict_is_per_instance(self, config2x2):
        @ppm_function
        def kernel(ctx, Y):
            yield ctx.node_phase
            if ctx.node_id == 0:
                Y[0] = float(ctx.node_rank)  # both VPs of node 0 disagree

        def main(ppm):
            Y = ppm.node_shared("y", 4)
            ppm.do(2, kernel, Y)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="warn")
        errors = [d for d in ppm.diagnostics if d.severity == "error"]
        assert len(errors) == 1
        assert errors[0].rule == "PPM201"
        assert errors[0].variable == "y@node0"
        assert errors[0].phase_kind == "node"


# ======================================================================
# Modes and knobs
# ======================================================================
class TestModes:
    def test_strict_raises_before_commit(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[0] = float(ctx.global_rank)

        def main(ppm):
            X = ppm.global_shared("x", 4, fill=-1.0)
            main.handle = X
            ppm.do(2, kernel, X)

        with pytest.raises(PhaseConflictError) as exc_info:
            run_ppm(main, Cluster(config2x2), sanitize="strict")
        err = exc_info.value
        assert err.diagnostics
        assert all(isinstance(d, Diagnostic) for d in err.diagnostics)
        assert err.diagnostics[0].rule == "PPM201"
        # Failure atomicity: the aborted phase must not have committed.
        assert main.handle.committed[0] == -1.0

    def test_strict_does_not_raise_on_warning_only(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[0] = 7.0  # benign same-value overlap -> PPM203 warning

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2), sanitize="strict")
        assert rules_of(ppm.diagnostics) == ["PPM203"]

    def test_sanitize_true_means_warn(self, config2x2):
        ppm, _ = run_ppm(lambda p: None, Cluster(config2x2), sanitize=True)
        assert ppm.runtime.sanitizer is not None
        assert ppm.runtime.sanitizer.mode == "warn"

    def test_sanitizer_off_by_default(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X[0] = float(ctx.global_rank)

        def main(ppm):
            X = ppm.global_shared("x", 4)
            ppm.do(2, kernel, X)

        ppm, _ = run_ppm(main, Cluster(config2x2))
        assert ppm.runtime.sanitizer is None
        assert ppm.diagnostics == []

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PhaseSanitizer(mode="noisy")

    def test_sanitizer_does_not_change_results_or_timing(self, config2x2):
        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            X.accumulate(np.array([ctx.global_rank % 4]), np.array([1.0]))
            yield ctx.global_phase
            X[4 + ctx.global_rank] = float(ctx.global_rank)
            ctx.work(100)

        def main(ppm):
            X = ppm.global_shared("x", 16)
            ppm.do(2, kernel, X)
            return X.committed

        ppm_off, base = run_ppm(main, Cluster(config2x2))
        ppm_on, sanitized = run_ppm(main, Cluster(config2x2), sanitize="warn")
        np.testing.assert_array_equal(base, sanitized)
        assert ppm_off.elapsed == ppm_on.elapsed
        assert ppm_on.diagnostics == []
        assert ppm_on.runtime.sanitizer.phases_checked == 2


# ======================================================================
# The shipped apps stay clean under the sanitizer
# ======================================================================
class TestAppsClean:
    def test_ppm_cg_has_no_conflicts(self, franklin4):
        from repro.apps.cg import build_chimney_problem, ppm_cg_solve

        problem = build_chimney_problem(4)  # 4x4x8 = 128 rows
        import repro.apps.cg.ppm_cg as mod

        orig = mod.run_ppm
        seen = []

        def wrapped(main, cluster, *args, **kwargs):
            kwargs["sanitize"] = "warn"
            ppm, result = orig(main, cluster, *args, **kwargs)
            seen.extend(ppm.diagnostics)
            return ppm, result

        mod.run_ppm = wrapped
        try:
            result, _ = ppm_cg_solve(problem, franklin4, max_iters=30)
        finally:
            mod.run_ppm = orig
        assert result.converged
        assert [d for d in seen if d.severity == "error"] == []
