"""Edge-case tests for the simulated MPI layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.machine import Cluster
from repro.mpi import run_mpi
from repro.mpi.collectives import CollectiveMismatchError, fold, resolve_op


def _run(prog, n_nodes=2, cores=2, **cfg):
    cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))
    return run_mpi(prog, cluster), cluster


class TestSingleRank:
    def test_collectives_trivial(self):
        def prog(comm):
            assert comm.allreduce(5) == 5
            assert comm.bcast("x", root=0) == "x"
            assert comm.allgather(1) == [1]
            assert comm.scan(3) == 3
            assert comm.alltoall([9]) == [9]
            comm.barrier()
            return comm.reduce(2, root=0)

        (res, _) = _run(prog, n_nodes=1, cores=1)
        assert res.results == [2]

    def test_send_to_self(self):
        def prog(comm):
            comm.send([1, 2], dest=comm.rank, tag=5)
            return comm.recv(source=comm.rank, tag=5)

        (res, _) = _run(prog, n_nodes=1, cores=1)
        assert res.results[0] == [1, 2]


class TestOps:
    def test_resolve_op_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown reduction op"):
            resolve_op("median")

    def test_fold_rejects_empty(self):
        with pytest.raises(ValueError):
            fold([], "sum")

    def test_prod_op(self):
        def prog(comm):
            return comm.allreduce(comm.rank + 1, op="prod")

        (res, _) = _run(prog)
        assert res.results[0] == 24


class TestMismatchedCollectives:
    def test_mixed_kinds_detected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allreduce(1)

        with pytest.raises(RuntimeError, match="mismatched|failed"):
            _run(prog)


class TestLargePayloads:
    def test_multi_megabyte_array(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(300_000), dest=3)
            elif comm.rank == 3:
                data = comm.recv(source=0)
                return float(data.sum())

        (res, _) = _run(prog)
        assert res.results[3] == 300_000.0

    def test_bigger_payload_takes_longer(self):
        def make(n):
            def prog(comm):
                if comm.rank == 0:
                    comm.send(np.ones(n), dest=3)
                elif comm.rank == 3:
                    comm.recv(source=0)
                    return comm.now

            return prog

        (small, _) = _run(make(100))
        (large, _) = _run(make(1_000_000))
        assert large.results[3] > small.results[3]


class TestManyRanks:
    def test_64_rank_job(self):
        def prog(comm):
            total = comm.allreduce(1)
            right = (comm.rank + 1) % comm.size
            comm.send(comm.rank, dest=right, tag=1)
            left = (comm.rank - 1) % comm.size
            got = comm.recv(source=left, tag=1)
            return (total, got)

        (res, _) = _run(prog, n_nodes=16, cores=4)
        assert all(t == 64 for t, _ in res.results)
        assert all(g == (r - 1) % 64 for r, (_, g) in enumerate(res.results))


class TestContentionModel:
    def test_inter_node_wire_inflated_by_core_count(self):
        """MPI's uncoordinated injection pays the contention factor;
        a fatter node makes the same message slower."""

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(100_000), dest=comm.size - 1)
            elif comm.rank == comm.size - 1:
                comm.recv(source=0)
                return comm.now

        (thin, _) = _run(prog, n_nodes=2, cores=2)
        (fat, _) = _run(prog, n_nodes=2, cores=8)
        assert fat.results[-1] > thin.results[-1]
