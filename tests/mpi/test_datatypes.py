"""Tests for payload size estimation and defensive copying."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.datatypes import copy_payload, payload_nbytes


class TestPayloadNbytes:
    def test_numpy_array_exact(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros((2, 3), dtype=np.int32)) == 24

    def test_numpy_scalar(self):
        assert payload_nbytes(np.float64(1.0)) == 8

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("héllo") == len("héllo".encode())

    def test_scalars(self):
        assert payload_nbytes(42) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 1
        assert payload_nbytes(None) == 1

    def test_containers_recursive(self):
        flat = payload_nbytes([1.0, 2.0])
        assert flat == 16 + 16  # header + two scalars
        nested = payload_nbytes({"k": [1.0, 2.0]})
        assert nested > flat

    def test_arbitrary_object_falls_back_to_pickle(self):
        class Thing:
            def __init__(self):
                self.x = 1

        assert payload_nbytes(Thing()) > 0

    def test_deterministic(self):
        obj = {"a": np.arange(5), "b": (1, 2, "x")}
        assert payload_nbytes(obj) == payload_nbytes(obj)


class TestCopyPayload:
    def test_ndarray_is_copied(self):
        a = np.arange(3.0)
        b = copy_payload(a)
        b[0] = 99.0
        assert a[0] == 0.0

    def test_immutables_pass_through(self):
        assert copy_payload("s") == "s"
        assert copy_payload(5) == 5
        assert copy_payload(None) is None

    def test_nested_containers_deep_copied(self):
        src = {"arr": np.zeros(2), "lst": [np.ones(2)]}
        dst = copy_payload(src)
        dst["arr"][0] = 7.0
        dst["lst"][0][0] = 7.0
        assert src["arr"][0] == 0.0
        assert src["lst"][0][0] == 1.0

    def test_tuple_and_set(self):
        t = copy_payload((1, np.zeros(1)))
        assert isinstance(t, tuple)
        s = copy_payload({1, 2})
        assert s == {1, 2}

    def test_arbitrary_object_via_pickle(self):
        class Thing:
            def __init__(self, x):
                self.x = x

            def __eq__(self, other):
                return self.x == other.x

        import sys

        module = sys.modules[__name__]
        module.Thing = Thing  # make picklable
        Thing.__qualname__ = "Thing"
        Thing.__module__ = __name__
        src = Thing([1, 2])
        dst = copy_payload(src)
        assert dst == src
        dst.x.append(3)
        assert src.x == [1, 2]
