"""Tests for simulated MPI collectives: values, determinism, timing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.machine import Cluster
from repro.mpi import run_mpi


def _run(prog, n_nodes=2, cores=2, **cfg):
    cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))
    return run_mpi(prog, cluster), cluster


class TestBarrier:
    def test_synchronises_clocks(self):
        def prog(comm):
            comm.work(comm.rank * 1_000_000)
            comm.barrier()
            return comm.now

        (res, _) = _run(prog)
        assert len(set(res.results)) == 1
        assert res.results[0] >= 3e-3


class TestBcast:
    def test_root_value_everywhere(self):
        def prog(comm):
            data = {"v": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        (res, _) = _run(prog)
        assert all(r == {"v": 42} for r in res.results)

    def test_nonzero_root(self):
        def prog(comm):
            data = comm.rank if comm.rank == 3 else None
            return comm.bcast(data, root=3)

        (res, _) = _run(prog)
        assert all(r == 3 for r in res.results)

    def test_array_not_aliased_between_ranks(self):
        def prog(comm):
            data = np.zeros(4) if comm.rank == 0 else None
            got = comm.bcast(data, root=0)
            got[comm.rank] = comm.rank + 1.0
            return got.tolist()

        (res, _) = _run(prog)
        # each rank mutated only its own copy
        for r, out in enumerate(res.results):
            expected = [0.0] * 4
            expected[r] = r + 1.0
            assert out == expected

    def test_bad_root(self):
        def prog(comm):
            comm.bcast(1, root=9)

        with pytest.raises(RuntimeError, match="root"):
            _run(prog)


class TestReduceAllreduce:
    def test_reduce_sum_at_root(self):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op="sum", root=0)

        (res, _) = _run(prog)
        assert res.results[0] == 1 + 2 + 3 + 4
        assert all(r is None for r in res.results[1:])

    def test_allreduce_everywhere(self):
        def prog(comm):
            return comm.allreduce(comm.rank, op="max")

        (res, _) = _run(prog)
        assert all(r == 3 for r in res.results)

    def test_allreduce_arrays_elementwise(self):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), op="sum")

        (res, _) = _run(prog)
        assert np.allclose(res.results[0], [6.0, 6.0, 6.0])

    def test_min_op(self):
        def prog(comm):
            return comm.allreduce(10 - comm.rank, op="min")

        (res, _) = _run(prog)
        assert all(r == 7 for r in res.results)

    def test_custom_callable_op(self):
        def prog(comm):
            return comm.allreduce((comm.rank,), op=lambda a, b: a + b)

        (res, _) = _run(prog)
        assert res.results[0] == (0, 1, 2, 3)

    def test_float_determinism(self):
        """Fold order is rank order, so float sums are bit-identical
        across repetitions."""

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.uniform(), op="sum")

        (r1, _) = _run(prog)
        (r2, _) = _run(prog)
        assert r1.results[0] == r2.results[0]


class TestGatherScatter:
    def test_gather_to_root(self):
        def prog(comm):
            return comm.gather(comm.rank * 2, root=1)

        (res, _) = _run(prog)
        assert res.results[1] == [0, 2, 4, 6]
        assert res.results[0] is None

    def test_allgather(self):
        def prog(comm):
            return comm.allgather(chr(ord("a") + comm.rank))

        (res, _) = _run(prog)
        assert all(r == ["a", "b", "c", "d"] for r in res.results)

    def test_scatter(self):
        def prog(comm):
            values = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        (res, _) = _run(prog)
        assert res.results == [0, 1, 4, 9]

    def test_scatter_wrong_length(self):
        def prog(comm):
            values = [1] if comm.rank == 0 else None
            comm.scatter(values, root=0)

        with pytest.raises(RuntimeError, match="exactly"):
            _run(prog)


class TestScanAlltoall:
    def test_inclusive_scan(self):
        def prog(comm):
            return comm.scan(comm.rank + 1, op="sum")

        (res, _) = _run(prog)
        assert res.results == [1, 3, 6, 10]

    def test_alltoall_transpose(self):
        def prog(comm):
            out = comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)])
            return out

        (res, _) = _run(prog)
        for j, row in enumerate(res.results):
            assert row == [f"{i}->{j}" for i in range(4)]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            comm.alltoall([1, 2])

        with pytest.raises(RuntimeError, match="exactly"):
            _run(prog)


class TestCollectiveTiming:
    def test_collective_advances_clock(self):
        def prog(comm):
            t0 = comm.now
            comm.allreduce(1.0)
            return comm.now - t0

        (res, _) = _run(prog)
        assert all(dt > 0 for dt in res.results)

    def test_larger_job_costs_more(self):
        def prog(comm):
            comm.allreduce(np.zeros(1000))
            return comm.now

        (small, _) = _run(prog, n_nodes=2)
        (large, _) = _run(prog, n_nodes=8)
        assert max(large.results) > max(small.results)

    def test_smartmap_cheapens_single_node_collectives(self):
        def prog(comm):
            comm.barrier()
            for _ in range(10):
                comm.allreduce(1.0)
            return comm.now

        (plain, _) = _run(prog, n_nodes=1, cores=4)
        (smart, _) = _run(prog, n_nodes=1, cores=4, smartmap=True)
        assert max(smart.results) < max(plain.results)


class TestAlltoallAlgorithmChoice:
    def test_small_payload_alltoall_scales_sublinearly(self):
        """Tiny-payload all-to-alls use the Bruck-style log-P bound, so
        quadrupling the rank count must not quadruple the cost."""

        def prog(comm):
            comm.barrier()
            t0 = comm.now
            comm.alltoall([1] * comm.size)
            return comm.now - t0

        (small, _) = _run(prog, n_nodes=2, cores=2)  # 4 ranks
        (large, _) = _run(prog, n_nodes=8, cores=2)  # 16 ranks
        assert max(large.results) < 3.0 * max(small.results)

    def test_large_payload_alltoall_costs_bandwidth(self):
        def prog(comm):
            comm.barrier()
            t0 = comm.now
            comm.alltoall([np.zeros(50_000) for _ in range(comm.size)])
            return comm.now - t0

        (small, _) = _run(prog)

        def prog_tiny(comm):
            comm.barrier()
            t0 = comm.now
            comm.alltoall([np.zeros(10) for _ in range(comm.size)])
            return comm.now - t0

        (tiny, _) = _run(prog_tiny)
        assert max(small.results) > 10 * max(tiny.results)
