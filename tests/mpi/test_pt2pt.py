"""Tests for simulated MPI point-to-point messaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.machine import Cluster
from repro.mpi import run_mpi
from repro.mpi.comm import ANY_SOURCE, ANY_TAG


def _run(prog, n_nodes=2, cores=2, **cfg):
    cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))
    return run_mpi(prog, cluster), cluster


class TestSendRecv:
    def test_payload_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"x": [1, 2]}, dest=1, tag=5)
            elif comm.rank == 1:
                return comm.recv(source=0, tag=5)

        (res, _) = _run(prog)
        assert res.results[1] == {"x": [1, 2]}

    def test_numpy_payload_copied(self):
        def prog(comm):
            if comm.rank == 0:
                a = np.arange(3.0)
                comm.send(a, dest=1)
                a[0] = 99.0  # mutate after send; receiver must not see it
            elif comm.rank == 1:
                return comm.recv(source=0)

        (res, _) = _run(prog)
        assert res.results[1][0] == 0.0

    def test_fifo_per_source_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1, tag=2)
            elif comm.rank == 1:
                return [comm.recv(source=0, tag=2) for _ in range(5)]

        (res, _) = _run(prog)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_matching(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
            elif comm.rank == 1:
                second = comm.recv(source=0, tag=2)
                first = comm.recv(source=0, tag=1)
                return (first, second)

        (res, _) = _run(prog)
        assert res.results[1] == ("a", "b")

    def test_wildcard_source(self):
        def prog(comm):
            if comm.rank in (0, 1):
                comm.send(comm.rank, dest=2, tag=9)
            elif comm.rank == 2:
                got = {comm.recv(source=ANY_SOURCE, tag=9) for _ in range(2)}
                return got

        (res, _) = _run(prog, n_nodes=2, cores=2)
        assert res.results[2] == {0, 1}

    def test_dest_out_of_range(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(1, dest=99)

        with pytest.raises(RuntimeError, match="out of range"):
            _run(prog)

    def test_sendrecv_exchange(self):
        def prog(comm):
            peer = comm.rank ^ 1
            if comm.rank < 2:
                return comm.sendrecv(comm.rank, dest=peer, source=peer)

        (res, _) = _run(prog)
        assert res.results[0] == 1
        assert res.results[1] == 0


class TestNonBlocking:
    def test_isend_irecv(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2], dest=1)
                req.wait()
            elif comm.rank == 1:
                req = comm.irecv(source=0)
                assert not req.test()
                data = req.wait()
                assert req.test()
                return data

        (res, _) = _run(prog)
        assert res.results[1] == [1, 2]

    def test_probe(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, dest=1, tag=3)
                comm.send(0, dest=1, tag=4)  # completion signal
            elif comm.rank == 1:
                comm.recv(source=0, tag=4)
                assert comm.probe(source=0, tag=3)
                assert not comm.probe(source=0, tag=99)
                return comm.recv(source=0, tag=3)

        (res, _) = _run(prog)
        assert res.results[1] == 7


class TestTiming:
    def test_recv_waits_for_arrival(self):
        """The receiver's clock must be at least the message arrival
        time (conservative virtual-time rule)."""

        def prog(comm):
            if comm.rank == 0:
                comm.work(1_000_000)  # 1e-3 s at default flop_time
                comm.send(1, dest=1)
            elif comm.rank == 1:
                comm.recv(source=0)
                return comm.now

        (res, cluster) = _run(prog)
        wire = cluster.network.message_time(8, intra_node=True)
        assert res.results[1] >= 1e-3 + wire

    def test_intra_node_cheaper_than_inter(self):
        def prog(comm):
            # rank 0 -> rank 1 (same node), rank 0 -> rank 2 (other node)
            if comm.rank == 0:
                comm.send(np.zeros(1000), dest=1)
                comm.send(np.zeros(1000), dest=2)
            elif comm.rank in (1, 2):
                comm.recv(source=0)
                return comm.now

        (res, _) = _run(prog)
        assert res.results[1] < res.results[2]

    def test_sender_charged_overhead(self):
        def prog(comm):
            if comm.rank == 0:
                t0 = comm.now
                comm.send(1, dest=1)
                return comm.now - t0
            if comm.rank == 1:
                comm.recv(source=0)

        (res, cluster) = _run(prog)
        assert res.results[0] == pytest.approx(cluster.config.mpi_msg_overhead)

    def test_deterministic_times_across_runs(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(100), dest=3)
            if comm.rank == 3:
                comm.recv(source=0)
            comm.barrier()
            return comm.now

        (res1, _) = _run(prog)
        (res2, _) = _run(prog)
        assert res1.results == res2.results
        assert res1.elapsed == res2.elapsed
