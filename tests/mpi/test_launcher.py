"""Tests for the SPMD launcher."""

from __future__ import annotations

import pytest

from repro.config import testing as mkconfig
from repro.machine import Cluster
from repro.mpi import MpiDeadlockError, run_mpi


class TestLaunch:
    def test_one_rank_per_core_by_default(self, cluster2x2):
        res = run_mpi(lambda comm: comm.size, cluster2x2)
        assert res.results == [4, 4, 4, 4]

    def test_reduced_rank_count(self, cluster2x2):
        res = run_mpi(lambda comm: comm.rank, cluster2x2, ranks=2)
        assert res.results == [0, 1]

    def test_rank_count_validation(self, cluster2x2):
        with pytest.raises(ValueError):
            run_mpi(lambda comm: None, cluster2x2, ranks=5)
        with pytest.raises(ValueError):
            run_mpi(lambda comm: None, cluster2x2, ranks=0)

    def test_extra_args_passed_through(self, cluster2x2):
        def prog(comm, a, b=0):
            return a + b + comm.rank

        res = run_mpi(prog, cluster2x2, 10, b=5)
        assert res.results == [15, 16, 17, 18]

    def test_node_and_core_identity(self, cluster2x2):
        def prog(comm):
            return (comm.ctx.node_id, comm.ctx.core_id)

        res = run_mpi(prog, cluster2x2)
        assert res.results == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestResults:
    def test_elapsed_is_max_rank_time(self, cluster2x2):
        def prog(comm):
            comm.work(comm.rank * 1e6)

        res = run_mpi(prog, cluster2x2)
        assert res.elapsed == pytest.approx(max(res.rank_times))
        assert res.rank_times[3] > res.rank_times[0]

    def test_rank_exception_propagates(self, cluster2x2):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 2 failed"):
            run_mpi(prog, cluster2x2)

    def test_deadlock_detection(self):
        cluster = Cluster(mkconfig(n_nodes=1, cores_per_node=2))

        def prog(comm):
            # both ranks recv a message nobody sends
            comm.recv(source=comm.rank ^ 1, tag=1)

        with pytest.raises((MpiDeadlockError, RuntimeError)):
            run_mpi(prog, cluster, timeout=1.0)
