"""End-to-end integration tests across the full stack.

These exercise multi-module paths: PPM programs with mixed phase
kinds, several shared arrays and collectives in one `do`; MPI programs
combining pt2pt with collectives; timing consistency between the two
stacks on one machine model; trace accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import franklin, testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster
from repro.mpi import run_mpi


class TestPpmPipeline:
    def test_stencil_sweep_pipeline(self):
        """A multi-iteration Jacobi-style sweep: every element averages
        its neighbours each phase.  Verifies snapshot semantics and
        halo fetching across many phases against numpy."""
        n, iters = 64, 5

        @ppm_function
        def jacobi(ctx, A, B):
            node_lo, node_hi = A.local_range(ctx.node_id)
            k = ctx.node_vp_count
            size = node_hi - node_lo
            lo = node_lo + (ctx.node_rank * size) // k
            hi = node_lo + ((ctx.node_rank + 1) * size) // k
            src, dst = A, B
            for _ in range(iters):
                yield ctx.global_phase
                # Read the halo window [lo-1, hi+1) clipped to bounds;
                # boundary elements are copied through unchanged.
                wlo, whi = max(lo - 1, 0), min(hi + 1, n)
                window = src[wlo:whi]
                new = window.copy()
                new[1:-1] = (window[:-2] + window[2:]) / 2.0
                dst[lo:hi] = new[lo - wlo : (hi - wlo)]
                ctx.work(3 * (hi - lo))
                src, dst = dst, src

        def main(ppm):
            A = ppm.global_shared("jacA", n)
            B = ppm.global_shared("jacB", n)
            init = np.sin(np.linspace(0, 3, n))
            A[:] = init
            ppm.do(2, jacobi, A, B)
            return (A.committed, B.committed, init)

        _, (a, b, init) = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        expected = init.copy()
        for _ in range(5):
            new = expected.copy()
            new[1:-1] = (expected[:-2] + expected[2:]) / 2.0
            expected = new
        final = b if 5 % 2 == 1 else a
        assert np.allclose(final, expected, atol=1e-12)

    def test_multiple_dos_share_state(self):
        """Several ppm.do calls against the same shared arrays: data
        committed by the first is visible to the second."""

        def fill(ctx, A):
            A[ctx.global_rank] = float(ctx.global_rank + 1)

        def square(ctx, A, B):
            B[ctx.global_rank] = A[ctx.global_rank] ** 2

        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.global_shared("B", 4)
            ppm.do(2, fill, A)
            ppm.do(2, square, A, B)
            return B.committed

        _, b = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        assert b.tolist() == [1.0, 4.0, 9.0, 16.0]

    def test_mixed_node_and_global_phases_pipeline(self):
        """Node-local pre-aggregation followed by global combination —
        the two-level pattern the model is designed for."""

        @ppm_function
        def two_level(ctx, data, partial, total):
            r = ctx.node_rank
            yield ctx.node_phase
            partial.accumulate(np.array([0]), np.array([data[r]]))
            yield ctx.global_phase
            if r == 0:
                total.accumulate(np.array([0]), np.array([partial[0]]))

        def main(ppm):
            k = 3
            data = ppm.node_shared("data", k)
            partial = ppm.node_shared("partial", 1)
            total = ppm.global_shared("total", 1)
            for node in range(ppm.node_count):
                data.instance(node)[:] = np.arange(k) + 10 * node
            ppm.do(k, two_level, data, partial, total)
            return total.committed[0]

        _, total = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        # node 0: 0+1+2 = 3; node 1: 10+11+12 = 33.
        assert total == 36.0

    def test_trace_accounts_phases(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.node_phase
            yield ctx.global_phase
            A[ctx.global_rank] = 1.0

        def main(ppm):
            A = ppm.global_shared("A", 4)
            stats = ppm.do(2, kernel, A)
            assert stats.node_phases == 2  # one per node
            assert stats.global_phases == 1
            return None

        cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
        run_ppm(main, cluster)
        assert cluster.trace.total_messages("ppm_node_phase") == 0
        assert len(list(cluster.trace.by_kind("ppm_global_phase"))) == 1
        assert len(list(cluster.trace.by_kind("ppm_node_phase"))) == 2


class TestMpiPipeline:
    def test_pipeline_with_pt2pt_and_collectives(self):
        """Token ring plus allreduce — ordering across mixed ops."""

        def prog(comm):
            token = comm.rank
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            for _ in range(comm.size):
                comm.send(token, dest=nxt, tag=1)
                token = comm.recv(source=prev, tag=1)
            total = comm.allreduce(token)
            return total

        cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
        res = run_mpi(prog, cluster)
        # After size hops every token returns home; sum of ranks = 6.
        assert all(r == 6 for r in res.results)

    def test_simulated_times_grow_with_cluster_distance(self):
        """The same program on a bigger machine pays more network."""

        def prog(comm):
            for _ in range(10):
                comm.allreduce(np.zeros(512))
            return comm.now

        t_small = run_mpi(prog, Cluster(franklin(n_nodes=2))).elapsed
        t_big = run_mpi(prog, Cluster(franklin(n_nodes=32))).elapsed
        assert t_big > t_small


class TestCrossStackConsistency:
    def test_ppm_and_mpi_share_flop_model(self):
        """Pure-compute programs cost identical simulated time on
        either stack — the cost model is shared."""
        flops = 5_000_000

        def mpi_prog(comm):
            comm.work(flops)
            return comm.now

        def ppm_kernel(ctx):
            ctx.work(flops)

        def ppm_main(ppm):
            ppm.do(1, ppm_kernel, phase="node")
            return None

        cluster_m = Cluster(mkconfig(n_nodes=1, cores_per_node=1))
        t_mpi = run_mpi(mpi_prog, cluster_m).elapsed
        cluster_p = Cluster(mkconfig(n_nodes=1, cores_per_node=1))
        ppm, _ = run_ppm(ppm_main, cluster_p)
        # PPM adds only the node-phase barrier around the same work.
        assert ppm.elapsed == pytest.approx(t_mpi, rel=0.05)
