"""Event-emission tests: every instrumented site fires exactly once
per occurrence, and untraced runs emit nothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.machine import Cluster
from repro.obs.events import (
    EVENT_TYPES,
    BarrierWait,
    BundleFlushed,
    EventBus,
    MessageRecv,
    MessageSend,
    PhaseBegin,
    PhaseCommit,
    PhaseTrace,
    VpScheduled,
    event_from_dict,
)


def _two_phase_program(ppm):
    """Two global phases over 8 VPs on 2 nodes: a remote-read phase
    and a remote-write phase."""
    A = ppm.global_shared("A", 32)
    out = ppm.node_shared("out", 8)

    def kernel(ctx, A, out):
        yield ctx.global_phase
        vals = A[[(ctx.global_rank * 5) % 32, (ctx.global_rank * 11) % 32]]
        ctx.work(50)
        out[ctx.global_rank % 8] = float(np.sum(vals))
        yield ctx.global_phase
        A[[(ctx.global_rank * 3) % 32]] = [1.0]
        ctx.work(10)

    ppm.do(8, kernel, A, out)
    return out.instance(0).copy()


@pytest.fixture
def traced_run():
    trace = PhaseTrace()
    cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
    ppm, result = run_ppm(_two_phase_program, cluster, trace=trace)
    return ppm, result, trace


class TestEventBus:
    def test_emit_and_iterate(self):
        bus = EventBus()
        ev = VpScheduled(phase=0, node=0, core=0, vp=0, cost=1.0)
        bus.emit(ev)
        assert len(bus) == 1
        assert list(bus) == [ev]

    def test_subscribers_see_every_emit(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        ev = VpScheduled(phase=0, node=0, core=0, vp=0, cost=1.0)
        bus.emit(ev)
        assert seen == [ev]

    def test_clear_keeps_subscribers(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit(VpScheduled(phase=0, node=0, core=0, vp=0, cost=1.0))
        bus.clear()
        assert len(bus) == 0
        bus.emit(VpScheduled(phase=1, node=0, core=0, vp=0, cost=1.0))
        assert len(seen) == 2

    def test_roundtrip_every_event_type(self):
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind
        ev = MessageSend(
            phase=3, src=0, dst=1, variable="A", purpose="read_request",
            messages=2, nbytes=128,
        )
        assert event_from_dict(ev.to_dict()) == ev
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"event": "nope"})


class TestEmissionCounts:
    def test_untraced_run_emits_nothing(self):
        cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
        ppm, _ = run_ppm(_two_phase_program, cluster)
        assert ppm.tracer is None
        assert cluster.network.tracer is None

    def test_phase_begin_and_commit_once_per_phase(self, traced_run):
        _, _, trace = traced_run
        begins = list(trace.by_kind("phase_begin"))
        commits = list(trace.by_kind("phase_commit"))
        assert len(begins) == 2
        assert len(commits) == 2
        assert [b.phase for b in begins] == [0, 1]
        assert [c.phase for c in commits] == [0, 1]
        for c in commits:
            assert isinstance(c, PhaseCommit)
            assert c.phase_kind == "global"
            assert len(c.nodes) == 2  # one slice per cluster node

    def test_vp_scheduled_once_per_vp_per_phase(self, traced_run):
        _, _, trace = traced_run
        for phase in (0, 1):
            scheduled = [
                e for e in trace.by_kind("vp_scheduled") if e.phase == phase
            ]
            # 8 VPs per node phase round (mkconfig counts VPs per node).
            keys = [(e.node, e.vp) for e in scheduled]
            assert len(keys) == len(set(keys)), "a VP was reported twice"
            assert all(isinstance(e, VpScheduled) for e in scheduled)
            begin = next(
                b for b in trace.by_kind("phase_begin") if b.phase == phase
            )
            assert len(scheduled) == begin.vps

    def test_bundle_flushed_once_per_node_variable_direction(self, traced_run):
        _, _, trace = traced_run
        flushes = list(trace.by_kind("bundle_flushed"))
        keys = [(e.phase, e.node, e.variable, e.direction) for e in flushes]
        assert len(keys) == len(set(keys))
        reads = [e for e in flushes if e.phase == 0 and e.direction == "read"]
        assert {e.node for e in reads} == {0, 1}
        for e in flushes:
            assert isinstance(e, BundleFlushed)
            assert e.unique_elems == e.local_elems + e.remote_elems
            assert e.raw_elems >= e.unique_elems

    def test_every_send_paired_with_recv(self, traced_run):
        _, _, trace = traced_run
        sends = list(trace.by_kind("message_send"))
        recvs = list(trace.by_kind("message_recv"))
        assert sends, "remote reads must produce wire traffic"
        assert len(sends) == len(recvs)
        pair = lambda e: (e.phase, e.src, e.dst, e.variable, e.purpose, e.messages, e.nbytes)
        assert sorted(map(pair, sends)) == sorted(map(pair, recvs))
        for e in sends:
            assert isinstance(e, MessageSend)
            assert e.src != e.dst, "local traffic must not hit the wire"
        assert all(isinstance(e, MessageRecv) for e in recvs)

    def test_barrier_wait_once_per_global_phase(self, traced_run):
        _, _, trace = traced_run
        waits = list(trace.by_kind("barrier_wait"))
        assert [w.phase for w in waits] == [0, 1]
        for w in waits:
            assert isinstance(w, BarrierWait)
            assert w.scope == "cluster"
            assert w.participants == 2

    def test_phase_begin_fields(self, traced_run):
        _, _, trace = traced_run
        begin = next(iter(trace.by_kind("phase_begin")))
        assert isinstance(begin, PhaseBegin)
        assert begin.phase_kind == "global"
        assert begin.nodes == (0, 1)

    def test_node_phase_emits_node_scoped_events(self):
        trace = PhaseTrace()
        cluster = Cluster(mkconfig(n_nodes=2, cores_per_node=2))

        def main(ppm):
            S = ppm.node_shared("s", 4)

            def kernel(ctx, S):
                yield ctx.node_phase
                S[ctx.node_rank % 4] = 1.0
                ctx.work(10)

            ppm.do(4, kernel, S)

        run_ppm(main, cluster, trace=trace)
        commits = list(trace.by_kind("phase_commit"))
        assert len(commits) == 2  # one node phase per node
        assert all(c.phase_kind == "node" for c in commits)
        waits = list(trace.by_kind("barrier_wait"))
        assert waits and all(w.scope == "node" for w in waits)
