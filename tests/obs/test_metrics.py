"""RunReport property tests: conservation laws, bounded fractions,
and the zero-perturbation guarantee of tracing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.config import franklin, testing as mkconfig
from repro.core import PpmError, run_ppm
from repro.machine import Cluster
from repro.obs.events import MessageRecv, MessageSend, PhaseTrace
from repro.obs.metrics import RunReport


def _cg_run(trace=None):
    problem = build_chimney_problem(6)
    cluster = Cluster(franklin(n_nodes=4))
    result, elapsed = ppm_cg_solve(
        problem, cluster, max_iters=5, tol=0.0, trace=trace
    )
    return result, elapsed


@pytest.fixture(scope="module")
def cg_report():
    trace = PhaseTrace()
    _cg_run(trace)
    return RunReport.from_trace(trace)


class TestInvariants:
    def test_bytes_conserved_send_vs_recv(self, cg_report):
        # from_events raises on violation; cross-check per phase here.
        for p in cg_report.phases:
            assert p.bytes_moved >= 0

    def test_violation_raises(self):
        events = [
            MessageSend(
                phase=0, src=0, dst=1, variable="A", purpose="read_reply",
                messages=1, nbytes=100,
            ),
            MessageRecv(
                phase=0, src=0, dst=1, variable="A", purpose="read_reply",
                messages=1, nbytes=90,
            ),
        ]
        # A send/recv byte mismatch is only checked for committed
        # phases; fabricate a commit for phase 0.
        from repro.obs.events import NodeSlice, PhaseCommit

        events.append(
            PhaseCommit(
                phase=0, phase_kind="global", latency_rounds=1,
                t=0.0, t_end=1.0, messages=1, nbytes=100, collectives=0,
                nodes=(
                    NodeSlice(
                        node=0, t0=0.0, compute=1.0, commit_cpu=0.0,
                        comm=0.0, overlapped=0.0, arrival=1.0, wait=0.0,
                    ),
                ),
            )
        )
        with pytest.raises(ValueError, match="byte conservation"):
            RunReport.from_events(events)

    def test_overlap_fraction_bounded(self, cg_report):
        assert 0.0 <= cg_report.overlap_fraction <= 1.0
        for p in cg_report.phases:
            assert 0.0 <= p.overlap_fraction <= 1.0

    def test_bundling_beats_per_element_messaging(self, cg_report):
        assert cg_report.total_messages > 0
        assert cg_report.unbundled_messages > cg_report.total_messages
        assert cg_report.bundling_ratio > 1.0

    def test_phase_durations_positive_and_ordered(self, cg_report):
        t = 0.0
        for p in cg_report.phases:
            assert p.duration >= 0.0
            assert p.t_end >= t
            t = p.t_end
        assert cg_report.elapsed == cg_report.phases[-1].t_end

    def test_barrier_skew_nonnegative(self, cg_report):
        for p in cg_report.phases:
            assert p.barrier_skew >= 0.0
        assert cg_report.max_barrier_skew == max(
            p.barrier_skew for p in cg_report.phases
        )

    def test_phase_lookup(self, cg_report):
        first = cg_report.phases[0]
        assert cg_report.phase(first.phase) is first
        with pytest.raises(KeyError):
            cg_report.phase(10_000)

    def test_empty_trace_reports_empty(self):
        report = RunReport.from_trace(PhaseTrace())
        assert report.phases == ()
        assert report.elapsed == 0.0
        assert report.bundling_ratio is None
        assert report.overlap_fraction == 0.0


class TestZeroPerturbation:
    def test_traced_cg_matches_untraced_bitwise(self):
        res_plain, t_plain = _cg_run()
        res_traced, t_traced = _cg_run(PhaseTrace())
        assert np.array_equal(res_plain.x, res_traced.x)
        assert res_plain.iterations == res_traced.iterations
        assert res_plain.residual_norm == res_traced.residual_norm
        assert t_plain == t_traced

    def test_traced_generic_program_matches_untraced(self):
        def main(ppm):
            A = ppm.global_shared("A", 16)

            def kernel(ctx, A):
                yield ctx.global_phase
                ctx.work(10)
                A[[ctx.global_rank % 16]] = [float(ctx.global_rank)]

            ppm.do(4, kernel, A)
            return A.committed.copy()

        p1, r1 = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        p2, r2 = run_ppm(
            main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)), trace=True
        )
        assert np.array_equal(r1, r2)
        assert p1.elapsed == p2.elapsed
        assert p1.summary() == p2.summary()


class TestProgramApi:
    def test_report_requires_tracer(self):
        def main(ppm):
            pass

        ppm, _ = run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=1)))
        with pytest.raises(PpmError, match="trace"):
            ppm.report()

    def test_trace_true_attaches_fresh_tracer(self):
        def main(ppm):
            A = ppm.global_shared("A", 8)

            def kernel(ctx, A):
                yield ctx.global_phase
                ctx.work(1)

            ppm.do(2, kernel, A)

        ppm, _ = run_ppm(
            main, Cluster(mkconfig(n_nodes=1, cores_per_node=1)), trace=True
        )
        assert isinstance(ppm.tracer, PhaseTrace)
        report = ppm.report()
        assert len(report.phases) == 1

    def test_invalid_trace_value_rejected(self):
        with pytest.raises(ValueError, match="trace"):
            run_ppm(
                lambda ppm: None,
                Cluster(mkconfig(n_nodes=1, cores_per_node=1)),
                trace="yes please",
            )
