"""CLI tests for ``python -m repro.obs``: golden-file report output,
chrome conversion, demo run, and usage errors."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.__main__ import main

GOLDEN = Path(__file__).parent / "golden"


class TestReportCommand:
    def test_report_matches_golden(self, capsys):
        rc = main(["report", str(GOLDEN / "sample.trace.json")])
        assert rc == 0
        out = capsys.readouterr().out
        expected = (GOLDEN / "sample.report.txt").read_text()
        assert out == expected

    def test_report_json(self, capsys):
        rc = main(["report", str(GOLDEN / "sample.trace.json"), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["messages"] == 3
        assert payload["phases"][0]["bundling_ratio"] == 40.0

    def test_unreadable_trace_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        rc = main(["report", str(missing)])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestChromeCommand:
    def test_chrome_conversion(self, tmp_path, capsys):
        out_path = tmp_path / "out.chrome.json"
        rc = main(["chrome", str(GOLDEN / "sample.trace.json"), "-o", str(out_path)])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]


class TestDemoCommand:
    def test_demo_writes_trace_and_chrome(self, tmp_path, capsys):
        trace_path = tmp_path / "cg.trace.json"
        chrome_path = tmp_path / "cg.chrome.json"
        rc = main(
            [
                "demo",
                "--nodes", "2",
                "--nx", "4",
                "--iters", "2",
                "--out", str(trace_path),
                "--chrome", str(chrome_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "== ppm run report ==" in out
        saved = json.loads(trace_path.read_text())
        assert saved["schema"] == "ppm-trace"
        assert json.loads(chrome_path.read_text())["traceEvents"]
        # the saved trace feeds straight back into the report command
        assert main(["report", str(trace_path)]) == 0


class TestUsage:
    def test_no_command_exits_2(self, capsys):
        assert main([]) == 2
