"""Exporter tests: trace-file round-trip, schema validation, Chrome
trace_event structure, and report rendering."""

from __future__ import annotations

import json

import pytest

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.machine import Cluster
from repro.obs.events import PhaseTrace
from repro.obs.export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    chrome_trace,
    format_report,
    load_trace,
    report_to_dict,
    save_chrome_trace,
    save_trace,
    trace_to_dict,
)
from repro.obs.metrics import RunReport


@pytest.fixture(scope="module")
def traced():
    trace = PhaseTrace()

    def main(ppm):
        A = ppm.global_shared("A", 32)

        def kernel(ctx, A):
            yield ctx.global_phase
            _ = A[[(ctx.global_rank * 7) % 32]]
            ctx.work(20)
            yield ctx.global_phase
            A[[(ctx.global_rank * 3) % 32]] = [2.0]

        ppm.do(8, kernel, A)

    run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)), trace=trace)
    return trace


class TestTraceFiles:
    def test_roundtrip_lossless(self, traced, tmp_path):
        path = tmp_path / "run.trace.json"
        save_trace(traced, str(path))
        loaded = load_trace(str(path))
        assert list(loaded) == list(traced)
        assert loaded.phase == max(e.phase for e in traced)

    def test_schema_header(self, traced):
        payload = trace_to_dict(traced)
        assert payload["schema"] == SCHEMA_NAME
        assert payload["version"] == SCHEMA_VERSION
        assert all("event" in d for d in payload["events"])

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ValueError, match="not a ppm-trace"):
            load_trace(str(path))

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": SCHEMA_NAME, "version": 99, "events": []})
        )
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))


class TestChromeTrace:
    def test_structure(self, traced):
        payload = chrome_trace(traced)
        events = payload["traceEvents"]
        names = {e["args"].get("name") for e in events if e["ph"] == "M"}
        assert "cluster" in names
        assert {"node 0", "node 1"} <= names
        slices = [e for e in events if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 0 for e in slices)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "cluster counter track missing"
        instants = [e for e in events if e["ph"] == "i"]
        assert instants, "wire transfers should appear as instants"
        # instants get their phase's commit timestamp
        ends = {
            e.phase: e.t_end * 1e6
            for e in traced
            if e.kind == "phase_commit"
        }
        for inst in instants:
            assert inst["ts"] == ends[inst["args"]["phase"]]

    def test_file_is_json_loadable(self, traced, tmp_path):
        path = tmp_path / "run.chrome.json"
        save_chrome_trace(traced, str(path))
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]


class TestReportRendering:
    def test_format_report_contains_phases_and_totals(self, traced):
        report = RunReport.from_trace(traced)
        text = format_report(report)
        assert "== ppm run report ==" in text
        assert "bundled" in text
        for p in report.phases:
            assert f"\n{str(p.phase).rjust(5)}  " in text

    def test_report_to_dict_is_json_ready(self, traced):
        report = RunReport.from_trace(traced)
        payload = report_to_dict(report)
        json.dumps(payload)  # must not raise
        assert len(payload["phases"]) == len(report.phases)
        assert payload["totals"]["messages"] == report.total_messages
