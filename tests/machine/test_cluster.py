"""Tests for cluster topology and rank mapping."""

from __future__ import annotations

import pytest

from repro.config import testing as mkconfig
from repro.machine import Cluster


class TestTopology:
    def test_node_count(self, cluster2x2):
        assert cluster2x2.n_nodes == 2
        assert len(list(cluster2x2)) == 2

    def test_total_cores(self, cluster2x2):
        assert cluster2x2.total_cores == 4

    def test_node_lookup(self, cluster2x2):
        assert cluster2x2.node(1).node_id == 1

    def test_node_lookup_out_of_range(self, cluster2x2):
        with pytest.raises(IndexError):
            cluster2x2.node(2)

    def test_each_node_has_core_clocks(self, cluster2x2):
        for node in cluster2x2:
            assert len(node.core_clocks) == 2


class TestRankMapping:
    def test_node_major_layout(self):
        cluster = Cluster(mkconfig(n_nodes=3, cores_per_node=4))
        assert cluster.rank_to_node(0) == 0
        assert cluster.rank_to_node(3) == 0
        assert cluster.rank_to_node(4) == 1
        assert cluster.rank_to_node(11) == 2

    def test_core_within_node(self):
        cluster = Cluster(mkconfig(n_nodes=3, cores_per_node=4))
        assert cluster.rank_to_core(0) == 0
        assert cluster.rank_to_core(5) == 1
        assert cluster.rank_to_core(11) == 3

    def test_same_node(self, cluster2x2):
        assert cluster2x2.same_node(0, 1)
        assert not cluster2x2.same_node(1, 2)

    def test_rank_out_of_range(self, cluster2x2):
        with pytest.raises(IndexError):
            cluster2x2.rank_to_node(4)
        with pytest.raises(IndexError):
            cluster2x2.rank_to_core(-1)


class TestClocks:
    def test_elapsed_is_max_node_clock(self, cluster2x2):
        cluster2x2.node(0).clock.advance(1.0)
        cluster2x2.node(1).clock.advance(3.0)
        assert cluster2x2.elapsed == 3.0

    def test_sync_cores_takes_max(self, cluster2x2):
        node = cluster2x2.node(0)
        node.core_clocks[0].advance(1.0)
        node.core_clocks[1].advance(2.0)
        t = node.sync_cores()
        assert t == 2.0
        assert node.clock.now == 2.0
        assert all(c.now == 2.0 for c in node.core_clocks)

    def test_reset_clocks(self, cluster2x2):
        cluster2x2.node(0).clock.advance(5.0)
        cluster2x2.node(1).core_clocks[1].advance(2.0)
        cluster2x2.reset_clocks()
        assert cluster2x2.elapsed == 0.0
        assert cluster2x2.node(1).core_clocks[1].now == 0.0

    def test_node_needs_a_core(self):
        from repro.machine.cluster import Node

        with pytest.raises(ValueError):
            Node(0, cores=0)
