"""Tests for logical clocks."""

from __future__ import annotations

import pytest

from repro.machine.clock import LogicalClock


class TestLogicalClock:
    def test_starts_at_zero(self):
        assert LogicalClock().now == 0.0

    def test_custom_start(self):
        assert LogicalClock(5.0).now == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            LogicalClock(-1.0)

    def test_advance_accumulates(self):
        c = LogicalClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_returns_new_time(self):
        assert LogicalClock().advance(3.0) == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            LogicalClock().advance(-0.1)

    def test_merge_moves_forward(self):
        c = LogicalClock(1.0)
        c.merge(4.0)
        assert c.now == 4.0

    def test_merge_never_moves_backward(self):
        c = LogicalClock(5.0)
        c.merge(2.0)
        assert c.now == 5.0

    def test_reset(self):
        c = LogicalClock(9.0)
        c.reset()
        assert c.now == 0.0

    def test_reset_to_value(self):
        c = LogicalClock(9.0)
        c.reset(3.0)
        assert c.now == 3.0

    def test_reset_rejects_negative(self):
        with pytest.raises(ValueError):
            LogicalClock().reset(-1.0)
