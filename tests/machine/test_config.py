"""Tests for the machine configuration and presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import MachineConfig, franklin, manycore, testing as mkconfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = MachineConfig()
        assert cfg.n_nodes == 1
        assert cfg.cores_per_node == 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="n_nodes"):
            MachineConfig(n_nodes=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            MachineConfig(cores_per_node=0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError, match="net_alpha"):
            MachineConfig(net_alpha=-1.0)

    def test_rejects_tiny_bundle(self):
        with pytest.raises(ValueError, match="bundle_max_bytes"):
            MachineConfig(bundle_max_bytes=4)

    def test_rejects_bad_overlap_fraction(self):
        with pytest.raises(ValueError, match="overlap_fraction"):
            MachineConfig(overlap_fraction=1.5)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_nodes = 5


class TestDerived:
    def test_total_cores(self):
        assert MachineConfig(n_nodes=3, cores_per_node=4).total_cores == 12

    def test_replace_creates_variant(self):
        cfg = MachineConfig()
        cfg2 = cfg.replace(n_nodes=8)
        assert cfg2.n_nodes == 8
        assert cfg.n_nodes == 1
        assert cfg2.cores_per_node == cfg.cores_per_node

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            MachineConfig().replace(n_nodes=-1)


class TestSmartMap:
    def test_overhead_without_smartmap(self):
        cfg = MachineConfig()
        assert cfg.effective_msg_overhead(intra_node=True) == cfg.mpi_msg_overhead
        assert cfg.effective_msg_overhead(intra_node=False) == cfg.mpi_msg_overhead

    def test_smartmap_only_affects_intra_node(self):
        cfg = MachineConfig(smartmap=True)
        assert cfg.effective_msg_overhead(intra_node=True) == cfg.smartmap_msg_overhead
        assert cfg.effective_msg_overhead(intra_node=False) == cfg.mpi_msg_overhead

    def test_smartmap_is_cheaper(self):
        cfg = MachineConfig(smartmap=True)
        assert cfg.smartmap_msg_overhead < cfg.mpi_msg_overhead


class TestPresets:
    def test_franklin_is_quad_core(self):
        assert franklin(n_nodes=16).cores_per_node == 4
        assert franklin(n_nodes=16).n_nodes == 16

    def test_manycore_core_count(self):
        assert manycore(cores_per_node=256).cores_per_node == 256

    def test_presets_accept_overrides(self):
        cfg = franklin(n_nodes=2, smartmap=True)
        assert cfg.smartmap

    def test_testing_preset(self):
        cfg = mkconfig()
        assert cfg.n_nodes == 2
        assert cfg.cores_per_node == 2


class TestConfigErrorDiagnostics:
    """Regression tests for the ConfigError validation pass: malformed
    machine descriptions must fail fast with a typed error instead of
    surfacing as NaN/garbage simulated times mid-run."""

    def test_config_error_type(self):
        from repro.core.errors import ConfigError, PpmError

        assert issubclass(ConfigError, PpmError)
        assert issubclass(ConfigError, ValueError)  # backward compatible
        with pytest.raises(ConfigError):
            MachineConfig(n_nodes=0)

    @pytest.mark.parametrize(
        "knob",
        [
            "net_alpha",
            "net_beta",
            "intra_alpha",
            "intra_beta",
            "flop_time",
            "mem_access_time",
            "mpi_msg_overhead",
            "smartmap_msg_overhead",
            "barrier_alpha",
            "ppm_commit_per_element",
        ],
    )
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_rejects_non_finite_and_negative_costs(self, knob, bad):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match=knob):
            MachineConfig(**{knob: bad})

    def test_zero_cost_knobs_stay_legal(self):
        """Zero-cost machines are used by tests to isolate semantics
        from timing; validation must not outlaw them."""
        cfg = MachineConfig(net_alpha=0.0, net_beta=0.0, barrier_alpha=0.0)
        assert cfg.net_alpha == 0.0

    @pytest.mark.parametrize("knob", ["element_bytes", "index_bytes"])
    def test_rejects_nonpositive_byte_sizes(self, knob):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match=knob):
            MachineConfig(**{knob: 0})

    def test_rejects_nan_overlap_fraction(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="overlap_fraction"):
            MachineConfig(overlap_fraction=float("nan"))

    def test_message_mentions_offending_value(self):
        from repro.core.errors import ConfigError

        with pytest.raises(ConfigError, match="-5"):
            MachineConfig(net_alpha=-5.0)
