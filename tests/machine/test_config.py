"""Tests for the machine configuration and presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import MachineConfig, franklin, manycore, testing as mkconfig


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = MachineConfig()
        assert cfg.n_nodes == 1
        assert cfg.cores_per_node == 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError, match="n_nodes"):
            MachineConfig(n_nodes=0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            MachineConfig(cores_per_node=0)

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError, match="net_alpha"):
            MachineConfig(net_alpha=-1.0)

    def test_rejects_tiny_bundle(self):
        with pytest.raises(ValueError, match="bundle_max_bytes"):
            MachineConfig(bundle_max_bytes=4)

    def test_rejects_bad_overlap_fraction(self):
        with pytest.raises(ValueError, match="overlap_fraction"):
            MachineConfig(overlap_fraction=1.5)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_nodes = 5


class TestDerived:
    def test_total_cores(self):
        assert MachineConfig(n_nodes=3, cores_per_node=4).total_cores == 12

    def test_replace_creates_variant(self):
        cfg = MachineConfig()
        cfg2 = cfg.replace(n_nodes=8)
        assert cfg2.n_nodes == 8
        assert cfg.n_nodes == 1
        assert cfg2.cores_per_node == cfg.cores_per_node

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            MachineConfig().replace(n_nodes=-1)


class TestSmartMap:
    def test_overhead_without_smartmap(self):
        cfg = MachineConfig()
        assert cfg.effective_msg_overhead(intra_node=True) == cfg.mpi_msg_overhead
        assert cfg.effective_msg_overhead(intra_node=False) == cfg.mpi_msg_overhead

    def test_smartmap_only_affects_intra_node(self):
        cfg = MachineConfig(smartmap=True)
        assert cfg.effective_msg_overhead(intra_node=True) == cfg.smartmap_msg_overhead
        assert cfg.effective_msg_overhead(intra_node=False) == cfg.mpi_msg_overhead

    def test_smartmap_is_cheaper(self):
        cfg = MachineConfig(smartmap=True)
        assert cfg.smartmap_msg_overhead < cfg.mpi_msg_overhead


class TestPresets:
    def test_franklin_is_quad_core(self):
        assert franklin(n_nodes=16).cores_per_node == 4
        assert franklin(n_nodes=16).n_nodes == 16

    def test_manycore_core_count(self):
        assert manycore(cores_per_node=256).cores_per_node == 256

    def test_presets_accept_overrides(self):
        cfg = franklin(n_nodes=2, smartmap=True)
        assert cfg.smartmap

    def test_testing_preset(self):
        cfg = mkconfig()
        assert cfg.n_nodes == 2
        assert cfg.cores_per_node == 2
