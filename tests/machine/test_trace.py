"""Tests for event tracing and statistics."""

from __future__ import annotations

from repro.machine.trace import Trace


class TestRecording:
    def test_records_events(self):
        tr = Trace()
        tr.record("msg", 0, 1.0, messages=1, nbytes=100)
        tr.record("phase", 1, 2.0)
        assert len(tr) == 2
        assert tr.events[0].kind == "msg"
        assert tr.events[1].who == 1

    def test_by_kind_filter(self):
        tr = Trace()
        tr.record("msg", 0, 1.0)
        tr.record("phase", 0, 2.0)
        tr.record("msg", 1, 3.0)
        assert len(list(tr.by_kind("msg"))) == 2

    def test_disabled_skips_events_keeps_counters(self):
        tr = Trace(enabled=False)
        tr.record("msg", 0, 1.0, messages=3, nbytes=300)
        assert len(tr) == 0
        assert tr.total_messages("msg") == 3
        assert tr.total_bytes("msg") == 300


class TestAggregates:
    def test_totals_by_kind(self):
        tr = Trace()
        tr.record("msg", 0, 1.0, messages=2, nbytes=10)
        tr.record("msg", 1, 2.0, messages=3, nbytes=20)
        tr.record("bundle", 0, 3.0, messages=1, nbytes=5)
        assert tr.total_messages("msg") == 5
        assert tr.total_bytes("msg") == 30
        assert tr.total_messages() == 6
        assert tr.total_bytes() == 35

    def test_unknown_kind_is_zero(self):
        tr = Trace()
        assert tr.total_messages("nope") == 0

    def test_clear(self):
        tr = Trace()
        tr.record("msg", 0, 1.0, messages=1, nbytes=1)
        tr.clear()
        assert len(tr) == 0
        assert tr.total_messages() == 0
