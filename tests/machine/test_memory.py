"""Tests for per-node shared memory segments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.memory import NodeMemory


@pytest.fixture
def mem() -> NodeMemory:
    return NodeMemory(node_id=0)


class TestAllocate:
    def test_allocate_shape_and_fill(self, mem):
        arr = mem.allocate("x", (3, 2), dtype=np.int32, fill=7)
        assert arr.shape == (3, 2)
        assert arr.dtype == np.int32
        assert (arr == 7).all()

    def test_allocate_uninitialised(self, mem):
        arr = mem.allocate("x", 5, fill=None)
        assert arr.shape == (5,)

    def test_duplicate_name_rejected(self, mem):
        mem.allocate("x", 3)
        with pytest.raises(KeyError, match="already allocated"):
            mem.allocate("x", 3)

    def test_adopt_no_copy(self, mem):
        src = np.arange(4.0)
        arr = mem.adopt("y", src)
        assert arr is src
        src[0] = 99.0
        assert mem.get("y")[0] == 99.0

    def test_adopt_duplicate_rejected(self, mem):
        mem.adopt("y", np.zeros(2))
        with pytest.raises(KeyError):
            mem.adopt("y", np.zeros(2))


class TestLookup:
    def test_get_returns_segment(self, mem):
        arr = mem.allocate("x", 3)
        assert mem.get("x") is arr

    def test_get_unknown_raises(self, mem):
        with pytest.raises(KeyError, match="not allocated"):
            mem.get("nope")

    def test_contains(self, mem):
        mem.allocate("x", 1)
        assert "x" in mem
        assert "y" not in mem

    def test_iteration_and_len(self, mem):
        mem.allocate("a", 1)
        mem.allocate("b", 1)
        assert sorted(mem) == ["a", "b"]
        assert len(mem) == 2


class TestFree:
    def test_free_releases_name(self, mem):
        mem.allocate("x", 3)
        mem.free("x")
        assert "x" not in mem
        mem.allocate("x", 5)  # re-usable

    def test_free_unknown_raises(self, mem):
        with pytest.raises(KeyError):
            mem.free("x")


class TestAccounting:
    def test_total_bytes(self, mem):
        mem.allocate("a", 10, dtype=np.float64)
        mem.allocate("b", 4, dtype=np.int32)
        assert mem.total_bytes == 10 * 8 + 4 * 4
