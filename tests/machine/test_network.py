"""Tests for the network cost model: alpha/beta messaging, bundling,
NIC contention and collective formulas."""

from __future__ import annotations

import math

import pytest

from repro.config import MachineConfig
from repro.machine.network import ZERO_COST, BundleCost, NetworkModel


@pytest.fixture
def net() -> NetworkModel:
    return NetworkModel(MachineConfig(n_nodes=4, cores_per_node=4))


class TestMessageTime:
    def test_inter_node_alpha_beta(self, net):
        cfg = net.config
        assert net.message_time(1000, intra_node=False) == pytest.approx(
            cfg.net_alpha + 1000 * cfg.net_beta
        )

    def test_intra_node_alpha_beta(self, net):
        cfg = net.config
        assert net.message_time(1000, intra_node=True) == pytest.approx(
            cfg.intra_alpha + 1000 * cfg.intra_beta
        )

    def test_intra_cheaper_than_inter(self, net):
        assert net.message_time(4096, True) < net.message_time(4096, False)

    def test_zero_bytes_still_pays_latency(self, net):
        assert net.message_time(0, False) == net.config.net_alpha

    def test_rejects_negative_bytes(self, net):
        with pytest.raises(ValueError):
            net.message_time(-1, False)

    def test_monotone_in_bytes(self, net):
        assert net.message_time(2000, False) > net.message_time(1000, False)


class TestBundleCost:
    def test_addition(self):
        a = BundleCost(1, 10, 0.5, 0.1)
        b = BundleCost(2, 20, 0.25, 0.2)
        c = a + b
        assert c.messages == 3
        assert c.payload_bytes == 30
        assert c.wire_time == pytest.approx(0.75)
        assert c.cpu_time == pytest.approx(0.3)

    def test_total_time(self):
        assert BundleCost(1, 10, 0.5, 0.1).total_time == pytest.approx(0.6)

    def test_zero_cost_identity(self):
        a = BundleCost(3, 30, 1.0, 0.5)
        s = a + ZERO_COST
        assert (s.messages, s.payload_bytes, s.wire_time, s.cpu_time) == (
            a.messages,
            a.payload_bytes,
            a.wire_time,
            a.cpu_time,
        )


class TestBundling:
    def test_zero_elements_is_free(self, net):
        assert net.bundle(0, False) == ZERO_COST

    def test_small_transfer_is_one_message(self, net):
        cost = net.bundle(10, False)
        assert cost.messages == 1

    def test_message_count_scales_with_payload(self, net):
        cfg = net.config
        per_elem = cfg.element_bytes + cfg.index_bytes
        n = (cfg.bundle_max_bytes // per_elem) * 3 + 1
        cost = net.bundle(n, False)
        assert cost.messages == math.ceil(n * per_elem / cfg.bundle_max_bytes)

    def test_with_index_ships_more_bytes(self, net):
        n = 100
        dense = net.bundle(n, False, with_index=False)
        scattered = net.bundle(n, False, with_index=True)
        assert scattered.payload_bytes == dense.payload_bytes + n * net.config.index_bytes

    def test_unbundled_ablation_one_message_per_element(self):
        cfg = MachineConfig(bundling=False)
        net = NetworkModel(cfg)
        cost = net.bundle(50, False)
        assert cost.messages == 50

    def test_bundling_beats_unbundled(self):
        on = NetworkModel(MachineConfig(bundling=True))
        off = NetworkModel(MachineConfig(bundling=False))
        n = 10_000
        assert on.bundle(n, False).total_time < off.bundle(n, False).total_time / 10

    def test_rejects_negative_elements(self, net):
        with pytest.raises(ValueError):
            net.bundle(-1, False)

    def test_custom_element_bytes(self, net):
        small = net.bundle(100, False, element_bytes=4, with_index=False)
        large = net.bundle(100, False, element_bytes=16, with_index=False)
        assert small.payload_bytes == 400
        assert large.payload_bytes == 1600


class TestGatherRoundTrip:
    def test_request_plus_reply_messages(self, net):
        cost = net.gather_round_trip(10, False)
        assert cost.messages == 2  # one request bundle + one reply

    def test_zero_elements_free(self, net):
        assert net.gather_round_trip(0, False) == ZERO_COST

    def test_rounds_preserve_bandwidth(self, net):
        one = net.gather_round_trip(1000, False, rounds=1)
        many = net.gather_round_trip(1000, False, rounds=8)
        assert many.payload_bytes == one.payload_bytes

    def test_rounds_add_latency(self, net):
        one = net.gather_round_trip(1000, False, rounds=1)
        many = net.gather_round_trip(1000, False, rounds=8)
        assert many.wire_time > one.wire_time
        assert many.messages == 16

    def test_rounds_capped_by_elements(self, net):
        cost = net.gather_round_trip(3, False, rounds=10)
        assert cost.messages == 6  # 3 rounds of request+reply

    def test_rejects_bad_rounds(self, net):
        with pytest.raises(ValueError):
            net.gather_round_trip(10, False, rounds=0)


class TestContention:
    def test_single_stream_no_contention(self, net):
        assert net.contention_factor(1) == 1.0
        assert net.contention_factor(0) == 1.0

    def test_grows_linearly_with_streams(self, net):
        coeff = net.config.nic_contention_coeff
        assert net.contention_factor(4) == pytest.approx(1 + 3 * coeff)
        assert net.contention_factor(8) == pytest.approx(1 + 7 * coeff)

    def test_rejects_negative(self, net):
        with pytest.raises(ValueError):
            net.contention_factor(-1)


class TestCollectiveFormulas:
    def test_barrier_scales_logarithmically(self, net):
        assert net.barrier_time(1) == 0.0
        t2 = net.barrier_time(2)
        t16 = net.barrier_time(16)
        assert t16 == pytest.approx(4 * t2)

    def test_reduce_single_participant_free(self, net):
        assert net.reduce_time(1, 8) == 0.0

    def test_allreduce_is_twice_reduce(self, net):
        assert net.allreduce_time(8, 64) == pytest.approx(2 * net.reduce_time(8, 64))

    def test_allgather_ring_steps(self, net):
        t = net.allgather_time(5, 100)
        assert t == pytest.approx(4 * net.message_time(100, False))

    def test_allgather_single_participant_free(self, net):
        assert net.allgather_time(1, 100) == 0.0

    def test_alltoall_rounds(self, net):
        t = net.alltoall_time(4, 50)
        assert t == pytest.approx(3 * net.message_time(50, False))

    def test_rejects_zero_participants(self, net):
        with pytest.raises(ValueError):
            net.barrier_time(0)


class TestBundleEdgeCases:
    def test_zero_elements_is_zero_cost(self, net):
        assert net.bundle(0, False) is ZERO_COST
        assert net.gather_round_trip(0, False) is ZERO_COST

    def test_single_element_pays_one_message(self, net):
        cfg = net.config
        cost = net.bundle(1, False)
        assert cost.messages == 1
        assert cost.payload_bytes == cfg.element_bytes + cfg.index_bytes
        assert cost.wire_time == pytest.approx(
            cfg.net_alpha + cost.payload_bytes * cfg.net_beta
        )

    def test_payload_exactly_at_bundle_boundary(self, net):
        """A payload of exactly bundle_max_bytes is one message; one
        more element spills into a second."""
        cfg = net.config
        per_elem = cfg.element_bytes + cfg.index_bytes
        assert cfg.bundle_max_bytes % per_elem == 0, "fixture assumption"
        fit = cfg.bundle_max_bytes // per_elem
        assert net.bundle(fit, False).messages == 1
        assert net.bundle(fit + 1, False).messages == 2

    def test_dense_block_skips_index_bytes(self, net):
        cfg = net.config
        cost = net.bundle(10, False, with_index=False)
        assert cost.payload_bytes == 10 * cfg.element_bytes


class TestBundleMonotonicity:
    """bundle() must be monotone in n_elements: more data can never
    cost fewer messages, bytes or seconds."""

    from hypothesis import given as _given, settings as _settings
    from hypothesis import strategies as _st

    @_settings(max_examples=200, deadline=None)
    @_given(
        n=_st.integers(0, 5000),
        extra=_st.integers(1, 500),
        intra=_st.booleans(),
        with_index=_st.booleans(),
    )
    def test_monotone_in_elements(self, n, extra, intra, with_index):
        net = NetworkModel(MachineConfig(n_nodes=4, cores_per_node=4))
        a = net.bundle(n, intra, with_index=with_index)
        b = net.bundle(n + extra, intra, with_index=with_index)
        assert b.messages >= a.messages
        assert b.payload_bytes > a.payload_bytes or n + extra == 0
        assert b.wire_time >= a.wire_time
        assert b.cpu_time >= a.cpu_time
