"""Worker supervision: crash/hang detection, respawn-and-replay
recovery, graceful degradation and the PPM6xx diagnostics.

Every recovery path must preserve the backend's headline contract —
committed arrays, simulated times and traces bitwise-identical to the
inline engine — even while :class:`ProcessChaos` SIGKILLs (or
SIGSTOPs) live worker processes mid-run.  Kernels live at module level
because the backend ships them by pickling.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.apps.graph import hashed_graph, ppm_bfs
from repro.apps.multigrid import build_mg_problem, ppm_mg_solve
from repro.config import manycore, testing as mkconfig
from repro.core import run_ppm
from repro.core.errors import (
    ParallelConfigError,
    SupervisionExhaustedError,
    WorkerDeathError,
)
from repro.machine import Cluster
from repro.obs import PhaseTrace, PoolDegraded, RoundReplay, RunReport, WorkerCrash, WorkerRespawn
from repro.parallel import ProcessChaos, SupervisionPolicy
from repro.parallel.shm import live_ppm_segments
from repro.parallel.supervisor import LAST_SUPERVISION


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


# Real process pools, real kills: a handful of examples with no
# deadline beats hypothesis defaults here (mirrors test_equivalence).
SWEEP = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Module-level kernels
# ----------------------------------------------------------------------

def mixed_kernel(ctx, A, B):
    """Global + node phases, reduce, scan, accumulate, remote reads —
    every construct the replay log must reproduce."""
    n = ctx.global_vp_count
    yield ctx.global_phase
    A[ctx.global_rank] = float(ctx.global_rank)
    h = ctx.reduce(ctx.global_rank + 1, "sum")
    yield ctx.global_phase
    peer = float(A[(ctx.global_rank + 1) % n])
    s = ctx.scan(int(peer) + 1, "sum")
    yield ctx.node_phase
    B[ctx.node_rank % len(B)] = h.value + ctx.node_rank
    yield ctx.global_phase
    A.accumulate(np.array([ctx.global_rank % 3]), np.array([s.value * 0.5]))
    yield ctx.global_phase


def main_mixed(ppm):
    A = ppm.global_shared("A", 16)
    B = ppm.node_shared("B", 8)
    ppm.do(8, mixed_kernel, A, B)
    return A.committed.copy(), B.instance(0).copy(), B.instance(1).copy()


def suicide_kernel(ctx, A):
    yield ctx.global_phase
    if ctx.global_rank == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    A[ctx.global_rank] = 1.0
    yield ctx.global_phase


def main_suicide(ppm):
    A = ppm.global_shared("A", 16)
    ppm.do(8, suicide_kernel, A)
    return A.committed.copy()


def _chaotic(every=2, *, seed=11, sig="kill", window="round", **pol):
    return SupervisionPolicy(
        chaos=ProcessChaos(seed=seed, every=every, signal=sig, window=window),
        **pol,
    )


def _cg(seed, **run_opts):
    prob = build_chimney_problem(6, 6, 4, seed=seed)
    cl = Cluster(manycore(n_nodes=4, cores_per_node=2))
    r, t = ppm_cg_solve(prob, cl, max_iters=6, **run_opts)
    return r.x, t


def _bfs(seed, **run_opts):
    g = hashed_graph(96, degree=4, seed=seed)
    cl = Cluster(manycore(n_nodes=4, cores_per_node=2))
    d, t = ppm_bfs(g, 0, cl, **run_opts)
    return d, t


def _mg(seed, **run_opts):
    prob = build_mg_problem(levels=3, seed=seed)
    cl = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
    u, t = ppm_mg_solve(prob, cl, cycles=2, **run_opts)
    return u, t


APPS = {"cg": _cg, "bfs": _bfs, "mg": _mg}


# ----------------------------------------------------------------------
# Policy validation (PPM601/PPM602)
# ----------------------------------------------------------------------

class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_respawns=-1),
            dict(deadline_base=0.0),
            dict(deadline_per_vp=-0.1),
            dict(degrade="panic"),
        ],
    )
    def test_bad_policy_ppm601(self, kwargs):
        with pytest.raises(ParallelConfigError) as ei:
            SupervisionPolicy(**kwargs)
        assert ei.value.code == "PPM601"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(every=0),
            dict(every=2, signal="term"),
            dict(every=2, window="barrier"),
            dict(),  # no trigger at all
        ],
    )
    def test_bad_chaos_ppm601(self, kwargs):
        with pytest.raises(ParallelConfigError) as ei:
            ProcessChaos(seed=1, **kwargs)
        assert ei.value.code == "PPM601"

    def test_deadline_scales_with_shard(self):
        pol = SupervisionPolicy(deadline_base=2.0, deadline_per_vp=0.5)
        assert pol.round_deadline(0) == 2.0
        assert pol.round_deadline(10) == 7.0


# ----------------------------------------------------------------------
# Crash detection and replay recovery
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_sigkill_recovery_bitwise_identical(self):
        _, ref = run_ppm(main_mixed, _cluster())
        trace = PhaseTrace()
        _, got = run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=_chaotic(every=2), trace=trace,
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert LAST_SUPERVISION["crashes"] > 0
        assert LAST_SUPERVISION["respawns"] > 0
        kinds = {type(ev) for ev in trace.events}
        assert {WorkerCrash, WorkerRespawn, RoundReplay} <= kinds
        assert live_ppm_segments() == []

    def test_sigstop_hang_detected_and_recovered(self):
        # SIGSTOP freezes the worker; a short deadline converts the
        # stall into a "hang", the supervisor hard-kills and replays.
        _, ref = run_ppm(main_mixed, _cluster())
        _, got = run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=_chaotic(every=3, sig="stop",
                                 deadline_base=1.0, deadline_per_vp=0.0),
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert LAST_SUPERVISION["hangs"] > 0
        assert live_ppm_segments() == []

    def test_commit_window_kill_zero_merge(self):
        # Certified CG engages the zero-merge path; killing inside the
        # hold/commit window exercises retained-segment restore.
        x1, t1 = _cg(3)
        x2, t2 = _cg(
            3, executor="process", workers=2,
            supervision=_chaotic(every=3, window="commit"),
        )
        np.testing.assert_array_equal(x1, x2)
        assert t1 == t2
        assert LAST_SUPERVISION["crashes"] > 0
        assert live_ppm_segments() == []

    def test_fault_free_supervision_is_free(self):
        # Supervision with no chaos must not perturb results, and the
        # run report must not grow a supervision section.
        _, ref = run_ppm(main_mixed, _cluster())
        trace = PhaseTrace()
        _, got = run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=SupervisionPolicy(), trace=trace,
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert RunReport.from_trace(trace).supervision is None

    def test_supervision_composes_with_simulated_faults(self):
        from repro.resilience import FaultPlan

        _, ref = run_ppm(
            main_mixed, _cluster(),
            faults=FaultPlan(seed=5).crash(node=1, phase=2),
            checkpoint_every=2,
        )
        _, got = run_ppm(
            main_mixed, _cluster(),
            faults=FaultPlan(seed=5).crash(node=1, phase=2),
            checkpoint_every=2,
            executor="process", workers=2, supervision=_chaotic(every=4),
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert live_ppm_segments() == []


# ----------------------------------------------------------------------
# Unsupervised death: PPM603
# ----------------------------------------------------------------------

class TestWorkerDeath:
    def test_unsupervised_death_ppm603(self):
        with pytest.raises(WorkerDeathError) as ei:
            run_ppm(
                main_suicide, _cluster(), executor="process", workers=2,
            )
        msg = str(ei.value)
        assert ei.value.code == "PPM603"
        # The message names the worker, the failed command and the
        # round so the failure is attributable without supervision.
        assert "worker" in msg and "died" in msg
        assert "'round'" in msg and "round " in msg
        assert "supervision" in msg
        assert live_ppm_segments() == []


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------

class TestDegradation:
    def test_shrink_restarts_with_fewer_workers(self):
        _, ref = run_ppm(main_mixed, _cluster())
        trace = PhaseTrace()
        _, got = run_ppm(
            main_mixed, _cluster(), executor="process", workers=3,
            supervision=_chaotic(every=1, max_respawns=0), trace=trace,
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert LAST_SUPERVISION["degradations"] >= 1
        degr = [ev for ev in trace.events if isinstance(ev, PoolDegraded)]
        assert degr and degr[0].mode == "shrink"
        assert degr[0].workers_to < degr[0].workers_from
        assert live_ppm_segments() == []

    def test_inline_fallback(self):
        _, ref = run_ppm(main_mixed, _cluster())
        _, got = run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=_chaotic(
                every=1, max_respawns=0, degrade="inline"
            ),
        )
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a, b)
        assert LAST_SUPERVISION["degradations"] >= 1
        assert live_ppm_segments() == []

    def test_degrade_error_ppm604(self):
        with pytest.raises(SupervisionExhaustedError) as ei:
            run_ppm(
                main_mixed, _cluster(), executor="process", workers=2,
                supervision=_chaotic(
                    every=1, max_respawns=0, degrade="error"
                ),
            )
        assert ei.value.code == "PPM604"
        assert live_ppm_segments() == []


# ----------------------------------------------------------------------
# Property sweep: the acceptance bar from ISSUE 9 — SIGKILL a worker
# at every k-th round across the Figure-1 applications; the run must
# complete bitwise-identical to inline.
# ----------------------------------------------------------------------

class TestChaosSweep:
    @SWEEP
    @given(
        app=st.sampled_from(sorted(APPS)),
        seed=st.integers(1, 50),
        workers=st.integers(2, 3),
        every=st.integers(2, 5),
    )
    def test_kill_every_kth_round_bitwise(self, app, seed, workers, every):
        ref, t_ref = APPS[app](seed)
        got, t_got = APPS[app](
            seed,
            executor="process",
            workers=workers,
            supervision=_chaotic(every=every, seed=seed),
        )
        assert t_ref == t_got
        np.testing.assert_array_equal(ref, got)
        assert live_ppm_segments() == []


# ----------------------------------------------------------------------
# Observability acceptance: RunReport.supervision
# ----------------------------------------------------------------------

class TestSupervisionReport:
    def test_report_counts_failures_and_replays(self):
        trace = PhaseTrace()
        run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=_chaotic(every=2), trace=trace,
        )
        sup = RunReport.from_trace(trace).supervision
        assert sup is not None
        assert sup.crashes >= 1 and sup.failures >= 1
        assert sup.respawns >= 1
        assert sup.replayed_rounds >= 1
        assert sup.degradations == 0
        assert sup.recovery_host_s > 0.0

    def test_report_round_trips_through_dict(self):
        from repro.obs import format_report, report_to_dict

        trace = PhaseTrace()
        run_ppm(
            main_mixed, _cluster(), executor="process", workers=2,
            supervision=_chaotic(every=2), trace=trace,
        )
        report = RunReport.from_trace(trace)
        d = report_to_dict(report)
        assert d["supervision"]["crashes"] == report.supervision.crashes
        assert d["supervision"]["respawns"] == report.supervision.respawns
        assert "worker failures" in format_report(report)
