"""Semantics of the ``executor="process"`` backend: configuration
validation (PPM5xx), kernel shipping, and feature coverage — multi-do
drivers, kwargs forwarding, node phases, collectives, load balancing
and the sanitizer.

Kernels live at module level because the backend ships them to worker
processes by pickling (locally-defined closures raise ``PPM501``; see
``test_unpicklable_kernel``).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.core.errors import ParallelConfigError
from repro.machine import Cluster


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


# ----------------------------------------------------------------------
# Module-level kernels (picklable by qualified name)
# ----------------------------------------------------------------------

def writer_kernel(ctx, A, scale=1.0):
    yield ctx.global_phase
    A[ctx.global_rank] = ctx.global_rank * scale
    yield ctx.global_phase


def incr_kernel(ctx, A):
    yield ctx.global_phase
    v = float(A[ctx.global_rank])
    A[ctx.global_rank] = v + 1.0
    yield ctx.global_phase


def mixed_kernel(ctx, A, B):
    """Global + node phases, reduce, scan, accumulate, remote reads."""
    n = ctx.global_vp_count
    yield ctx.global_phase
    A[ctx.global_rank] = float(ctx.global_rank)
    h = ctx.reduce(ctx.global_rank + 1, "sum")
    yield ctx.global_phase
    total = h.value
    # Remote read: every VP reads the element its successor wrote.
    peer = float(A[(ctx.global_rank + 1) % n])
    s = ctx.scan(int(peer) + 1, "sum")
    yield ctx.node_phase
    B[ctx.node_rank % len(B)] = total + ctx.node_rank
    yield ctx.global_phase
    A.accumulate(np.array([ctx.global_rank % 3]), np.array([s.value * 0.5]))
    yield ctx.global_phase


def conflict_kernel(ctx, A):
    yield ctx.global_phase
    A[0] = float(ctx.global_rank)  # every rank writes element 0
    yield ctx.global_phase


def main_mixed(ppm):
    A = ppm.global_shared("A", 16)
    B = ppm.node_shared("B", 8)
    ppm.do(8, mixed_kernel, A, B)
    return A.committed.copy(), B.instance(0).copy(), B.instance(1).copy()


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------

class TestConfigErrors:
    def test_unknown_executor_ppm502(self):
        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(main_mixed, _cluster(), executor="threads")
        assert ei.value.code == "PPM502"

    @pytest.mark.parametrize("workers", [0, -3, 1.5, "four"])
    def test_bad_workers_ppm502(self, workers):
        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(main_mixed, _cluster(), executor="process", workers=workers)
        assert ei.value.code == "PPM502"

    def test_workers_ignored_without_process_executor(self):
        # An explicit workers= is validated even for inline runs.
        with pytest.raises(ParallelConfigError):
            run_ppm(main_mixed, _cluster(), workers=0)

    def test_vp_threads_combo_ppm503(self):
        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(
                main_mixed, _cluster(), executor="process",
                vp_executor="threads",
            )
        assert ei.value.code == "PPM503"

    def test_supervision_requires_process_ppm602(self):
        from repro.parallel import SupervisionPolicy

        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(main_mixed, _cluster(), supervision=SupervisionPolicy())
        assert ei.value.code == "PPM602"

    def test_resilience_now_supported(self):
        # Lifted restriction (formerly PPM503): the resilience
        # subsystem composes with the process executor — simulated
        # faults and checkpoints run parent-side, and recovery
        # re-executes the driver, which re-ships the kernel to a fresh
        # worker pool.
        from repro.resilience import FaultPlan

        plan = lambda: FaultPlan(seed=5).crash(node=1, phase=2)  # noqa: E731
        _, r1 = run_ppm(
            main_mixed, _cluster(), faults=plan(), checkpoint_every=2,
        )
        _, r2 = run_ppm(
            main_mixed, _cluster(), faults=plan(), checkpoint_every=2,
            executor="process", workers=2,
        )
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)

    def test_sanitize_auto_now_supported(self):
        # Lifted restriction: workers rebuild the conflict-freedom
        # certificate locally, so sanitize="auto" runs under process.
        _, r1 = run_ppm(main_mixed, _cluster(), sanitize="auto")
        _, r2 = run_ppm(
            main_mixed, _cluster(), sanitize="auto",
            executor="process", workers=2,
        )
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)

    def test_certified_overlap_now_supported(self):
        ppm1, r1 = run_ppm(main_mixed, _cluster(certified_overlap_fraction=0.5))
        ppm2, r2 = run_ppm(
            main_mixed,
            _cluster(certified_overlap_fraction=0.5),
            executor="process",
            workers=2,
        )
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)
        assert ppm1.elapsed == ppm2.elapsed

    def test_unpicklable_kernel_ppm501(self):
        lock = threading.Lock()

        def main(ppm):
            def vp(ctx):  # local closure: not picklable
                _ = lock
                yield ctx.global_phase

            ppm.do(4, vp)

        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(main, _cluster(), executor="process", workers=2)
        assert ei.value.code == "PPM501"


# ----------------------------------------------------------------------
# Feature coverage vs the inline executor
# ----------------------------------------------------------------------

def main_multi_do(ppm):
    A = ppm.global_shared("A", 32)
    ppm.do(16, writer_kernel, A, scale=2.0)  # 2 nodes x 16 VPs
    ppm.do(16, incr_kernel, A)
    return A.committed.copy()


class TestSemantics:
    def test_mixed_kernel_matches_inline(self):
        _, r_inline = run_ppm(main_mixed, _cluster())
        _, r_proc = run_ppm(
            main_mixed, _cluster(), executor="process", workers=3
        )
        for a, b in zip(r_inline, r_proc):
            np.testing.assert_array_equal(a, b)

    def test_multi_do_reuses_pool(self):
        ppm1, r1 = run_ppm(main_multi_do, _cluster())
        ppm2, r2 = run_ppm(
            main_multi_do, _cluster(), executor="process", workers=2
        )
        np.testing.assert_array_equal(r1, r2)
        assert ppm1.elapsed == ppm2.elapsed

    def test_more_workers_than_vps(self):
        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(2, writer_kernel, A)
            return A.committed.copy()

        _, r1 = run_ppm(main, _cluster())
        _, r2 = run_ppm(main, _cluster(), executor="process", workers=6)
        np.testing.assert_array_equal(r1, r2)

    def test_single_worker(self):
        _, r1 = run_ppm(main_mixed, _cluster())
        _, r2 = run_ppm(main_mixed, _cluster(), executor="process", workers=1)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)

    def test_load_balancing_matches_inline(self):
        def cl():
            return _cluster(load_balancing=True)

        ppm1, r1 = run_ppm(main_mixed, cl())
        ppm2, r2 = run_ppm(main_mixed, cl(), executor="process", workers=3)
        for a, b in zip(r1, r2):
            np.testing.assert_array_equal(a, b)
        assert ppm1.elapsed == ppm2.elapsed

    def test_sanitizer_warn_matches_inline(self):
        def main(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do(4, conflict_kernel, A)
            return [str(d) for d in ppm.diagnostics]

        _, d_inline = run_ppm(main, _cluster(), sanitize="warn")
        _, d_proc = run_ppm(
            main, _cluster(), sanitize="warn", executor="process", workers=2
        )
        assert d_inline and d_inline == d_proc

    def test_default_workers_clamped(self):
        from repro.parallel.backend import default_workers

        assert 2 <= default_workers() <= 8
