"""The certified zero-merge commit path of the process backend.

When a ``do``'s kernel carries a conflict-freedom certificate, workers
commit their shard's buffered operations directly into the shared
segments and reply with a fixed-size digest — no write-operation
records ever cross the pipe.  These tests pin down the contract:

* **byte count** — a certified CG run ships *zero* record bytes: every
  round holds, every commit group resolves ``local``, no reply carries
  an ``"ops"`` payload, and each commit reply pickles to a few hundred
  bytes regardless of problem size;
* **equivalence** — the three engines (inline, process zero-merge,
  process with ``zero_merge=False`` record-replay) produce
  bitwise-identical arrays, identical simulated times and identical
  traces (modulo ``worker_span``/``zero_merge_commit`` interleaving),
  property-swept over seeds and worker counts on the Figure-1
  workloads;
* **digest verification** — with ``PPM_ZERO_MERGE_VERIFY`` set the
  parent recomputes every committed-rows checksum, and a mismatch
  raises;
* **plan cache** — the worker-side commit-plan cache converges to a
  high hit rate on iterative solvers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.apps.graph import hashed_graph, ppm_bfs
from repro.apps.multigrid import build_mg_problem, ppm_mg_solve
from repro.config import manycore, testing as mkconfig
from repro.core import run_ppm
from repro.machine import Cluster
from repro.obs import PhaseTrace
from repro.parallel import backend as backend_mod
from repro.parallel.pool import WorkerPool

SWEEP = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _cg_cluster():
    return Cluster(manycore(n_nodes=4, cores_per_node=2))


@pytest.fixture
def captured_roundtrips(monkeypatch):
    """Record every pool round-trip as ``(tag, payload, replies)``."""
    captured = []
    real = WorkerPool.roundtrip

    def wrapped(self, tag, payload, *, per_worker=None):
        replies = real(self, tag, payload, per_worker=per_worker)
        captured.append((tag, payload, replies))
        return replies

    monkeypatch.setattr(WorkerPool, "roundtrip", wrapped)
    return captured


# ----------------------------------------------------------------------
# Byte count: certified CG ships no write-operation records
# ----------------------------------------------------------------------

class TestZeroRecordBytes:
    def test_certified_cg_ships_no_ops(self, captured_roundtrips):
        prob = build_chimney_problem(6, 6, 4, seed=7)
        ppm_cg_solve(
            prob, _cg_cluster(), max_iters=6, executor="process", workers=2
        )
        rounds = [c for c in captured_roundtrips if c[0] == "round"]
        commits = [c for c in captured_roundtrips if c[0] == "commit"]
        assert rounds and commits

        # Every round of the certified solve holds its operations
        # worker-side, and every commit group resolves to a local
        # (in-place) commit.
        assert all(p["mode"] == "hold" for _t, p, _r in rounds)
        assert all(
            decision == "local"
            for _t, p, _r in commits
            for _key, decision in p["groups"]
        )

        # Zero record bytes on the pipe: no reply anywhere carries an
        # operation stream.
        for _tag, _payload, replies in rounds:
            for rep in replies:
                if rep is None:
                    continue
                assert "ops" not in rep.get("report", {})
                for _node_id, report, _flags in rep.get("nodes", ()):
                    assert "ops" not in report
        for _tag, _payload, replies in commits:
            for rep in replies:
                if rep is None:
                    continue
                for _key, digest in rep["groups"]:
                    assert "ops" not in digest

        # The reply is a fixed-size digest: a few hundred bytes however
        # large the vectors are (record-shipping replies grow with the
        # operation count).
        sizes = [
            len(pickle.dumps(rep))
            for _t, _p, replies in commits
            for rep in replies
            if rep is not None
        ]
        assert max(sizes) < 512, max(sizes)

        # And work actually happened through the zero-merge path.
        stats = backend_mod.LAST_RUN_STATS
        assert stats["zm_rounds"] > 0
        assert stats["zm_ops"] > 0
        assert stats["bytes_avoided"] > 0

    def test_zero_merge_off_ships_ops(self, captured_roundtrips):
        # The escape hatch restores the record-shipping protocol.
        prob = build_chimney_problem(6, 6, 4, seed=7)
        ppm_cg_solve(
            prob, _cg_cluster(), max_iters=3,
            executor="process", workers=2, zero_merge=False,
        )
        rounds = [c for c in captured_roundtrips if c[0] == "round"]
        commits = [c for c in captured_roundtrips if c[0] == "commit"]
        assert rounds and not commits
        assert all(p["mode"] == "ship" for _t, p, _r in rounds)
        assert any(
            "ops" in rep.get("report", {})
            for _t, _p, replies in rounds
            for rep in replies
            if rep is not None
        )


# ----------------------------------------------------------------------
# Three-engine equivalence
# ----------------------------------------------------------------------

class TestThreeEngineEquivalence:
    """Inline, process zero-merge and process record-replay must agree
    bitwise on arrays and exactly on simulated time."""

    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_cg(self, seed, workers):
        prob = build_chimney_problem(6, 6, 4, seed=seed)
        r1, t1 = ppm_cg_solve(prob, _cg_cluster(), max_iters=8)
        r2, t2 = ppm_cg_solve(
            prob, _cg_cluster(), max_iters=8,
            executor="process", workers=workers,
        )
        r3, t3 = ppm_cg_solve(
            prob, _cg_cluster(), max_iters=8,
            executor="process", workers=workers, zero_merge=False,
        )
        assert t1 == t2 == t3
        np.testing.assert_array_equal(r1.x, r2.x)
        np.testing.assert_array_equal(r1.x, r3.x)

    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_bfs(self, seed, workers):
        g = hashed_graph(128, degree=5, seed=seed)
        d1, t1 = ppm_bfs(g, 0, _cg_cluster())
        d2, t2 = ppm_bfs(
            g, 0, _cg_cluster(), executor="process", workers=workers
        )
        d3, t3 = ppm_bfs(
            g, 0, _cg_cluster(),
            executor="process", workers=workers, zero_merge=False,
        )
        assert t1 == t2 == t3
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(d1, d3)

    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_multigrid(self, seed, workers):
        prob = build_mg_problem(levels=3, seed=seed)
        cl = lambda: Cluster(mkconfig(n_nodes=2, cores_per_node=2))  # noqa: E731
        u1, t1 = ppm_mg_solve(prob, cl(), cycles=2)
        u2, t2 = ppm_mg_solve(
            prob, cl(), cycles=2, executor="process", workers=workers
        )
        u3, t3 = ppm_mg_solve(
            prob, cl(), cycles=2,
            executor="process", workers=workers, zero_merge=False,
        )
        assert t1 == t2 == t3
        np.testing.assert_array_equal(u1, u2)
        np.testing.assert_array_equal(u1, u3)

    def test_traces_identical_modulo_process_events(self):
        prob = build_chimney_problem(6, 6, 4, seed=3)
        traces = [PhaseTrace() for _ in range(3)]
        ppm_cg_solve(prob, _cg_cluster(), max_iters=4, trace=traces[0])
        ppm_cg_solve(
            prob, _cg_cluster(), max_iters=4, trace=traces[1],
            executor="process", workers=2,
        )
        ppm_cg_solve(
            prob, _cg_cluster(), max_iters=4, trace=traces[2],
            executor="process", workers=2, zero_merge=False,
        )
        skip = ("worker_span", "zero_merge_commit")
        streams = [
            [e.to_dict() for e in tr.events if e.kind not in skip]
            for tr in traces
        ]
        assert streams[0] == streams[1] == streams[2]


# ----------------------------------------------------------------------
# Digest verification
# ----------------------------------------------------------------------

class TestDigestVerify:
    def test_verified_run_passes(self, monkeypatch):
        monkeypatch.setenv("PPM_ZERO_MERGE_VERIFY", "1")
        prob = build_chimney_problem(6, 6, 4, seed=11)
        r1, t1 = ppm_cg_solve(prob, _cg_cluster(), max_iters=6)
        r2, t2 = ppm_cg_solve(
            prob, _cg_cluster(), max_iters=6, executor="process", workers=2
        )
        assert t1 == t2
        np.testing.assert_array_equal(r1.x, r2.x)
        assert backend_mod.LAST_RUN_STATS["zm_rounds"] > 0

    def test_mismatch_raises(self):
        from repro.parallel.backend import ProcessBackend

        class FakeShared:
            _data = np.arange(8.0)

        class FakeRT:
            shared_registry = {"A": FakeShared()}

        be = ProcessBackend.__new__(ProcessBackend)
        be.rt = FakeRT()
        be._arrays = [{}]
        rows = np.array([0, 3, 5])
        digest = {"checksums": [("A", None, 0xDEADBEEF, ("n", 1, rows))]}
        with pytest.raises(RuntimeError, match="digest mismatch"):
            be._verify_digest(0, digest)


# ----------------------------------------------------------------------
# Commit-plan cache
# ----------------------------------------------------------------------

class TestPlanCache:
    def test_iterative_solver_converges_to_hits(self):
        prob = build_chimney_problem(6, 6, 4, seed=7)
        ppm_cg_solve(
            prob, _cg_cluster(), max_iters=12, executor="process", workers=2
        )
        stats = backend_mod.LAST_RUN_STATS
        hits, misses = stats["plan_hits"], stats["plan_misses"]
        assert hits + misses > 0
        rate = hits / (hits + misses)
        # Each distinct access pattern compiles once per worker and
        # hits on every later round; 12 CG iterations make warm-up
        # noise small.
        assert rate >= 0.85, (hits, misses)
