"""Teardown and fault paths of the process backend: crashing kernels,
worker death, unserialisable replies and interrupts must all propagate
a useful error AND leave no shared-memory segments behind (the
``PPM.close()`` contract; see docs/PARALLEL.md).
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.core.errors import (
    ParallelConfigError,
    ParallelExecutionError,
    VpProgramError,
)
from repro.machine import Cluster
from repro.parallel.shm import live_ppm_segments


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


# -- module-level kernels (shipped to workers by pickle) ---------------

def crashing_kernel(ctx, A):
    yield ctx.global_phase
    if ctx.global_rank == 3:
        raise RuntimeError("kaboom rank 3")
    A[ctx.global_rank] = 1.0
    yield ctx.global_phase


def interrupting_kernel(ctx, A):
    yield ctx.global_phase
    if ctx.global_rank == 2:
        raise KeyboardInterrupt
    yield ctx.global_phase


def dying_kernel(ctx, A):
    yield ctx.global_phase
    if ctx.global_rank == 1:
        os._exit(17)  # hard kill: no exception ships back
    yield ctx.global_phase


def unpicklable_reduce_kernel(ctx, A):
    yield ctx.global_phase
    # A thread lock cannot pickle, so the worker's round reply (which
    # carries collective contributions) cannot serialise.
    ctx.reduce(threading.Lock(), "sum")
    yield ctx.global_phase


def main_with(kernel):
    def main(ppm):
        A = ppm.global_shared("A", 16)
        ppm.do(8, kernel, A)
        return A.committed.copy()

    return main


class TestCrashTeardown:
    def test_vp_error_propagates_and_no_leak(self):
        with pytest.raises(VpProgramError) as ei:
            run_ppm(
                main_with(crashing_kernel),
                _cluster(),
                executor="process",
                workers=2,
            )
        assert "kaboom" in str(ei.value)
        assert live_ppm_segments() == []

    def test_vp_error_matches_inline_type(self):
        with pytest.raises(VpProgramError) as inline_err:
            run_ppm(main_with(crashing_kernel), _cluster())
        with pytest.raises(VpProgramError) as proc_err:
            run_ppm(
                main_with(crashing_kernel),
                _cluster(),
                executor="process",
                workers=2,
            )
        assert type(inline_err.value) is type(proc_err.value)

    def test_keyboard_interrupt_propagates_and_no_leak(self):
        with pytest.raises(KeyboardInterrupt):
            run_ppm(
                main_with(interrupting_kernel),
                _cluster(),
                executor="process",
                workers=2,
            )
        assert live_ppm_segments() == []

    def test_dead_worker_raises_and_no_leak(self):
        with pytest.raises(ParallelExecutionError) as ei:
            run_ppm(
                main_with(dying_kernel),
                _cluster(),
                executor="process",
                workers=2,
            )
        assert "died" in str(ei.value)
        assert live_ppm_segments() == []

    def test_unserialisable_reply_ppm504_and_no_leak(self):
        with pytest.raises(ParallelConfigError) as ei:
            run_ppm(
                main_with(unpicklable_reduce_kernel),
                _cluster(),
                executor="process",
                workers=2,
            )
        assert ei.value.code == "PPM504"
        assert live_ppm_segments() == []

    def test_clean_run_leaves_no_segments(self):
        def ok_kernel_main(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do(4, clean_kernel, A)
            return A.committed.copy()

        _, r = run_ppm(ok_kernel_main, _cluster(), executor="process", workers=2)
        assert live_ppm_segments() == []
        np.testing.assert_array_equal(r, np.arange(8, dtype=float))


def clean_kernel(ctx, A):
    yield ctx.global_phase
    A[ctx.global_rank] = float(ctx.global_rank)
    yield ctx.global_phase


def write_then_interrupt_kernel(ctx, A):
    """Commits A[rank] = rank + 1 at the first barrier, then buffers a
    poison write that an interrupt must prevent from ever committing."""
    yield ctx.global_phase
    A[ctx.global_rank] = float(ctx.global_rank + 1)
    yield ctx.global_phase  # barrier: the writes above commit here
    A[ctx.global_rank] = 99.0  # buffered only — must never commit
    if ctx.global_rank == 2:
        raise KeyboardInterrupt
    yield ctx.global_phase


# ----------------------------------------------------------------------
# Interrupt mid-round: commit atomicity and orphan-free teardown
# ----------------------------------------------------------------------

def _no_child_processes(deadline=5.0):
    import multiprocessing
    import time

    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if not multiprocessing.active_children():  # also reaps zombies
            return True
        time.sleep(0.05)
    return False


class TestInterruptMidRound:
    """A ctrl-C arriving mid-round must behave like a phase-boundary
    cut: earlier barriers' commits stand, the interrupted round's
    buffered writes vanish, every worker process is reaped and no
    ``/dev/shm`` segment survives."""

    def _observed(self, **run_opts):
        boxes = []

        def main(ppm):
            A = ppm.global_shared("A", 16)
            try:
                ppm.do(8, write_then_interrupt_kernel, A)
            finally:
                boxes.append(A.committed.copy())

        with pytest.raises(KeyboardInterrupt):
            run_ppm(main, _cluster(), **run_opts)
        return boxes[0]

    def test_no_partial_commit_matches_inline(self):
        inline = self._observed()
        proc = self._observed(executor="process", workers=2)
        np.testing.assert_array_equal(inline, proc)
        # The first barrier's writes committed; the poisoned round's
        # buffered 99s did not.
        np.testing.assert_array_equal(
            proc[:8], np.arange(1.0, 9.0)
        )
        assert not (proc == 99.0).any()
        assert live_ppm_segments() == []

    def test_no_orphaned_children_or_segments(self):
        self._observed(executor="process", workers=3)
        assert _no_child_processes()
        assert live_ppm_segments() == []

    def test_interrupt_under_supervision_not_retried(self):
        # A KeyboardInterrupt ships back as an ordinary exception
        # reply: the supervisor must not classify it as a crash and
        # burn the respawn budget replaying the interrupted round.
        from repro.parallel import SupervisionPolicy
        from repro.parallel.supervisor import LAST_SUPERVISION

        proc = self._observed(
            executor="process", workers=2,
            supervision=SupervisionPolicy(),
        )
        assert not (proc == 99.0).any()
        assert LAST_SUPERVISION["crashes"] == 0
        assert LAST_SUPERVISION["respawns"] == 0
        assert _no_child_processes()
        assert live_ppm_segments() == []


# ----------------------------------------------------------------------
# Idempotent segment release
# ----------------------------------------------------------------------

class TestIdempotentRelease:
    """Every registry release path — retire-on-swap, explicit
    ``close()``, the ``weakref.finalize`` backstop — must unlink each
    segment exactly once, however they overlap.  A double unlink used
    to skip the resource tracker's deregistration and surface as a
    spurious leaked-``/dev/shm`` warning at interpreter shutdown."""

    @pytest.fixture
    def unlink_counts(self, monkeypatch):
        from multiprocessing import shared_memory

        counts: dict[str, int] = {}
        real = shared_memory.SharedMemory.unlink

        def counting(segment):
            counts[segment.name] = counts.get(segment.name, 0) + 1
            return real(segment)

        monkeypatch.setattr(shared_memory.SharedMemory, "unlink", counting)
        return counts

    def test_close_then_backstop_unlinks_each_segment_once(self, unlink_counts):
        from repro.parallel.shm import ShmRegistry, _unlink_once

        reg = ShmRegistry()
        reg.allocate("A", None, (8,), np.float64, 0.0)
        reg.allocate("B", 0, (4,), np.float64, 1.0)
        reg.swap("A", None)  # retires A's original segment on the way
        segments = [b.segment for b in reg._blocks.values()]
        reg.close()
        reg.close()  # an explicit double close is a no-op
        for segment in segments:
            _unlink_once(segment)  # the finalize backstop re-reaching it
        # Three segments ever existed: A original, A swapped, B.
        assert len(unlink_counts) == 3
        assert all(n == 1 for n in unlink_counts.values()), unlink_counts
        assert live_ppm_segments() == []

    def test_backstop_then_close(self, unlink_counts):
        from repro.parallel.shm import ShmRegistry

        reg = ShmRegistry()
        reg.allocate("A", None, (8,), np.float64, 0.0)
        reg.allocate("B", 1, (4,), np.float64, 2.0)
        reg._finalizer()  # backstop fires first (interpreter teardown)
        reg.close()  # explicit close afterwards must not re-unlink
        assert len(unlink_counts) == 2
        assert all(n == 1 for n in unlink_counts.values()), unlink_counts
        assert live_ppm_segments() == []
