"""Bitwise process-vs-inline equivalence, property-swept.

The backend's headline contract: for any kernel, seed and worker
count, ``executor="process"`` commits bitwise-identical shared arrays
and reports the identical simulated time as the inline executor.
Hypothesis sweeps seeds and worker counts over the three Figure-1
workloads (CG, BFS, multigrid) and a synthetic kernel exercising every
recorded construct.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.apps.graph import hashed_graph, ppm_bfs
from repro.apps.multigrid import build_mg_problem, ppm_mg_solve
from repro.config import manycore, testing as mkconfig
from repro.core import run_ppm
from repro.machine import Cluster
from repro.parallel.shm import live_ppm_segments

# Process pools fork real processes; a handful of examples with
# generous deadlines beats hypothesis defaults here.
SWEEP = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def synthetic_kernel(ctx, A, B, seed):
    """Touches every recorded construct: global/node phases, latency
    phases, remote reads, writes, accumulates, reduce and scan."""
    rng = np.random.default_rng(seed * 1000 + ctx.global_rank)
    n = len(A)
    yield ctx.global_phase
    A[ctx.global_rank % n] = float(rng.integers(0, 100))
    h = ctx.reduce(float(rng.random()), "max")
    yield ctx.phase("global", latency_rounds=2)
    peer = float(A[(ctx.global_rank * 7 + 3) % n])
    s = ctx.scan(int(peer) % 5 + 1, "sum")
    ctx.work(10.0 * (ctx.global_rank % 4))
    yield ctx.node_phase
    B[ctx.node_rank % len(B)] = h.value + ctx.node_id
    yield ctx.global_phase
    rows = rng.integers(0, n, size=3)
    A.accumulate(rows, np.full(3, float(s.value)))
    yield ctx.global_phase


def synthetic_main(ppm, seed):
    A = ppm.global_shared("A", 24)
    B = ppm.node_shared("B", 6)
    ppm.do(6, synthetic_kernel, A, B, seed)
    insts = [B.instance(i).copy() for i in range(ppm.node_count)]
    return ppm.elapsed, A.committed.copy(), insts


class TestSyntheticEquivalence:
    @SWEEP
    @given(seed=st.integers(0, 10_000), workers=st.integers(1, 5))
    def test_bitwise_identical(self, seed, workers):
        cl = lambda: Cluster(mkconfig(n_nodes=3, cores_per_node=2))  # noqa: E731
        _, (t1, a1, b1) = run_ppm(synthetic_main, cl(), seed)
        _, (t2, a2, b2) = run_ppm(
            synthetic_main, cl(), seed, executor="process", workers=workers
        )
        assert t1 == t2
        np.testing.assert_array_equal(a1, a2)
        for x, y in zip(b1, b2):
            np.testing.assert_array_equal(x, y)
        assert live_ppm_segments() == []


class TestAppEquivalence:
    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_cg(self, seed, workers):
        prob = build_chimney_problem(6, 6, 4, seed=seed)
        cl = lambda: Cluster(manycore(n_nodes=4, cores_per_node=2))  # noqa: E731
        r1, t1 = ppm_cg_solve(prob, cl(), max_iters=8)
        r2, t2 = ppm_cg_solve(
            prob, cl(), max_iters=8, executor="process", workers=workers
        )
        assert t1 == t2
        np.testing.assert_array_equal(r1.x, r2.x)

    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_bfs(self, seed, workers):
        g = hashed_graph(128, degree=5, seed=seed)
        cl = lambda: Cluster(manycore(n_nodes=4, cores_per_node=2))  # noqa: E731
        d1, t1 = ppm_bfs(g, 0, cl())
        d2, t2 = ppm_bfs(g, 0, cl(), executor="process", workers=workers)
        assert t1 == t2
        np.testing.assert_array_equal(d1, d2)

    @SWEEP
    @given(seed=st.integers(1, 50), workers=st.integers(2, 4))
    def test_multigrid(self, seed, workers):
        prob = build_mg_problem(levels=3, seed=seed)
        cl = lambda: Cluster(mkconfig(n_nodes=2, cores_per_node=2))  # noqa: E731
        u1, t1 = ppm_mg_solve(prob, cl(), cycles=2)
        u2, t2 = ppm_mg_solve(
            prob, cl(), cycles=2, executor="process", workers=workers
        )
        assert t1 == t2
        np.testing.assert_array_equal(u1, u2)
