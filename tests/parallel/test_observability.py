"""Tracing under the process backend: the event stream must equal the
inline stream exactly, plus interleaved ``WorkerSpan`` and
``ZeroMergeCommit`` events that the ``RunReport`` worker-utilization
table and zero-merge summary aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.machine import Cluster
from repro.obs import PhaseTrace, RunReport, format_report, report_to_dict


def _cluster():
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2))


def traced_kernel(ctx, A):
    yield ctx.global_phase
    A[ctx.global_rank] = float(ctx.global_rank)
    h = ctx.reduce(1, "sum")
    yield ctx.node_phase
    ctx.work(100.0 * h.value)
    yield ctx.global_phase
    _ = A[(ctx.global_rank + 1) % len(A)]
    yield ctx.global_phase


def traced_main(ppm):
    A = ppm.global_shared("A", 8)
    ppm.do(4, traced_kernel, A)
    return A.committed.copy()


class TestTraceEquivalence:
    def test_event_stream_identical_modulo_worker_spans(self):
        tr1, tr2 = PhaseTrace(), PhaseTrace()
        _, r1 = run_ppm(traced_main, _cluster(), trace=tr1)
        _, r2 = run_ppm(
            traced_main, _cluster(), trace=tr2, executor="process", workers=2
        )
        np.testing.assert_array_equal(r1, r2)
        inline = [e.to_dict() for e in tr1.events]
        proc = [
            e.to_dict()
            for e in tr2.events
            if e.kind not in ("worker_span", "zero_merge_commit")
        ]
        assert inline == proc

    def test_worker_spans_emitted(self):
        tr = PhaseTrace()
        run_ppm(traced_main, _cluster(), trace=tr, executor="process", workers=2)
        spans = list(tr.by_kind("worker_span"))
        assert spans, "process backend must emit WorkerSpan events"
        assert {s.worker for s in spans} == {0, 1}
        assert all(s.host_s >= 0.0 for s in spans)
        # Every VP advance is attributed to exactly one worker span.
        vp_events = sum(1 for e in tr.events if e.kind == "vp_scheduled")
        assert sum(s.vps for s in spans) == vp_events

    def test_run_report_worker_table(self):
        tr = PhaseTrace()
        run_ppm(traced_main, _cluster(), trace=tr, executor="process", workers=2)
        rep = RunReport.from_trace(tr)
        assert rep.workers is not None and len(rep.workers) == 2
        for w in rep.workers:
            assert w.rounds > 0
            assert 0.0 <= w.utilization <= 1.0
        assert "worker utilization" in format_report(rep)
        assert "workers" in report_to_dict(rep)

    def test_inline_report_has_no_worker_table(self):
        tr = PhaseTrace()
        run_ppm(traced_main, _cluster(), trace=tr)
        rep = RunReport.from_trace(tr)
        assert rep.workers is None
        assert "worker utilization" not in format_report(rep)
        assert "workers" not in report_to_dict(rep)

    def test_worker_span_round_trips_through_trace_file(self, tmp_path):
        from repro.obs import load_trace, save_trace

        tr = PhaseTrace()
        run_ppm(traced_main, _cluster(), trace=tr, executor="process", workers=2)
        path = tmp_path / "proc.trace.json"
        save_trace(tr, str(path))
        loaded = load_trace(str(path))
        assert [e.to_dict() for e in loaded.events] == [
            e.to_dict() for e in tr.events
        ]
