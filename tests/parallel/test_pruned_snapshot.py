"""``snapshot="pruned"`` equivalence, property-swept.

The pruning contract: feeding liveness certificates to the snapshot
engine (and the process backend's shm swap-on-commit) may skip copies
only for arrays proven unread through stale views — so for any seed,
engine and worker count, committed arrays and simulated times stay
bitwise-identical to the default full-copy protocol.  Hypothesis
sweeps seeds and engines over the three Figure-1 workloads (CG, BFS,
multigrid); the savings themselves are asserted via the trace rollup.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.apps.graph import hashed_graph, ppm_bfs
from repro.apps.multigrid import build_mg_problem, ppm_mg_solve
from repro.config import manycore, testing as mkconfig
from repro.machine import Cluster
from repro.obs import PhaseTrace, RunReport
from repro.parallel.shm import live_ppm_segments

SWEEP = settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: The three commit engines pruning must not perturb: inline,
#: process with record-replay merge, process with zero-merge commit.
ENGINES = st.sampled_from(
    (
        {},
        {"executor": "process", "workers": 2, "zero_merge": False},
        {"executor": "process", "workers": 2, "zero_merge": True},
    )
)


class TestPrunedEquivalence:
    @SWEEP
    @given(seed=st.integers(1, 50), engine=ENGINES)
    def test_cg(self, seed, engine):
        prob = build_chimney_problem(6, 6, 4, seed=seed)
        cl = lambda: Cluster(manycore(n_nodes=4, cores_per_node=2))  # noqa: E731
        r1, t1 = ppm_cg_solve(prob, cl(), max_iters=8)
        r2, t2 = ppm_cg_solve(
            prob, cl(), max_iters=8, snapshot="pruned", **engine
        )
        assert t1 == t2
        np.testing.assert_array_equal(r1.x, r2.x)
        assert live_ppm_segments() == []

    @SWEEP
    @given(seed=st.integers(1, 50), engine=ENGINES)
    def test_bfs(self, seed, engine):
        g = hashed_graph(128, degree=5, seed=seed)
        cl = lambda: Cluster(manycore(n_nodes=4, cores_per_node=2))  # noqa: E731
        d1, t1 = ppm_bfs(g, 0, cl())
        d2, t2 = ppm_bfs(g, 0, cl(), snapshot="pruned", **engine)
        assert t1 == t2
        np.testing.assert_array_equal(d1, d2)
        assert live_ppm_segments() == []

    @SWEEP
    @given(seed=st.integers(1, 50), engine=ENGINES)
    def test_multigrid(self, seed, engine):
        prob = build_mg_problem(levels=3, seed=seed)
        cl = lambda: Cluster(mkconfig(n_nodes=2, cores_per_node=2))  # noqa: E731
        u1, t1 = ppm_mg_solve(prob, cl(), cycles=2)
        u2, t2 = ppm_mg_solve(
            prob, cl(), cycles=2, snapshot="pruned", **engine
        )
        assert t1 == t2
        np.testing.assert_array_equal(u1, u2)
        assert live_ppm_segments() == []


class TestPruningIsObservable:
    def test_cg_reports_bytes_avoided(self):
        prob = build_chimney_problem(6, 6, 4, seed=3)
        cl = Cluster(manycore(n_nodes=4, cores_per_node=2))
        trace = PhaseTrace()
        ppm_cg_solve(prob, cl, max_iters=8, snapshot="pruned", trace=trace)
        pruning = RunReport.from_trace(trace).snapshot_pruning
        assert pruning is not None
        assert pruning.commits > 0 and pruning.bytes_avoided > 0

    def test_full_snapshot_reports_nothing(self):
        prob = build_chimney_problem(6, 6, 4, seed=3)
        cl = Cluster(manycore(n_nodes=4, cores_per_node=2))
        trace = PhaseTrace()
        ppm_cg_solve(prob, cl, max_iters=8, trace=trace)
        assert RunReport.from_trace(trace).snapshot_pruning is None
