"""Tests for PPM phase collectives (reduce / parallel prefix)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.collectives import CollectiveHandle, CollectiveSlot
from repro.core.errors import CollectiveUsageError, PpmError
from repro.machine import Cluster


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


class TestHandle:
    def test_value_before_commit_raises(self):
        h = CollectiveHandle("reduce")
        assert not h.ready
        with pytest.raises(CollectiveUsageError, match="before its phase"):
            h.value

    def test_value_after_resolve(self):
        h = CollectiveHandle("reduce")
        h._resolve(42)
        assert h.ready
        assert h.value == 42


class TestSlot:
    def test_reduce_in_rank_order(self):
        slot = CollectiveSlot("reduce", "sum")
        handles = [slot.add(r, 10.0 ** r) for r in (2, 0, 1)]
        slot.resolve()
        assert all(h.value == 111.0 for h in handles)

    def test_scan_inclusive_prefix(self):
        slot = CollectiveSlot("scan", "sum")
        h2 = slot.add(2, 3)
        h0 = slot.add(0, 1)
        h1 = slot.add(1, 2)
        slot.resolve()
        assert (h0.value, h1.value, h2.value) == (1, 3, 6)

    def test_empty_slot_resolves_to_nothing(self):
        assert CollectiveSlot("reduce", "sum").resolve() == 0

    def test_bad_kind(self):
        with pytest.raises(PpmError):
            CollectiveSlot("bcast", "sum")


class TestInPhase:
    def test_reduce_spans_all_nodes(self):
        @ppm_function
        def kernel(ctx, out):
            yield ctx.global_phase
            h = ctx.reduce(ctx.global_rank + 1, "sum")
            yield ctx.global_phase
            out[ctx.global_rank] = float(h.value)

        def main(ppm):
            out = ppm.global_shared("out", 4)
            ppm.do(2, kernel, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert (out == 10.0).all()

    def test_scan_matches_global_rank_order(self):
        @ppm_function
        def kernel(ctx, out):
            yield ctx.global_phase
            h = ctx.scan(1, "sum")
            yield ctx.global_phase
            out[ctx.global_rank] = float(h.value)

        def main(ppm):
            out = ppm.global_shared("out", 6)
            ppm.do(3, kernel, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert out.tolist() == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_value_inside_same_phase_raises(self):
        @ppm_function
        def kernel(ctx):
            yield ctx.global_phase
            h = ctx.reduce(1.0)
            _ = h.value  # too early

        def main(ppm):
            ppm.do(1, kernel)

        with pytest.raises(PpmError, match="before its phase"):
            run_ppm(main, _cluster())

    def test_multiple_collectives_match_by_call_order(self):
        @ppm_function
        def kernel(ctx, out):
            yield ctx.global_phase
            h_sum = ctx.reduce(1, "sum")
            h_max = ctx.reduce(ctx.global_rank, "max")
            yield ctx.global_phase
            if ctx.global_rank == 0:
                out[0] = float(h_sum.value)
                out[1] = float(h_max.value)

        def main(ppm):
            out = ppm.global_shared("out", 2)
            ppm.do(2, kernel, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert out.tolist() == [4.0, 3.0]

    def test_partial_participation(self):
        """Only even-ranked VPs contribute; the reduction spans just
        the contributors."""

        @ppm_function
        def kernel(ctx, out):
            yield ctx.global_phase
            h = ctx.reduce(1, "sum") if ctx.global_rank % 2 == 0 else None
            yield ctx.global_phase
            if h is not None and ctx.global_rank == 0:
                out[0] = float(h.value)

        def main(ppm):
            out = ppm.global_shared("out", 1)
            ppm.do(2, kernel, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert out[0] == 2.0  # ranks 0 and 2

    def test_array_valued_reduce(self):
        @ppm_function
        def kernel(ctx, out):
            yield ctx.global_phase
            h = ctx.reduce(np.full(3, float(ctx.global_rank)), "sum")
            yield ctx.global_phase
            if ctx.global_rank == 0:
                out[:] = h.value

        def main(ppm):
            out = ppm.global_shared("out", 3)
            ppm.do(2, kernel, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert out.tolist() == [6.0, 6.0, 6.0]

    def test_node_phase_collective_scopes_to_node(self):
        """A reduction inside a node phase spans only that node's VPs
        (the node-level analogue of the utility functions)."""

        @ppm_function
        def kernel(ctx, out):
            yield ctx.node_phase
            h = ctx.reduce(10 ** ctx.node_id, "sum")
            yield ctx.node_phase
            out[ctx.node_rank] = float(h.value)

        def main(ppm):
            out = ppm.node_shared("out", 2)
            ppm.do(2, kernel, out)
            return [out.instance(i)[0] for i in range(ppm.node_count)]

        _, vals = run_ppm(main, _cluster())
        # Node 0: two VPs contribute 1 each; node 1: two contribute 10.
        assert vals == [2.0, 20.0]

    def test_collective_adds_time(self):
        @ppm_function
        def with_coll(ctx):
            yield ctx.global_phase
            ctx.reduce(1.0)

        @ppm_function
        def without(ctx):
            yield ctx.global_phase

        def main_with(ppm):
            ppm.do(1, with_coll)
            return ppm.elapsed

        def main_without(ppm):
            ppm.do(1, without)
            return ppm.elapsed

        _, t1 = run_ppm(main_with, _cluster())
        _, t0 = run_ppm(main_without, _cluster())
        assert t1 > t0
