"""Tests for commit-time traffic aggregation (the bundling engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core.bundling import _unique_rows, aggregate_traffic
from repro.core.phase import PhaseRecorder
from repro.core.program import PpmProgram
from repro.core.shared import RowSpec
from repro.machine import Cluster


@pytest.fixture
def ppm4():
    return PpmProgram(Cluster(mkconfig(n_nodes=4, cores_per_node=2)))


class TestUniqueRows:
    def test_empty(self):
        assert _unique_rows([]).size == 0

    def test_single_range(self):
        rows = _unique_rows([RowSpec.from_range(2, 5)])
        assert rows.tolist() == [2, 3, 4]

    def test_deduplicates_across_specs(self):
        rows = _unique_rows(
            [
                RowSpec.from_range(0, 4),
                RowSpec.from_array(np.array([2, 3, 7])),
                RowSpec.from_array(np.array([7, 7])),
            ]
        )
        assert rows.tolist() == [0, 1, 2, 3, 7]


class TestAggregation:
    def _recorder_with_read(self, shared, node_id, rows):
        rec = PhaseRecorder("global")
        rec.add_global_read(node_id, shared, rows, rows.count * shared._trailing)
        return rec

    def test_local_reads_not_remote(self, ppm4):
        A = ppm4.global_shared("A", 8)  # node i owns rows [2i, 2i+2)
        rec = self._recorder_with_read(A, 0, RowSpec.from_range(0, 2))
        traffic = aggregate_traffic(rec, 4)
        nt = traffic[0]
        assert nt.local_read_elems == 2
        assert nt.remote_read_elems == 0
        assert nt.peers == []

    def test_remote_reads_split_by_owner(self, ppm4):
        A = ppm4.global_shared("A", 8)
        rec = self._recorder_with_read(A, 0, RowSpec.from_range(0, 8))
        traffic = aggregate_traffic(rec, 4)
        nt = traffic[0]
        assert nt.local_read_elems == 2
        owners = sorted((p.owner, p.read_elems) for p in nt.peers)
        assert owners == [(1, 2), (2, 2), (3, 2)]

    def test_duplicate_reads_deduplicated(self, ppm4):
        """Many VPs of one node reading the same remote element produce
        one fetched element — the runtime's software cache."""
        A = ppm4.global_shared("A", 8)
        rec = PhaseRecorder("global")
        for _ in range(10):
            rec.add_global_read(0, A, RowSpec.from_array(np.array([7])), 1)
        traffic = aggregate_traffic(rec, 4)
        assert traffic[0].remote_read_elems == 1

    def test_reads_and_writes_kept_separate(self, ppm4):
        A = ppm4.global_shared("A", 8)
        rec = PhaseRecorder("global")
        rec.add_global_read(0, A, RowSpec.from_range(6, 8), 2)
        rec.add_global_write(0, A, RowSpec.from_range(6, 7), 1, 0, None)
        traffic = aggregate_traffic(rec, 4)
        nt = traffic[0]
        peer = nt.peers[0]
        assert peer.owner == 3
        assert peer.read_elems == 2
        assert peer.write_elems == 1

    def test_trailing_dimensions_multiply_elements(self, ppm4):
        A = ppm4.global_shared("A", (8, 5))
        rec = self._recorder_with_read(A, 0, RowSpec.from_range(2, 4))
        traffic = aggregate_traffic(rec, 4)
        assert traffic[0].peers[0].read_elems == 10  # 2 rows x 5

    def test_multiple_shareds_tracked_independently(self, ppm4):
        A = ppm4.global_shared("A", 8)
        B = ppm4.global_shared("B", 8)
        rec = PhaseRecorder("global")
        rec.add_global_read(0, A, RowSpec.from_range(6, 8), 2)
        rec.add_global_read(0, B, RowSpec.from_range(6, 8), 2)
        traffic = aggregate_traffic(rec, 4)
        assert len(traffic[0].peers) == 2
        assert {p.shared.name for p in traffic[0].peers} == {"A", "B"}

    def test_several_reader_nodes(self, ppm4):
        A = ppm4.global_shared("A", 8)
        rec = PhaseRecorder("global")
        rec.add_global_read(0, A, RowSpec.from_range(2, 4), 2)
        rec.add_global_read(1, A, RowSpec.from_range(0, 2), 2)
        traffic = aggregate_traffic(rec, 4)
        assert traffic[0].peers[0].owner == 1
        assert traffic[1].peers[0].owner == 0
