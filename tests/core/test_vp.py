"""Tests for VP identity and VP→core loop scheduling."""

from __future__ import annotations

import pytest

from repro.core.errors import PhaseUsageError
from repro.core.vp import core_of


class TestCoreOf:
    def test_even_split(self):
        assert [core_of(r, 8, 4) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_fewer_vps_than_cores(self):
        cores = [core_of(r, 2, 4) for r in range(2)]
        assert cores == [0, 2]

    def test_single_core(self):
        assert all(core_of(r, 5, 1) == 0 for r in range(5))

    def test_contiguous_chunks(self):
        """VPs on one core form a contiguous rank interval (loop
        conversion, paper section 3.4)."""
        assignment = [core_of(r, 10, 3) for r in range(10)]
        for c in range(3):
            ranks = [r for r, cc in enumerate(assignment) if cc == c]
            assert ranks == list(range(min(ranks), max(ranks) + 1))

    def test_balanced_within_one(self):
        assignment = [core_of(r, 11, 4) for r in range(11)]
        counts = [assignment.count(c) for c in range(4)]
        assert max(counts) - min(counts) <= 1

    def test_never_exceeds_core_count(self):
        assert max(core_of(r, 100, 7) for r in range(100)) == 6

    def test_rank_validation(self):
        with pytest.raises(PhaseUsageError):
            core_of(5, 5, 2)
        with pytest.raises(PhaseUsageError):
            core_of(-1, 5, 2)

    def test_cores_validation(self):
        with pytest.raises(PhaseUsageError):
            core_of(0, 1, 0)
