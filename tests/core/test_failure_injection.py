"""Failure injection: crashing VP code must not corrupt shared state.

The commit protocol applies buffered writes only after every VP of the
phase has finished its body, so an exception anywhere in a phase aborts
the whole phase without partial effects — previously committed phases
stay intact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.errors import VpProgramError
from repro.machine import Cluster


def _cluster(**kw):
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2, **kw))


class TestAbortedPhase:
    def test_no_partial_commit_on_crash(self):
        """VP 0 writes then VP 3 crashes in the same phase: the write
        must NOT be visible afterwards."""

        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            A[ctx.global_rank] = 99.0
            if ctx.global_rank == 3:
                raise RuntimeError("injected fault")

        def main(ppm):
            A = ppm.global_shared("A", 4)
            A[:] = -1.0
            with pytest.raises(VpProgramError, match="injected fault"):
                ppm.do(2, kernel, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == -1.0).all(), "aborted phase must not commit any write"

    def test_earlier_phases_survive_later_crash(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            A[ctx.global_rank] = 1.0
            yield ctx.global_phase
            if ctx.global_rank == 0:
                raise ValueError("late fault")

        def main(ppm):
            A = ppm.global_shared("A", 4)
            with pytest.raises(VpProgramError, match="late fault"):
                ppm.do(2, kernel, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 1.0).all(), "phase 1 committed before the phase-2 fault"

    def test_crash_in_prologue(self):
        @ppm_function
        def kernel(ctx):
            raise KeyError("prologue fault")
            yield ctx.global_phase  # pragma: no cover

        def main(ppm):
            with pytest.raises(VpProgramError, match="prologue fault"):
                ppm.do(1, kernel)

        run_ppm(main, _cluster())

    def test_error_carries_location(self):
        @ppm_function
        def kernel(ctx):
            yield ctx.global_phase
            yield ctx.global_phase
            if ctx.node_id == 1 and ctx.node_rank == 1:
                raise RuntimeError("where am I")

        def main(ppm):
            ppm.do(2, kernel)

        with pytest.raises(VpProgramError) as exc_info:
            run_ppm(main, _cluster())
        err = exc_info.value
        assert err.node == 1
        assert err.vp_rank == 1
        assert err.phase_index == 2

    def test_runtime_reusable_after_crash(self):
        """A failed `do` must leave the runtime able to run another."""

        @ppm_function
        def bad(ctx):
            yield ctx.global_phase
            raise RuntimeError("boom")

        def good(ctx, A):
            A[ctx.global_rank] = 5.0

        def main(ppm):
            A = ppm.global_shared("A", 4)
            with pytest.raises(VpProgramError):
                ppm.do(1, bad)
            ppm.do(2, good, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 5.0).all()


class TestDegenerateConfigs:
    def test_zero_cost_machine_still_correct(self):
        """All cost knobs zeroed: values must be unaffected (timing and
        semantics are fully decoupled)."""
        cfg = mkconfig(
            n_nodes=2,
            cores_per_node=2,
            flop_time=0.0,
            net_alpha=0.0,
            net_beta=0.0,
            intra_alpha=0.0,
            intra_beta=0.0,
            mpi_msg_overhead=0.0,
            ppm_access_call_overhead=0.0,
            ppm_access_per_element=0.0,
            ppm_node_access_per_element=0.0,
            ppm_commit_per_element=0.0,
            barrier_alpha=0.0,
        )

        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            A[ctx.global_rank] = float(ctx.global_rank)
            ctx.work(1e6)

        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(2, kernel, A)
            return A.committed, ppm.elapsed

        _, (a, elapsed) = run_ppm(main, Cluster(cfg))
        assert a.tolist() == [0.0, 1.0, 2.0, 3.0]
        assert elapsed == 0.0

    def test_single_vp_whole_cluster(self):
        @ppm_function
        def lonely(ctx, A):
            yield ctx.global_phase
            A[:] = 7.0

        def main(ppm):
            A = ppm.global_shared("A", 6)
            ppm.do([1, 0], lonely, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 7.0).all()

    def test_do_with_zero_vps_everywhere(self):
        def main(ppm):
            stats = ppm.do(0, lambda ctx: None)
            return stats

        _, stats = run_ppm(main, _cluster())
        assert stats.vp_count == 0
        assert stats.global_phases == 0
