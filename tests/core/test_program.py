"""Tests for the driver-level program API: run_ppm, system variables,
summaries, clock reset, local_view casting rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.errors import SharedAccessError
from repro.core.program import PpmProgram, RunSummary
from repro.machine import Cluster


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


class TestDriverApi:
    def test_run_ppm_returns_program_and_result(self):
        def main(ppm, extra):
            return extra * 2

        ppm, result = run_ppm(main, _cluster(), 21)
        assert isinstance(ppm, PpmProgram)
        assert result == 42

    def test_system_variables(self):
        def main(ppm):
            return (ppm.node_count, ppm.cores_per_node)

        _, (nodes, cores) = run_ppm(main, _cluster(n_nodes=3, cores=2))
        assert (nodes, cores) == (3, 2)

    def test_reset_clocks_excludes_setup(self):
        def kernel(ctx):
            ctx.work(1000)

        def main(ppm):
            ppm.do(1, kernel)  # "setup" work
            before = ppm.elapsed
            ppm.reset_clocks()
            assert ppm.elapsed == 0.0
            ppm.do(1, kernel)
            return before, ppm.elapsed

        _, (before, after) = run_ppm(main, _cluster())
        assert before > 0 and after > 0

    def test_kwargs_forwarded_to_vps(self):
        def kernel(ctx, A, scale=1.0):
            A[ctx.global_rank] = scale

        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(2, kernel, A, scale=7.0)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 7.0).all()


class TestSummary:
    def test_counts_phases_and_traffic(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.node_phase
            yield ctx.global_phase
            _ = A[-1:]  # remote for node 0

        def main(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do(1, kernel, A)
            return ppm.summary()

        _, s = run_ppm(main, _cluster())
        assert isinstance(s, RunSummary)
        assert s.global_phases == 1
        assert s.node_phases == 2
        assert s.messages > 0
        assert s.nbytes > 0
        assert s.elapsed > 0

    def test_str_is_informative(self):
        def main(ppm):
            ppm.do(1, lambda ctx: None)
            return str(ppm.summary())

        _, text = run_ppm(main, _cluster())
        assert "global" in text and "ms simulated" in text


class TestCasting:
    def test_local_view_usable_in_driver(self):
        def main(ppm):
            A = ppm.global_shared("A", 8)
            for node in range(ppm.node_count):
                A.local_view(node)[:] = float(node)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert a.tolist() == [0.0] * 4 + [1.0] * 4

    def test_local_view_forbidden_inside_phase(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            A.local_view(0)

        def main(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do(1, kernel, A)

        with pytest.raises(Exception, match="driver"):
            run_ppm(main, _cluster())

    def test_instance_forbidden_inside_phase(self):
        @ppm_function
        def kernel(ctx, B):
            yield ctx.node_phase
            B.instance(0)

        def main(ppm):
            B = ppm.node_shared("B", 4)
            ppm.do(1, kernel, B)

        with pytest.raises(Exception, match="driver"):
            run_ppm(main, _cluster())


class TestGeneratorWrapperTrap:
    def test_lambda_wrapping_generator_function_rejected(self):
        """A lambda around a multi-phase PPM function silently skips
        every phase unless the runtime catches it — it must raise."""

        @ppm_function
        def real(ctx):
            yield ctx.global_phase

        def main(ppm):
            ppm.do(1, lambda ctx: real(ctx))

        with pytest.raises(Exception, match="generator"):
            run_ppm(main, _cluster())

    def test_functools_partial_works(self):
        import functools

        @ppm_function
        def kernel(ctx, A, value):
            yield ctx.global_phase
            A[ctx.global_rank] = value

        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(2, functools.partial(kernel, value=3.0), A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 3.0).all()
