"""The fast hot path is an optimisation, not a semantics change.

``hot_path="fast"`` (zero-copy snapshot reads, the vectorized commit
engine, sequential lock elision) must be observationally identical to
``hot_path="legacy"`` (copy-on-read, one-op-at-a-time commit replay):
bitwise-equal committed arrays and bitwise-equal simulated times, for
any program.  The hypothesis tests below throw randomly generated
conflicting write/accumulate streams at both engines; the rest of the
module pins down the zero-copy view semantics and two regressions
(numpy-integer VP counts, thread-pool shutdown) fixed alongside the
overhaul.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster

N = 24  # rows of the shared array the generated programs target
VPS = 4  # 2 nodes x 2 VPs


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


# ----------------------------------------------------------------------
# Generated conflicting operation streams
# ----------------------------------------------------------------------

_rows_fancy = st.lists(
    st.integers(0, N - 1), min_size=1, max_size=8
).map(lambda xs: np.array(xs, dtype=np.int64))
_rows_slice = st.tuples(st.integers(0, N - 1), st.integers(1, 8)).map(
    lambda t: slice(t[0], min(N, t[0] + t[1]))
)
_values = st.floats(-1e6, 1e6, allow_nan=False, width=64)


@st.composite
def _one_op(draw):
    kind = draw(st.sampled_from(["write", "write", "accumulate"]))
    if draw(st.booleans()):
        rows = draw(_rows_fancy)
        count = rows.size
    else:
        rows = draw(_rows_slice)
        count = rows.stop - rows.start
    scalar = draw(st.booleans())
    if scalar:
        vals = draw(_values)
    else:
        vals = np.array(draw(st.lists(_values, min_size=count, max_size=count)))
    op = draw(st.sampled_from(["add", "maximum", "minimum", "multiply"]))
    return (kind, rows, vals, op)


_programs = st.lists(
    st.lists(_one_op(), max_size=6), min_size=VPS, max_size=VPS
)


@ppm_function
def _apply_ops(ctx, xs, per_vp):
    yield ctx.global_phase
    for kind, rows, vals, op in per_vp[ctx.global_rank]:
        if kind == "write":
            xs[rows] = vals
        else:
            xs.accumulate(rows, vals, op=op)
    yield ctx.global_phase  # commit, then read everything back
    xs[:]


def _run(shared_kind: str, per_vp, hot_path: str):
    def main(ppm):
        if shared_kind == "global":
            xs = ppm.global_shared("x", N)
        else:
            xs = ppm.node_shared("x", N)
        ppm.reset_clocks()
        ppm.do(2, _apply_ops, xs, per_vp)
        if shared_kind == "global":
            return xs.committed.copy()
        return np.concatenate([np.asarray(xs.instance(i)) for i in range(2)])

    ppm, out = run_ppm(main, _cluster(), hot_path=hot_path)
    return out, ppm.elapsed


class TestFastEqualsLegacy:
    @settings(max_examples=30, deadline=None)
    @given(per_vp=_programs)
    def test_global_shared_commit_bitwise_equal(self, per_vp):
        out_fast, t_fast = _run("global", per_vp, "fast")
        out_legacy, t_legacy = _run("global", per_vp, "legacy")
        assert out_fast.tobytes() == out_legacy.tobytes()
        assert t_fast == t_legacy

    @settings(max_examples=15, deadline=None)
    @given(per_vp=_programs)
    def test_node_shared_commit_bitwise_equal(self, per_vp):
        out_fast, t_fast = _run("node", per_vp, "fast")
        out_legacy, t_legacy = _run("node", per_vp, "legacy")
        assert out_fast.tobytes() == out_legacy.tobytes()
        assert t_fast == t_legacy


# ----------------------------------------------------------------------
# Zero-copy view semantics
# ----------------------------------------------------------------------

class TestZeroCopyViews:
    def test_basic_index_reads_are_readonly_views(self):
        seen = {}

        @ppm_function
        def probe(ctx, xs):
            yield ctx.global_phase
            chunk = xs[0:4]
            seen["writeable"] = chunk.flags.writeable
            seen["owns"] = chunk.base is not None
            with pytest.raises(ValueError):
                chunk[0] = 99.0

        def main(ppm):
            xs = ppm.global_shared("x", 8)
            xs[:] = np.arange(8.0)
            ppm.do(1, probe, xs)

        run_ppm(main, _cluster(n_nodes=1, cores=1), hot_path="fast")
        assert seen["writeable"] is False
        assert seen["owns"] is True  # a view, not a fresh copy

    def test_view_across_barrier_keeps_phase_start_values(self):
        """Copy-on-commit: a view taken in phase k still shows phase
        k's snapshot after the barrier commits new values."""
        seen = {}

        @ppm_function
        def hold(ctx, xs):
            yield ctx.global_phase
            before = xs[0:4]
            xs[0:4] = np.full(4, 7.0)
            yield ctx.global_phase
            seen["held"] = np.asarray(before).copy()
            seen["fresh"] = np.asarray(xs[0:4]).copy()

        def main(ppm):
            xs = ppm.global_shared("x", 8)
            xs[:] = np.arange(8.0)
            ppm.do(1, hold, xs)

        run_ppm(main, _cluster(n_nodes=1, cores=1), hot_path="fast")
        np.testing.assert_array_equal(seen["held"], np.arange(4.0))
        np.testing.assert_array_equal(seen["fresh"], np.full(4, 7.0))

    def test_legacy_mode_still_returns_copies(self):
        seen = {}

        @ppm_function
        def probe(ctx, xs):
            yield ctx.global_phase
            chunk = xs[0:4]
            seen["writeable"] = chunk.flags.writeable

        def main(ppm):
            xs = ppm.global_shared("x", 8)
            ppm.do(1, probe, xs)

        run_ppm(main, _cluster(n_nodes=1, cores=1), hot_path="legacy")
        assert seen["writeable"] is True


# ----------------------------------------------------------------------
# Regressions fixed alongside the overhaul
# ----------------------------------------------------------------------

class TestNumpyIntVpCounts:
    def test_do_accepts_numpy_integer_counts(self):
        """np.int64 VP counts used to fall into the per-node-sequence
        branch and die with a length error."""
        ran = []

        @ppm_function
        def touch(ctx):
            yield ctx.global_phase
            ran.append(ctx.global_rank)

        def main(ppm):
            ppm.do(np.int64(2), touch)

        run_ppm(main, _cluster())
        assert sorted(ran) == [0, 1, 2, 3]

    def test_negative_numpy_count_still_rejected(self):
        def main(ppm):
            ppm.do(np.int64(-1), lambda ctx: None)

        with pytest.raises(ValueError):
            run_ppm(main, _cluster())


class TestRuntimeClose:
    def test_threaded_pool_shut_down_by_run_ppm(self):
        @ppm_function
        def touch(ctx):
            yield ctx.global_phase

        def main(ppm):
            ppm.do(2, touch)
            return ppm.runtime

        _, runtime = run_ppm(main, _cluster(), vp_executor="threads")
        assert runtime._pool is None  # run_ppm closed it

    def test_context_manager_closes_pool(self):
        from repro.core.program import PpmProgram

        @ppm_function
        def touch(ctx):
            yield ctx.global_phase

        with PpmProgram(_cluster(), vp_executor="threads") as ppm:
            ppm.do(2, touch)
            assert ppm.runtime._pool is not None
        assert ppm.runtime._pool is None

    def test_close_is_idempotent_and_pool_recreated(self):
        from repro.core.program import PpmProgram

        @ppm_function
        def touch(ctx):
            yield ctx.global_phase

        ppm = PpmProgram(_cluster(), vp_executor="threads")
        ppm.do(2, touch)
        ppm.close()
        ppm.close()
        ppm.do(2, touch)  # pool transparently recreated
        assert ppm.runtime._pool is not None
        ppm.close()
