"""Tests for the threaded VP executor.

The paper: "The virtual processors in PPM can potentially be thought
of as threads and also implemented as such."  The ``threads`` executor
runs phase bodies as real threads; these tests pin down that results
AND simulated times are identical to the sequential engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.errors import VpProgramError
from repro.machine import Cluster


def _cluster(**kw):
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2, **kw))


@ppm_function
def _mixed_kernel(ctx, A, B, out):
    i = ctx.global_rank
    yield ctx.global_phase
    snap = A[(i + 1) % ctx.global_vp_count]
    A[i] = float(i * 10)
    B[ctx.node_rank] = float(ctx.node_id)
    h = ctx.reduce(i + 1, "sum")
    s = ctx.scan(1, "sum")
    ctx.work(1000 * (i + 1))
    yield ctx.global_phase
    out[i] = A[i] + snap + h.value + s.value


def _main(ppm):
    k = 4
    n = ppm.node_count * k
    A = ppm.global_shared("A", n)
    B = ppm.node_shared("B", k)
    out = ppm.global_shared("out", n)
    A[:] = np.arange(n, dtype=float)
    ppm.do(k, _mixed_kernel, A, B, out)
    return out.committed


class TestEquivalence:
    def test_results_match_sequential(self):
        _, seq = run_ppm(_main, _cluster())
        _, thr = run_ppm(_main, _cluster(), vp_executor="threads")
        assert (seq == thr).all()

    def test_simulated_times_match_sequential(self):
        p_seq, _ = run_ppm(_main, _cluster())
        p_thr, _ = run_ppm(_main, _cluster(), vp_executor="threads")
        assert p_seq.elapsed == p_thr.elapsed

    def test_repeated_threaded_runs_deterministic(self):
        results = [run_ppm(_main, _cluster(), vp_executor="threads")[1] for _ in range(3)]
        assert (results[0] == results[1]).all()
        assert (results[1] == results[2]).all()

    def test_conflicting_writes_still_rank_ordered(self):
        @ppm_function
        def clash(ctx, A):
            yield ctx.global_phase
            A[0] = float(ctx.global_rank)

        def main(ppm):
            A = ppm.global_shared("A", 1)
            ppm.do(8, clash, A)
            return A.committed[0]

        for _ in range(3):
            _, v = run_ppm(main, _cluster(), vp_executor="threads")
            assert v == 15.0  # 16 VPs, highest rank wins

    def test_exceptions_propagate(self):
        @ppm_function
        def boom(ctx):
            yield ctx.global_phase
            if ctx.global_rank == 1:
                raise RuntimeError("threaded fault")

        def main(ppm):
            ppm.do(2, boom)

        with pytest.raises(VpProgramError, match="threaded fault"):
            run_ppm(main, _cluster(), vp_executor="threads")

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="vp_executor"):
            run_ppm(_main, _cluster(), vp_executor="processes")

    def test_applications_run_threaded(self):
        """A full application (CG) under the threaded executor."""
        from repro.apps.cg import build_chimney_problem, serial_cg_solve
        from repro.apps.cg.ppm_cg import _cg_kernel

        problem = build_chimney_problem(4)
        ref = serial_cg_solve(problem.A, problem.b, tol=1e-9)

        def main(ppm):
            n = problem.n
            xs = ppm.global_shared("x", n)
            rs = ppm.global_shared("r", n)
            ps = ppm.global_shared("p", n)
            qs = ppm.global_shared("q", n)
            stats = ppm.global_shared("st", 3)
            rs[:] = problem.b
            ps[:] = problem.b
            b_norm = float(np.sqrt(problem.b @ problem.b))
            ppm.do(4, _cg_kernel, problem.A, xs, rs, ps, qs, stats, b_norm, 200, 1e-9)
            return xs.committed

        _, x = run_ppm(main, _cluster(), vp_executor="threads")
        assert np.allclose(x, ref.x, atol=1e-6)
