"""Tests for the PPM runtime's simulated-time model: access overheads,
VP→core scheduling, bundled communication, overlap, contention."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MachineConfig, testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.scheduler import compose_phase_timing, node_compute_time
from repro.machine import Cluster
from repro.machine.network import BundleCost, NetworkModel


def _elapsed(main, **cfg):
    cluster = Cluster(mkconfig(**cfg))
    ppm, _ = run_ppm(main, cluster)
    return ppm.elapsed


class TestComputeTime:
    def test_work_charges_flop_time(self):
        def kernel(ctx):
            ctx.work(1_000_000)

        def main(ppm):
            ppm.do(1, kernel)
            return None

        cfg = mkconfig(n_nodes=1, cores_per_node=1)
        cluster = Cluster(cfg)
        ppm, _ = run_ppm(main, cluster)
        assert ppm.elapsed >= 1_000_000 * cfg.flop_time

    def test_vps_spread_over_cores(self):
        """4 VPs each doing W flops on 4 cores take ~W, not ~4W."""

        def kernel(ctx):
            ctx.work(1_000_000)

        def main(ppm):
            ppm.do(4, kernel)
            return None

        t4 = _elapsed(main, n_nodes=1, cores_per_node=4)
        t1 = _elapsed(main, n_nodes=1, cores_per_node=1)
        assert t1 > 3 * t4

    def test_node_compute_is_slowest_core(self):
        assert node_compute_time({0: 1.0, 1: 3.0, 2: 2.0}) == 3.0
        assert node_compute_time({}) == 0.0

    def test_work_rejects_negative(self):
        def kernel(ctx):
            ctx.work(-1)

        def main(ppm):
            ppm.do(1, kernel)

        with pytest.raises(Exception, match="non-negative"):
            run_ppm(main, Cluster(mkconfig(n_nodes=1)))


class TestAccessOverhead:
    def test_global_access_dearer_than_node_access(self):
        """The paper's one-node story: global-shared accesses cost more
        than node-shared ones."""

        def g_kernel(ctx, A):
            for _ in range(50):
                _ = A[0]

        def n_kernel(ctx, B):
            for _ in range(50):
                _ = B[0]

        def main_g(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(1, g_kernel, A)

        def main_n(ppm):
            B = ppm.node_shared("B", 4)
            ppm.do(1, n_kernel, B)

        tg = _elapsed(main_g, n_nodes=1)
        tn = _elapsed(main_n, n_nodes=1)
        assert tg > 0 and tn > 0
        # call overhead dominates single-element accesses; per-element
        # rates differ, so bulk accesses differentiate more strongly:

        def g_bulk(ctx, A):
            _ = A[:]

        def n_bulk(ctx, B):
            _ = B[:]

        def main_gb(ppm):
            A = ppm.global_shared("A", 100_000)
            ppm.do(1, g_bulk, A)

        def main_nb(ppm):
            B = ppm.node_shared("B", 100_000)
            ppm.do(1, n_bulk, B)

        assert _elapsed(main_gb, n_nodes=1) > _elapsed(main_nb, n_nodes=1)

    def test_more_elements_cost_more(self):
        def small(ctx, A):
            _ = A[0:10]

        def large(ctx, A):
            _ = A[0:10_000]

        def main_s(ppm):
            A = ppm.global_shared("A", 10_000)
            ppm.do(1, small, A)

        def main_l(ppm):
            A = ppm.global_shared("A", 10_000)
            ppm.do(1, large, A)

        assert _elapsed(main_l, n_nodes=1) > _elapsed(main_s, n_nodes=1)


class TestCommunicationTime:
    def test_remote_reads_cost_more_than_local(self):
        def local(ctx, A):
            lo, hi = 0, 2
            _ = A[lo:hi]

        def remote(ctx, A):
            _ = A[-2:]

        def main_local(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do([1, 0], local, A)

        def main_remote(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do([1, 0], remote, A)

        assert _elapsed(main_remote) > _elapsed(main_local)

    def test_remote_writes_cost_more_than_local(self):
        def local(ctx, A):
            A[0:2] = np.ones(2)

        def remote(ctx, A):
            A[-2:] = np.ones(2)

        def main_local(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do([1, 0], local, A)

        def main_remote(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do([1, 0], remote, A)

        assert _elapsed(main_remote) > _elapsed(main_local)

    def test_bundling_ablation_explodes_fine_grained_cost(self):
        @ppm_function
        def scattered(ctx, A):
            yield ctx.global_phase
            idx = 2000 + np.arange(500) * 2  # rows owned by node 1
            _ = A[idx]

        def main(ppm):
            A = ppm.global_shared("A", 4000)
            ppm.do([1, 0], scattered, A)

        t_on = _elapsed(main, n_nodes=2)
        cluster_off = Cluster(mkconfig(n_nodes=2, bundling=False))
        ppm_off, _ = run_ppm(main, cluster_off)
        assert ppm_off.elapsed > 5 * t_on

    def test_latency_rounds_increase_phase_time(self):
        def make_main(rounds):
            @ppm_function
            def walker(ctx, A):
                yield ctx.phase("global", latency_rounds=rounds)
                _ = A[-64:]

            def main(ppm):
                A = ppm.global_shared("A", 256)
                ppm.do([1, 0], walker, A)

            return main

        assert _elapsed(make_main(16)) > _elapsed(make_main(1))

    def test_phase_barrier_synchronises_nodes(self):
        @ppm_function
        def unbalanced(ctx):
            yield ctx.global_phase
            ctx.work(1_000_000 * (ctx.node_id + 1))

        def main(ppm):
            ppm.do(1, unbalanced)
            return [n.clock.now for n in ppm.cluster]

        cluster = Cluster(mkconfig(n_nodes=2))
        _, times = run_ppm(main, cluster)
        assert times[0] == times[1]

    def test_node_phases_do_not_synchronise_nodes(self):
        @ppm_function
        def unbalanced(ctx):
            yield ctx.node_phase
            ctx.work(1_000_000 * (ctx.node_id + 1))

        def main(ppm):
            ppm.do(1, unbalanced)
            return [n.clock.now for n in ppm.cluster]

        _, times = run_ppm(main, Cluster(mkconfig(n_nodes=2)))
        assert times[1] > times[0]


class TestOverlapAndContention:
    def test_overlap_reduces_phase_time(self):
        @ppm_function
        def compute_and_fetch(ctx, A):
            yield ctx.global_phase
            _ = A[-1000:]
            ctx.work(5_000_000)

        def main(ppm):
            A = ppm.global_shared("A", 4000)
            ppm.do([1, 0], compute_and_fetch, A)

        t_overlap = Cluster(mkconfig(n_nodes=2, overlap_fraction=0.6))
        t_none = Cluster(mkconfig(n_nodes=2, overlap_fraction=0.0))
        p1, _ = run_ppm(main, t_overlap)
        p0, _ = run_ppm(main, t_none)
        assert p1.elapsed < p0.elapsed

    def test_nic_scheduling_beats_contention(self):
        cost = BundleCost(messages=4, payload_bytes=4096, wire_time=1e-4, cpu_time=1e-5)
        sched = compose_phase_timing(
            MachineConfig(n_nodes=2, cores_per_node=8, nic_scheduling=True),
            NetworkModel(MachineConfig(n_nodes=2, cores_per_node=8)),
            compute=0.0,
            commit_cpu=0.0,
            comm_cost=cost,
        )
        unsched_cfg = MachineConfig(n_nodes=2, cores_per_node=8, nic_scheduling=False)
        unsched = compose_phase_timing(
            unsched_cfg,
            NetworkModel(unsched_cfg),
            compute=0.0,
            commit_cpu=0.0,
            comm_cost=cost,
        )
        assert unsched.comm > sched.comm

    def test_compose_timing_busy_formula(self):
        cfg = MachineConfig(overlap_fraction=0.5)
        t = compose_phase_timing(
            cfg,
            NetworkModel(cfg),
            compute=10.0,
            commit_cpu=1.0,
            comm_cost=BundleCost(1, 100, 2.0, 0.5),
        )
        assert t.comm == pytest.approx(2.5)
        assert t.overlapped == pytest.approx(2.5)  # min(2.5, 5.0)
        assert t.busy == pytest.approx(10.0 + 1.0 + 2.5 - 2.5)


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            _ = A[ctx.global_rank :: 7]
            A[ctx.global_rank] = 1.0
            ctx.work(1234)

        def main(ppm):
            A = ppm.global_shared("A", 64)
            ppm.do(4, kernel, A)
            return ppm.elapsed

        t1 = run_ppm(main, Cluster(mkconfig(n_nodes=2)))[1]
        t2 = run_ppm(main, Cluster(mkconfig(n_nodes=2)))[1]
        assert t1 == t2
