"""Interrupt safety of ``run_ppm``: a KeyboardInterrupt inside a VP
body must propagate (not be swallowed or re-wrapped), must not leak a
partial commit, and must leave no live worker pool behind."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


def _cluster(**kw):
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2, **kw))


@ppm_function
def _interrupting(ctx, A, interrupt):
    yield ctx.global_phase
    A[ctx.global_rank] = 1.0
    yield ctx.global_phase
    A[ctx.global_rank] = 2.0
    if interrupt and ctx.global_rank == 3:
        raise KeyboardInterrupt
    yield ctx.global_phase
    A[ctx.global_rank] = 3.0


@pytest.mark.parametrize("executor", ["sequential", "threads"])
class TestKeyboardInterrupt:
    def test_propagates_uncommitted(self, executor):
        """The interrupt surfaces as KeyboardInterrupt (BaseException
        must not be converted to VpProgramError) and the interrupted
        phase's buffered writes never commit."""
        state = {}

        def main(ppm):
            A = ppm.global_shared("A", 4)
            A[:] = -1.0
            state["A"] = A
            ppm.do(2, _interrupting, A, interrupt=True)

        with pytest.raises(KeyboardInterrupt):
            run_ppm(main, _cluster(), vp_executor=executor)
        committed = state["A"].committed
        # Phase 0 (writes of 1.0) committed; the interrupted phase 1
        # aborted before its barrier, so no element ever became 2.0.
        assert np.array_equal(committed, np.full(4, 1.0))

    def test_thread_pool_shut_down(self, executor):
        """run_ppm's cleanup must release the VP pool even when the
        driver dies mid-phase."""
        captured = {}

        def main(ppm):
            A = ppm.global_shared("A", 4)
            captured["runtime"] = ppm.runtime
            ppm.do(2, _interrupting, A, interrupt=True)

        with pytest.raises(KeyboardInterrupt):
            run_ppm(main, _cluster(), vp_executor=executor)
        assert captured["runtime"]._pool is None

    def test_clean_run_unaffected(self, executor):
        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do(2, _interrupting, A, interrupt=False)
            return A.committed

        _, a = run_ppm(main, _cluster(), vp_executor=executor)
        assert np.array_equal(a, np.full(4, 3.0))
