"""Tests for the PPM language-construct helpers."""

from __future__ import annotations

import pytest

from repro.core.constructs import (
    GLOBAL_PHASE,
    NODE_PHASE,
    PhaseDecl,
    is_ppm_function,
    ppm_function,
)
from repro.core.errors import PhaseUsageError


class TestPhaseDecl:
    def test_module_sentinels(self):
        assert GLOBAL_PHASE.kind == "global"
        assert NODE_PHASE.kind == "node"
        assert GLOBAL_PHASE.latency_rounds == 1

    def test_invalid_kind(self):
        with pytest.raises(PhaseUsageError, match="kind"):
            PhaseDecl("cluster")

    def test_invalid_latency_rounds(self):
        with pytest.raises(PhaseUsageError, match="latency_rounds"):
            PhaseDecl("global", latency_rounds=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            GLOBAL_PHASE.kind = "node"

    def test_custom_rounds(self):
        d = PhaseDecl("global", latency_rounds=7)
        assert d.latency_rounds == 7


class TestPpmFunctionDecorator:
    def test_marks_function(self):
        @ppm_function
        def f(ctx):
            yield ctx.global_phase

        assert is_ppm_function(f)

    def test_unmarked_function(self):
        def g(ctx):
            pass

        assert not is_ppm_function(g)

    def test_rejects_zero_parameter_function(self):
        with pytest.raises(PhaseUsageError, match="first parameter"):
            @ppm_function
            def bad():
                pass

    def test_plain_function_accepted(self):
        @ppm_function
        def plain(ctx, x):
            return x

        assert is_ppm_function(plain)
