"""Tests for PPM shared variables: distribution, driver access,
indexing normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import run_ppm
from repro.core.errors import SharedAccessError
from repro.core.program import PpmProgram
from repro.core.shared import RowSpec, _normalize_rows
from repro.machine import Cluster


@pytest.fixture
def ppm4():
    """A program on 4 nodes x 2 cores."""
    return PpmProgram(Cluster(mkconfig(n_nodes=4, cores_per_node=2)))


class TestRowNormalisation:
    def test_int_index(self):
        spec = _normalize_rows(3, 10)
        assert spec.count == 1
        assert spec.materialize().tolist() == [3]

    def test_negative_int_wraps(self):
        assert _normalize_rows(-1, 10).materialize().tolist() == [9]

    def test_int_out_of_range(self):
        with pytest.raises(IndexError):
            _normalize_rows(10, 10)

    def test_unit_slice_is_range(self):
        spec = _normalize_rows(slice(2, 7), 10)
        assert spec.array is None
        assert (spec.start, spec.stop) == (2, 7)
        assert spec.count == 5

    def test_full_slice(self):
        assert _normalize_rows(slice(None), 10).count == 10

    def test_strided_slice_materialises(self):
        spec = _normalize_rows(slice(0, 10, 3), 10)
        assert spec.materialize().tolist() == [0, 3, 6, 9]

    def test_ellipsis(self):
        assert _normalize_rows(Ellipsis, 6).count == 6

    def test_fancy_array(self):
        spec = _normalize_rows(np.array([5, 1, 1]), 10)
        assert spec.materialize().tolist() == [5, 1, 1]

    def test_negative_fancy_indices_wrap(self):
        spec = _normalize_rows(np.array([-1, -10]), 10)
        assert spec.materialize().tolist() == [9, 0]

    def test_fancy_out_of_range(self):
        with pytest.raises(IndexError):
            _normalize_rows(np.array([10]), 10)

    def test_bool_mask(self):
        mask = np.array([True, False, True, False])
        assert _normalize_rows(mask, 4).materialize().tolist() == [0, 2]

    def test_bool_mask_wrong_length(self):
        with pytest.raises(IndexError):
            _normalize_rows(np.array([True]), 4)

    def test_tuple_uses_first_axis(self):
        spec = _normalize_rows((slice(1, 3), 0), 5)
        assert spec.count == 2

    def test_rowspec_range_materialize(self):
        assert RowSpec.from_range(2, 5).materialize().tolist() == [2, 3, 4]


class TestGlobalSharedDistribution:
    def test_block_partition_covers_everything(self, ppm4):
        A = ppm4.global_shared("A", 10)
        ranges = [A.local_range(i) for i in range(4)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_owner_of_matches_ranges(self, ppm4):
        A = ppm4.global_shared("A", 10)
        for node in range(4):
            lo, hi = A.local_range(node)
            for r in range(lo, hi):
                assert A.owner_of(r) == node

    def test_owner_of_vectorised(self, ppm4):
        A = ppm4.global_shared("A", 8)
        owners = A.owner_of(np.arange(8))
        assert owners.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_local_view_is_a_view(self, ppm4):
        A = ppm4.global_shared("A", 8)
        view = A.local_view(1)
        view[:] = 7.0
        assert (A.committed[2:4] == 7.0).all()

    def test_uneven_partition(self, ppm4):
        A = ppm4.global_shared("A", 7)
        sizes = [A.local_range(i)[1] - A.local_range(i)[0] for i in range(4)]
        assert sum(sizes) == 7
        assert max(sizes) - min(sizes) <= 1

    def test_appears_in_node_memory(self, ppm4):
        ppm4.global_shared("A", 8)
        for node in ppm4.cluster:
            assert "gshared:A" in node.memory

    def test_duplicate_name_rejected(self, ppm4):
        ppm4.global_shared("A", 8)
        with pytest.raises(KeyError):
            ppm4.global_shared("A", 8)

    def test_2d_shape(self, ppm4):
        A = ppm4.global_shared("A", (8, 3))
        assert A.shape == (8, 3)
        assert A._trailing == 3

    def test_invalid_shape(self, ppm4):
        with pytest.raises(ValueError):
            ppm4.global_shared("bad", (-1,))


class TestDriverAccess:
    def test_driver_read_write(self, ppm4):
        A = ppm4.global_shared("A", 4)
        A[:] = np.arange(4.0)
        assert A[2] == 2.0
        assert A[:].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_driver_read_returns_copy(self, ppm4):
        A = ppm4.global_shared("A", 4)
        a = A[:]
        a[0] = 99.0
        assert A[0] == 0.0

    def test_driver_accumulate_applies_immediately(self, ppm4):
        A = ppm4.global_shared("A", 4)
        A.accumulate(np.array([1, 1, 2]), np.array([1.0, 2.0, 5.0]))
        assert A[1] == 3.0
        assert A[2] == 5.0

    def test_unknown_accumulate_op(self, ppm4):
        A = ppm4.global_shared("A", 4)
        with pytest.raises(ValueError, match="unknown accumulate op"):
            A.accumulate([0], [1.0], op="xor")

    def test_len(self, ppm4):
        assert len(ppm4.global_shared("A", 6)) == 6

    def test_fill_and_dtype(self, ppm4):
        A = ppm4.global_shared("A", 4, dtype=np.int32, fill=9)
        assert A[:].dtype == np.int32
        assert (A[:] == 9).all()


class TestNodeShared:
    def test_one_instance_per_node(self, ppm4):
        B = ppm4.node_shared("B", 3)
        B.instance(0)[:] = 1.0
        assert (B.instance(1) == 0.0).all()

    def test_instance_range_check(self, ppm4):
        B = ppm4.node_shared("B", 3)
        with pytest.raises(IndexError):
            B.instance(4)

    def test_plain_indexing_outside_phase_rejected(self, ppm4):
        B = ppm4.node_shared("B", 3)
        with pytest.raises(SharedAccessError):
            B[0]
        with pytest.raises(SharedAccessError):
            B[0] = 1.0

    def test_appears_in_node_memory(self, ppm4):
        ppm4.node_shared("B", 3)
        for node in ppm4.cluster:
            assert "nshared:B" in node.memory


class TestNodeSharedInPhase:
    def test_accumulate_combines_within_node(self):
        from repro.core import ppm_function, run_ppm

        @ppm_function
        def add(ctx, B):
            yield ctx.node_phase
            B.accumulate(np.array([0]), np.array([float(ctx.node_rank + 1)]))

        def main(ppm):
            B = ppm.node_shared("acc", 2)
            ppm.do(2, add, B)
            return [B.instance(i)[0] for i in range(ppm.node_count)]

        ppm4 = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
        _, vals = run_ppm(main, ppm4)
        assert vals == [3.0, 3.0]  # VPs 0 and 1 of each node: 1 + 2

    def test_accumulate_minimum(self):
        from repro.core import ppm_function, run_ppm

        @ppm_function
        def keep_min(ctx, B):
            yield ctx.node_phase
            B.accumulate(np.array([0]), np.array([float(10 - ctx.node_rank)]), op="minimum")

        def main(ppm):
            B = ppm.node_shared("mn", 1, fill=100.0)
            ppm.do(3, keep_min, B)
            return B.instance(0)[0]

        _, v = run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=2)))
        assert v == 8.0  # min(100, 10, 9, 8)

    def test_accumulate_invalid_op(self):
        from repro.core import ppm_function, run_ppm
        from repro.core.errors import PpmError

        @ppm_function
        def bad(ctx, B):
            yield ctx.node_phase
            B.accumulate([0], [1.0], op="xor")

        def main(ppm):
            B = ppm.node_shared("bad", 1)
            ppm.do(1, bad, B)

        with pytest.raises(PpmError, match="unknown accumulate op"):
            run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=1)))

    def test_2d_node_shared_partial_row_write(self):
        from repro.core import ppm_function, run_ppm

        @ppm_function
        def writer(ctx, B):
            yield ctx.node_phase
            B[ctx.node_rank, 1] = 5.0

        def main(ppm):
            B = ppm.node_shared("mat", (2, 3))
            ppm.do(2, writer, B)
            return B.instance(0).copy()

        _, m = run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=2)))
        assert m[0, 1] == 5.0 and m[1, 1] == 5.0
        assert m.sum() == 10.0
