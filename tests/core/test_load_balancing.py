"""Tests for the runtime's measured-cost load balancing.

The paper (section 3): processor virtualisation "provides
opportunities for the compiler and runtime system to do optimizations
such as load balancing."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _skewed(ctx, out):
    """Two heavy VPs per node, the rest light — the adversarial case
    for static contiguous chunking (both heavies share core 0)."""
    for _ in range(5):
        yield ctx.global_phase
        work = 1_000_000 if ctx.node_rank < 2 else 100_000
        ctx.work(work)
    yield ctx.global_phase
    out[ctx.global_rank] = float(ctx.global_rank)


def _main(ppm):
    out = ppm.global_shared("out", ppm.node_count * 8)
    ppm.do(8, _skewed, out)
    return out.committed


def _elapsed(**cfg):
    cluster = Cluster(mkconfig(n_nodes=1, cores_per_node=4, **cfg))
    ppm, _ = run_ppm(_main, cluster)
    return ppm.elapsed


class TestLoadBalancing:
    def test_speeds_up_skewed_workloads(self):
        t_static = _elapsed()
        t_lb = _elapsed(load_balancing=True)
        assert t_lb < 0.75 * t_static

    def test_first_phase_keeps_static_chunks(self):
        """Without cost history the balancer must not collapse every
        VP onto core 0 — a single-phase run is identical either way."""

        def once(ctx):
            ctx.work(500_000)

        def main(ppm):
            ppm.do(8, once)
            return ppm.elapsed

        _, t_static = run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=4)))
        _, t_lb = run_ppm(
            main, Cluster(mkconfig(n_nodes=1, cores_per_node=4, load_balancing=True))
        )
        assert t_lb == t_static

    def test_values_unaffected(self):
        cluster_a = Cluster(mkconfig(n_nodes=2, cores_per_node=2))
        cluster_b = Cluster(
            mkconfig(n_nodes=2, cores_per_node=2, load_balancing=True)
        )
        _, a = run_ppm(_main, cluster_a)
        _, b = run_ppm(_main, cluster_b)
        assert (a == b).all()

    def test_never_hurts_uniform_workloads(self):
        @ppm_function
        def uniform(ctx):
            for _ in range(4):
                yield ctx.global_phase
                ctx.work(100_000)

        def main(ppm):
            ppm.do(8, uniform)
            return ppm.elapsed

        _, t_static = run_ppm(main, Cluster(mkconfig(n_nodes=1, cores_per_node=4)))
        _, t_lb = run_ppm(
            main, Cluster(mkconfig(n_nodes=1, cores_per_node=4, load_balancing=True))
        )
        assert t_lb <= t_static * 1.0001

    def test_deterministic(self):
        times = [
            _elapsed(load_balancing=True),
            _elapsed(load_balancing=True),
        ]
        assert times[0] == times[1]

    def test_works_with_threaded_executor(self):
        cluster = Cluster(
            mkconfig(n_nodes=1, cores_per_node=4, load_balancing=True)
        )
        ppm, out = run_ppm(_main, cluster, vp_executor="threads")
        assert ppm.elapsed == _elapsed(load_balancing=True)
        assert (out == np.arange(8, dtype=float)).all()
