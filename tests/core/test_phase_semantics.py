"""Tests for the heart of PPM: phase snapshot/commit semantics.

Paper section 3.2: "Within every phase, any read access to a shared
variable always gets the value as it was [at] the beginning of the
current execution of the phase; and updates made to a shared variable
become effective only after the end of the current execution of the
phase."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.errors import (
    PhaseUsageError,
    PpmError,
    SharedAccessError,
    VpProgramError,
)
from repro.machine import Cluster


def _cluster(n_nodes=2, cores=2, **cfg):
    return Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=cores, **cfg))


class TestSnapshotReads:
    def test_reads_see_phase_start_values(self):
        """All VPs read neighbours' slots during the same phase in
        which those slots are overwritten: everyone must see the
        snapshot, regardless of execution order."""

        @ppm_function
        def shift(ctx, A, out):
            i = ctx.global_rank
            n = ctx.global_vp_count
            yield ctx.global_phase
            out[i] = A[(i + 1) % n]  # read neighbour
            A[i] = -1.0  # overwrite own slot

        def main(ppm):
            n = ppm.node_count * 2
            A = ppm.global_shared("A", n)
            out = ppm.global_shared("out", n)
            A[:] = np.arange(n, dtype=float)
            ppm.do(2, shift, A, out)
            return A.committed, out.committed

        _, (a, out) = run_ppm(main, _cluster())
        n = 4
        assert out.tolist() == [(i + 1) % n for i in range(n)]
        assert (a == -1.0).all()

    def test_own_writes_invisible_within_phase(self):
        """Strict paper semantics: even a VP's *own* write is not
        visible to its later reads in the same phase."""

        @ppm_function
        def probe(ctx, A, out):
            yield ctx.global_phase
            A[0] = 42.0
            out[0] = A[0]  # still the snapshot value

        def main(ppm):
            A = ppm.global_shared("A", 2)
            out = ppm.global_shared("out", 2)
            A[0] = 7.0
            ppm.do([1, 0], probe, A, out)
            return A.committed, out.committed

        _, (a, out) = run_ppm(main, _cluster())
        assert out[0] == 7.0  # snapshot
        assert a[0] == 42.0  # committed after the phase

    def test_writes_visible_next_phase(self):
        @ppm_function
        def two_phase(ctx, A, out):
            i = ctx.global_rank
            yield ctx.global_phase
            A[i] = float(i) * 2
            yield ctx.global_phase
            out[i] = A[i]

        def main(ppm):
            A = ppm.global_shared("A", 4)
            out = ppm.global_shared("out", 4)
            ppm.do(2, two_phase, A, out)
            return out.committed

        _, out = run_ppm(main, _cluster())
        assert out.tolist() == [0.0, 2.0, 4.0, 6.0]

    def test_read_cannot_mutate_committed_store(self):
        # Snapshot reads are read-only views on the fast path (mutation
        # raises) and defensive copies on the legacy path (mutation is
        # swallowed); either way nothing leaks into the committed store.
        @ppm_function
        def mutate_read(ctx, A, out):
            yield ctx.global_phase
            block = A[0:2]
            try:
                block[0] = 999.0
            except ValueError:
                pass  # read-only view refused the write
            yield ctx.global_phase
            out[0] = A[0]

        for hot_path in ("fast", "legacy"):
            def main(ppm):
                A = ppm.global_shared("A", 4)
                out = ppm.global_shared("out", 1)
                A[:] = 1.0
                ppm.do([1, 0], mutate_read, A, out)
                return out.committed

            _, out = run_ppm(main, _cluster(), hot_path=hot_path)
            assert out[0] == 1.0

    def test_write_buffers_copy_of_source_array(self):
        @ppm_function
        def writer(ctx, A):
            yield ctx.global_phase
            v = np.full(2, 5.0)
            A[0:2] = v
            v[:] = -1.0  # mutation after the buffered write must not leak

        def main(ppm):
            A = ppm.global_shared("A", 4)
            ppm.do([1, 0], writer, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert a[0] == 5.0 and a[1] == 5.0


class TestConflictResolution:
    def test_highest_global_rank_wins(self):
        @ppm_function
        def clash(ctx, A):
            yield ctx.global_phase
            A[0] = float(ctx.global_rank)

        def main(ppm):
            A = ppm.global_shared("A", 1)
            ppm.do(3, clash, A)
            return A.committed

        _, a = run_ppm(main, _cluster(n_nodes=2))
        assert a[0] == 5.0  # 6 VPs, ranks 0..5

    def test_resolution_independent_of_node_layout(self):
        """The same K VPs spread over different node counts must
        produce the same final value."""

        @ppm_function
        def clash(ctx, A):
            yield ctx.global_phase
            A[0] = float(ctx.global_rank * 10)

        def run(n_nodes, per_node):
            def main(ppm):
                A = ppm.global_shared("A", 1)
                ppm.do(per_node, clash, A)
                return A.committed[0]

            return run_ppm(main, _cluster(n_nodes=n_nodes))[1]

        assert run(1, 4) == run(2, 2) == run(4, 1) == 30.0

    def test_program_order_within_vp(self):
        @ppm_function
        def twice(ctx, A):
            yield ctx.global_phase
            A[0] = 1.0
            A[0] = 2.0  # later write of the same VP wins

        def main(ppm):
            A = ppm.global_shared("A", 1)
            ppm.do([1, 0], twice, A)
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert a[0] == 2.0

    def test_accumulate_combines_instead_of_overwriting(self):
        @ppm_function
        def add(ctx, A):
            yield ctx.global_phase
            A.accumulate(np.array([0]), np.array([1.0]))

        def main(ppm):
            A = ppm.global_shared("A", 1)
            ppm.do(3, add, A)
            return A.committed

        _, a = run_ppm(main, _cluster(n_nodes=2))
        assert a[0] == 6.0  # six VPs each add 1


class TestNodePhases:
    def test_node_shared_visible_within_node_only(self):
        @ppm_function
        def local_sum(ctx, B, out):
            r = ctx.node_rank
            yield ctx.node_phase
            B[r] = float(ctx.node_id + 1)
            yield ctx.node_phase
            if r == 0:
                out[r] = B[0] + B[1]
            yield ctx.global_phase
            # publish each node's sum: write to a global slot
            # (node phases cannot write global shared)

        def main(ppm):
            B = ppm.node_shared("B", 2)
            out = ppm.node_shared("out", 2)
            ppm.do(2, local_sum, B, out)
            return [out.instance(i)[0] for i in range(ppm.node_count)]

        _, sums = run_ppm(main, _cluster())
        assert sums == [2.0, 4.0]

    def test_node_phase_cannot_write_global(self):
        @ppm_function
        def bad(ctx, A):
            yield ctx.node_phase
            A[0] = 1.0

        def main(ppm):
            A = ppm.global_shared("A", 2)
            ppm.do(1, bad, A)

        with pytest.raises(PpmError, match="node"):
            run_ppm(main, _cluster())

    def test_node_phase_can_read_global(self):
        @ppm_function
        def reader(ctx, A, B):
            yield ctx.node_phase
            B[0] = A[3]  # reading global shared is fine

        def main(ppm):
            A = ppm.global_shared("A", 4)
            B = ppm.node_shared("B", 1)
            A[3] = 9.0
            ppm.do(1, reader, A, B)
            return [B.instance(i)[0] for i in range(2)]

        _, vals = run_ppm(main, _cluster())
        assert vals == [9.0, 9.0]

    def test_node_shared_writable_in_global_phase(self):
        """The paper's section 5 example writes a node-shared array
        inside a global phase."""

        @ppm_function
        def writer(ctx, B):
            yield ctx.global_phase
            B[ctx.node_rank] = float(ctx.node_rank)

        def main(ppm):
            B = ppm.node_shared("B", 2)
            ppm.do(2, writer, B)
            return B.instance(0).tolist()

        _, vals = run_ppm(main, _cluster())
        assert vals == [0.0, 1.0]

    def test_mixed_kinds_on_one_node_rejected(self):
        @ppm_function
        def diverge(ctx):
            if ctx.node_rank == 0:
                yield ctx.global_phase
            else:
                yield ctx.node_phase

        def main(ppm):
            ppm.do(2, diverge)

        with pytest.raises(PhaseUsageError, match="mixed phase kinds"):
            run_ppm(main, _cluster())

    def test_nodes_may_run_different_phase_counts(self):
        """Node 0 runs extra node phases while node 1 waits at the
        global phase (asynchronous modes, paper section 3.3)."""

        @ppm_function
        def busy(ctx, B, n_local):
            for _ in range(n_local):
                yield ctx.node_phase
                B[0] = B[0] + 1.0  # snapshot read + write each phase
            yield ctx.global_phase

        def main(ppm):
            import functools

            B = ppm.node_shared("B", 1)
            f0 = functools.partial(busy, n_local=3)
            f1 = functools.partial(busy, n_local=1)
            ppm.do(1, [f0, f1], B)
            return [B.instance(i)[0] for i in range(2)]

        _, vals = run_ppm(main, _cluster())
        assert vals == [3.0, 1.0]


class TestProgramStructure:
    def test_prologue_cannot_touch_shared(self):
        @ppm_function
        def bad(ctx, A):
            _ = A[0]  # before any phase declaration
            yield ctx.global_phase

        def main(ppm):
            A = ppm.global_shared("A", 2)
            ppm.do(1, bad, A)

        with pytest.raises(PpmError, match="prologue"):
            run_ppm(main, _cluster())

    def test_yield_of_non_phase_rejected(self):
        @ppm_function
        def bad(ctx):
            yield "not a phase"

        def main(ppm):
            ppm.do(1, bad)

        with pytest.raises(PhaseUsageError, match="phase declaration"):
            run_ppm(main, _cluster())

    def test_plain_function_is_single_global_phase(self):
        def kernel(ctx, A):
            A[ctx.global_rank] = 1.0

        def main(ppm):
            A = ppm.global_shared("A", 4)
            stats = ppm.do(2, kernel, A)
            assert stats.global_phases == 1
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert (a == 1.0).all()

    def test_plain_function_node_phase_option(self):
        def kernel(ctx, B):
            B[ctx.node_rank] = 1.0

        def main(ppm):
            B = ppm.node_shared("B", 2)
            stats = ppm.do(2, kernel, B, phase="node")
            assert stats.node_phases == 2  # one per node
            assert stats.global_phases == 0
            return True

        run_ppm(main, _cluster())

    def test_vp_exception_is_wrapped_with_location(self):
        @ppm_function
        def boom(ctx):
            yield ctx.global_phase
            if ctx.global_rank == 2:
                raise RuntimeError("kaboom")

        def main(ppm):
            ppm.do(2, boom)

        with pytest.raises(VpProgramError, match="node 1, VP node-rank 0"):
            run_ppm(main, _cluster())

    def test_zero_vps_on_a_node(self):
        @ppm_function
        def kernel(ctx, A):
            yield ctx.global_phase
            A[ctx.global_rank] = 1.0

        def main(ppm):
            A = ppm.global_shared("A", 4)
            stats = ppm.do([3, 0], kernel, A)
            assert stats.vp_count == 3
            return A.committed

        _, a = run_ppm(main, _cluster())
        assert a.tolist() == [1.0, 1.0, 1.0, 0.0]

    def test_vp_count_validation(self):
        def main(ppm):
            ppm.do(-1, lambda ctx: None)

        with pytest.raises(ValueError):
            run_ppm(main, _cluster())

    def test_per_node_count_length_validation(self):
        def main(ppm):
            ppm.do([1, 2, 3], lambda ctx: None)

        with pytest.raises(ValueError, match="length"):
            run_ppm(main, _cluster())

    def test_ranks_and_system_variables(self):
        seen = []

        @ppm_function
        def check(ctx):
            yield ctx.global_phase
            seen.append(
                (
                    ctx.node_id,
                    ctx.node_rank,
                    ctx.global_rank,
                    ctx.node_vp_count,
                    ctx.global_vp_count,
                    ctx.node_count,
                    ctx.cores_per_node,
                )
            )

        def main(ppm):
            ppm.do([2, 3], check)

        run_ppm(main, _cluster())
        assert len(seen) == 5
        assert [s[2] for s in seen] == [0, 1, 2, 3, 4]  # global ranks
        assert seen[0][:2] == (0, 0)
        assert seen[2][:2] == (1, 0)
        assert seen[2][3] == 3  # node 1 has 3 VPs
        assert all(s[4] == 5 and s[5] == 2 and s[6] == 2 for s in seen)
