"""Tests for phase-timing composition and the bundled comm cost."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.core.bundling import NodeTraffic, PeerTraffic
from repro.core.program import PpmProgram
from repro.core.scheduler import compose_phase_timing, node_comm_cost, node_compute_time
from repro.machine import Cluster
from repro.machine.network import ZERO_COST, NetworkModel


def _traffic_with(shared, reads=0, writes=0, owner=1):
    return NodeTraffic(
        node_id=0,
        peers=[PeerTraffic(shared=shared, owner=owner, read_elems=reads, write_elems=writes)],
    )


@pytest.fixture
def shared():
    ppm = PpmProgram(Cluster(MachineConfig(n_nodes=2)))
    return ppm.global_shared("S", 100)


class TestNodeCommCost:
    def test_empty_traffic_is_free(self):
        net = NetworkModel(MachineConfig())
        assert node_comm_cost(net, NodeTraffic(node_id=0)) == ZERO_COST

    def test_reads_pay_round_trip_latency(self, shared):
        net = NetworkModel(MachineConfig())
        cost = node_comm_cost(net, _traffic_with(shared, reads=10))
        # one request + one reply bundle
        assert cost.messages == 2
        assert cost.wire_time >= 2 * net.config.net_alpha

    def test_writes_pay_single_hop(self, shared):
        net = NetworkModel(MachineConfig())
        cost = node_comm_cost(net, _traffic_with(shared, writes=10))
        assert cost.messages == 1
        assert cost.wire_time == pytest.approx(
            net.config.net_alpha + cost.payload_bytes * net.config.net_beta
        )

    def test_latency_once_across_peers(self, shared):
        """Bundles to many peers go out concurrently: alpha is paid per
        fetch round, not per peer."""
        net = NetworkModel(MachineConfig(n_nodes=8))
        one_peer = node_comm_cost(net, _traffic_with(shared, reads=100))
        many = NodeTraffic(
            node_id=0,
            peers=[
                PeerTraffic(shared=shared, owner=o, read_elems=100) for o in (1, 2, 3)
            ],
        )
        three_peers = node_comm_cost(net, many)
        alpha_part_one = 2 * net.config.net_alpha
        assert three_peers.wire_time - 3 * (one_peer.wire_time - alpha_part_one) == pytest.approx(
            alpha_part_one
        )

    def test_latency_rounds_multiply_alpha_only(self, shared):
        net = NetworkModel(MachineConfig())
        r1 = node_comm_cost(net, _traffic_with(shared, reads=100), latency_rounds=1)
        r5 = node_comm_cost(net, _traffic_with(shared, reads=100), latency_rounds=5)
        assert r5.payload_bytes == r1.payload_bytes
        assert r5.wire_time - r1.wire_time == pytest.approx(8 * net.config.net_alpha)

    def test_unbundled_message_count(self, shared):
        net = NetworkModel(MachineConfig(bundling=False))
        cost = node_comm_cost(net, _traffic_with(shared, reads=25))
        assert cost.messages == 50  # 25 requests + 25 replies


class TestComposeTiming:
    def test_zero_everything(self):
        cfg = MachineConfig()
        t = compose_phase_timing(
            cfg, NetworkModel(cfg), compute=0.0, commit_cpu=0.0, comm_cost=ZERO_COST
        )
        assert t.busy == 0.0

    def test_overlap_capped_by_comm(self):
        cfg = MachineConfig(overlap_fraction=0.9)
        from repro.machine.network import BundleCost

        t = compose_phase_timing(
            cfg,
            NetworkModel(cfg),
            compute=100.0,
            commit_cpu=0.0,
            comm_cost=BundleCost(1, 8, 1.0, 0.0),
        )
        assert t.overlapped == pytest.approx(1.0)  # all comm hidden
        assert t.busy == pytest.approx(100.0)

    def test_overlap_capped_by_compute_fraction(self):
        cfg = MachineConfig(overlap_fraction=0.5)
        from repro.machine.network import BundleCost

        t = compose_phase_timing(
            cfg,
            NetworkModel(cfg),
            compute=2.0,
            commit_cpu=0.0,
            comm_cost=BundleCost(1, 8, 10.0, 0.0),
        )
        assert t.overlapped == pytest.approx(1.0)  # 0.5 * compute
        assert t.busy == pytest.approx(2.0 + 10.0 - 1.0)

    def test_contention_applies_without_scheduling(self):
        from repro.machine.network import BundleCost

        cost = BundleCost(4, 4096, 1.0, 0.1)
        base = MachineConfig(cores_per_node=8, nic_scheduling=False)
        t = compose_phase_timing(
            base, NetworkModel(base), compute=0.0, commit_cpu=0.0, comm_cost=cost
        )
        factor = NetworkModel(base).contention_factor(8)
        assert t.comm == pytest.approx(1.0 * factor + 0.1)

    def test_extra_comm_cpu_added(self):
        cfg = MachineConfig()
        t = compose_phase_timing(
            cfg,
            NetworkModel(cfg),
            compute=0.0,
            commit_cpu=0.0,
            comm_cost=ZERO_COST,
            extra_comm_cpu=0.5,
        )
        assert t.comm == pytest.approx(0.5)


class TestNodeComputeTime:
    def test_max_over_cores(self):
        assert node_compute_time({0: 0.5, 3: 1.5}) == 1.5

    def test_empty_is_zero(self):
        assert node_compute_time({}) == 0.0
