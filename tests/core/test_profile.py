"""Tests for the per-phase timing profiler."""

from __future__ import annotations

import pytest

from repro.config import testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.runtime import PhaseProfile
from repro.machine import Cluster


def _cluster(**kw):
    return Cluster(mkconfig(n_nodes=2, cores_per_node=2, **kw))


@ppm_function
def _kernel(ctx, A):
    yield ctx.node_phase
    ctx.work(10_000)
    yield ctx.global_phase
    _ = A[-2:]  # remote read for node 0
    ctx.work(50_000)


def _run():
    def main(ppm):
        A = ppm.global_shared("A", 8)
        ppm.do(2, _kernel, A)
        return ppm.profile

    return run_ppm(main, _cluster())


class TestProfile:
    def test_one_entry_per_phase(self):
        _, prof = _run()
        assert len(prof) == 3  # two node phases (one per node) + one global
        kinds = [p.kind for p in prof]
        assert kinds.count("node") == 2
        assert kinds.count("global") == 1

    def test_indices_are_sequential(self):
        _, prof = _run()
        assert [p.index for p in prof] == [0, 1, 2]

    def test_global_phase_covers_all_nodes(self):
        _, prof = _run()
        g = next(p for p in prof if p.kind == "global")
        assert set(g.node_timings) == {0, 1}

    def test_node_phase_covers_one_node(self):
        _, prof = _run()
        for p in prof:
            if p.kind == "node":
                assert len(p.node_timings) == 1

    def test_comm_attributed_to_reading_node(self):
        _, prof = _run()
        g = next(p for p in prof if p.kind == "global")
        assert g.node_timings[0].comm > 0  # node 0 fetched remote rows
        assert g.busiest_node == 0

    def test_compute_recorded(self):
        _, prof = _run()
        g = next(p for p in prof if p.kind == "global")
        cfg = mkconfig()
        assert g.node_timings[1].compute >= 50_000 * cfg.flop_time

    def test_t_end_monotone_within_global_phases(self):
        _, prof = _run()
        g_times = [p.t_end for p in prof if p.kind == "global"]
        assert g_times == sorted(g_times)

    def test_latency_rounds_recorded(self):
        @ppm_function
        def walker(ctx, A):
            yield ctx.phase("global", latency_rounds=7)
            _ = A[-1:]

        def main(ppm):
            A = ppm.global_shared("B", 8)
            ppm.do(1, walker, A)
            return ppm.profile

        _, prof = run_ppm(main, _cluster())
        assert prof[-1].latency_rounds == 7
