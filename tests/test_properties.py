"""Property-based tests (hypothesis) for core data structures and
invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.barneshut.octree import build_octree, check_octree
from repro.apps.barneshut.serial_bh import bh_forces, direct_forces
from repro.apps.common import hash_u64, hash_unit, split_range
from repro.config import MachineConfig, testing as mkconfig
from repro.core import ppm_function, run_ppm
from repro.core.shared import RowSpec, _normalize_rows
from repro.machine import Cluster
from repro.machine.clock import LogicalClock
from repro.machine.network import NetworkModel
from repro.mpi.collectives import fold
from repro.mpi.datatypes import copy_payload, payload_nbytes


class TestSplitRangeProperties:
    @given(n=st.integers(0, 10_000), parts=st.integers(1, 64))
    def test_partition_properties(self, n, parts):
        blocks = split_range(n, parts)
        assert len(blocks) == parts
        assert blocks[0][0] == 0 and blocks[-1][1] == n
        sizes = [b - a for a, b in blocks]
        assert all(s >= 0 for s in sizes)
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        for (a, b), (c, d) in zip(blocks, blocks[1:]):
            assert b == c


class TestHashProperties:
    @given(st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=200, unique=True))
    def test_no_collisions_on_distinct_inputs(self, xs):
        h = hash_u64(np.array(xs, dtype=np.uint64))
        assert np.unique(h).size == len(xs)

    @given(st.integers(0, 2**63 - 1))
    def test_unit_range(self, x):
        u = float(hash_unit(x))
        assert 0.0 <= u < 1.0


class TestClockProperties:
    @given(st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=50))
    def test_monotonicity_under_advances_and_merges(self, steps):
        clock = LogicalClock()
        prev = 0.0
        for i, s in enumerate(steps):
            if i % 2 == 0:
                clock.advance(s)
            else:
                clock.merge(s)
            assert clock.now >= prev
            prev = clock.now


class TestNetworkProperties:
    @given(
        n1=st.integers(0, 100_000),
        n2=st.integers(0, 100_000),
        intra=st.booleans(),
    )
    def test_bundle_cost_superadditive_in_elements(self, n1, n2, intra):
        """Shipping two batches separately is never cheaper than
        coalescing them (bundling can only help)."""
        net = NetworkModel(MachineConfig())
        together = net.bundle(n1 + n2, intra)
        separate = net.bundle(n1, intra) + net.bundle(n2, intra)
        assert together.total_time <= separate.total_time + 1e-15
        assert together.payload_bytes == separate.payload_bytes

    @given(n=st.integers(1, 100_000), rounds=st.integers(1, 32))
    def test_rounds_preserve_payload(self, n, rounds):
        net = NetworkModel(MachineConfig())
        one = net.gather_round_trip(n, False, rounds=1)
        many = net.gather_round_trip(n, False, rounds=rounds)
        assert many.payload_bytes == one.payload_bytes
        assert many.wire_time >= one.wire_time - 1e-15

    @given(streams=st.integers(0, 1024))
    def test_contention_factor_at_least_one(self, streams):
        net = NetworkModel(MachineConfig())
        assert net.contention_factor(streams) >= 1.0

    @given(p=st.integers(1, 4096), nbytes=st.integers(0, 10**7))
    def test_collective_costs_nonnegative_and_monotone(self, p, nbytes):
        net = NetworkModel(MachineConfig())
        assert net.barrier_time(p) >= 0
        assert net.allreduce_time(p, nbytes) >= net.reduce_time(p, nbytes)


class TestRowSpecProperties:
    @given(
        n=st.integers(1, 200),
        data=st.data(),
    )
    def test_normalize_matches_numpy_row_selection(self, n, data):
        """The rows RowSpec reports are exactly the rows numpy indexing
        touches, for every supported index form."""
        arr = np.arange(n, dtype=np.int64)
        form = data.draw(st.sampled_from(["int", "slice", "fancy", "bool"]))
        if form == "int":
            idx = data.draw(st.integers(-n, n - 1))
            expected = np.atleast_1d(arr[idx])
        elif form == "slice":
            a = data.draw(st.integers(0, n))
            b = data.draw(st.integers(0, n))
            step = data.draw(st.integers(1, 5))
            idx = slice(min(a, b), max(a, b), step)
            expected = arr[idx]
        elif form == "fancy":
            idx = np.array(
                data.draw(st.lists(st.integers(-n, n - 1), max_size=50)), dtype=np.int64
            )
            expected = arr[idx] if idx.size else np.empty(0, dtype=np.int64)
        else:
            mask = np.array(data.draw(st.lists(st.booleans(), min_size=n, max_size=n)))
            idx = mask
            expected = arr[mask]
        spec = _normalize_rows(idx, n)
        got = np.sort(np.unique(spec.materialize()))
        want = np.sort(np.unique(expected % n))
        assert (got == want).all()


class TestPhaseCommitProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 7), st.floats(-1e6, 1e6, allow_nan=False)),
            min_size=1,
            max_size=20,
        ),
        layout=st.sampled_from([(1, 4), (2, 2), (4, 1)]),
    )
    def test_commit_equals_rank_order_model(self, writes, layout):
        """The committed state equals the sequential model 'apply all
        writes in global-VP-rank order', for any node layout of the
        same total VP count."""
        n_nodes, per_node = layout
        total_vps = 4
        # Distribute the write list over VPs round-robin.
        per_vp: list[list[tuple[int, float]]] = [[] for _ in range(total_vps)]
        for i, w in enumerate(writes):
            per_vp[i % total_vps].append(w)

        @ppm_function
        def writer(ctx, A):
            yield ctx.global_phase
            for slot, value in per_vp[ctx.global_rank]:
                A[slot] = value

        def main(ppm):
            A = ppm.global_shared("A", 8)
            ppm.do(per_node, writer, A)
            return A.committed

        cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=2))
        _, got = run_ppm(main, cluster)

        expected = np.zeros(8)
        for rank in range(total_vps):
            for slot, value in per_vp[rank]:
                expected[slot] = value
        assert (got == expected).all()

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=12),
    )
    def test_scan_matches_cumsum(self, values):
        k = len(values)

        @ppm_function
        def scanner(ctx, out):
            yield ctx.global_phase
            h = ctx.scan(values[ctx.global_rank], "sum")
            yield ctx.global_phase
            out[ctx.global_rank] = h.value

        def main(ppm):
            out = ppm.global_shared("out", k)
            counts = [0] * ppm.node_count
            for i in range(k):
                counts[i % ppm.node_count] += 1
            # contiguity of ranks: use per-node counts that preserve
            # global rank order (block assignment).
            blocks = split_range(k, ppm.node_count)
            ppm.do([b - a for a, b in blocks], scanner, out)
            return out.committed

        _, got = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        assert np.allclose(got, np.cumsum(values))


class TestFoldProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=30))
    def test_fold_sum_matches_sequential(self, xs):
        assert fold(xs, "sum") == pytest.approx(sum(xs), rel=1e-12, abs=1e-9)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
    def test_fold_min_max(self, xs):
        assert fold(xs, "min") == min(xs)
        assert fold(xs, "max") == max(xs)


class TestPayloadProperties:
    nested = st.recursive(
        st.one_of(
            st.integers(-1e9, 1e9),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
            st.booleans(),
            st.none(),
        ),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=5), children, max_size=4),
            st.tuples(children, children),
        ),
        max_leaves=15,
    )

    @given(nested)
    def test_copy_payload_preserves_equality(self, obj):
        assert copy_payload(obj) == obj

    @given(nested)
    def test_payload_nbytes_nonnegative_and_stable(self, obj):
        n = payload_nbytes(obj)
        assert n >= 0
        assert payload_nbytes(obj) == n


class TestOctreeProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 200),
        seed=st.integers(0, 2**31),
        leaf=st.sampled_from([1, 4, 16]),
    )
    def test_invariants_on_random_clouds(self, n, seed, leaf):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.1, 2.0, n)
        tree = build_octree(pos, mass, leaf_size=leaf)
        check_octree(tree, pos, mass)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 100), seed=st.integers(0, 2**31))
    def test_theta_zero_equals_direct(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.standard_normal((n, 3))
        mass = rng.uniform(0.5, 1.5, n)
        a = bh_forces(pos, mass, theta=0.0)
        b = direct_forces(pos, mass)
        assert np.allclose(a, b, atol=1e-9)


class TestAccumulateProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 5),
                st.floats(-100, 100, allow_nan=False),
                st.sampled_from(["add", "minimum", "maximum"]),
            ),
            min_size=1,
            max_size=16,
        ),
        layout=st.sampled_from([(1, 4), (2, 2), (4, 1)]),
    )
    def test_accumulate_matches_rank_order_model(self, ops, layout):
        """Accumulates commit exactly like the sequential model 'apply
        each buffered ufunc.at in global-rank order', independent of
        the node layout."""
        n_nodes, per_node = layout
        total_vps = 4
        per_vp: list[list] = [[] for _ in range(total_vps)]
        for i, op in enumerate(ops):
            per_vp[i % total_vps].append(op)

        @ppm_function
        def acc(ctx, A):
            yield ctx.global_phase
            for slot, value, op in per_vp[ctx.global_rank]:
                A.accumulate(np.array([slot]), np.array([value]), op=op)

        def main(ppm):
            A = ppm.global_shared("A", 6, fill=1.0)
            ppm.do(per_node, acc, A)
            return A.committed

        cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=2))
        _, got = run_ppm(main, cluster)

        expected = np.full(6, 1.0)
        ufuncs = {"add": np.add, "minimum": np.minimum, "maximum": np.maximum}
        for rank in range(total_vps):
            for slot, value, op in per_vp[rank]:
                ufuncs[op].at(expected, [slot], [value])
        assert np.allclose(got, expected, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=12),
    )
    def test_duplicate_row_accumulate_combines_all(self, values):
        """One vectorised accumulate with duplicated rows combines all
        duplicates (ufunc.at semantics), not last-wins."""

        @ppm_function
        def acc(ctx, A):
            yield ctx.global_phase
            rows = np.zeros(len(values), dtype=np.int64)
            A.accumulate(rows, np.array(values), op="add")

        def main(ppm):
            A = ppm.global_shared("A", 1)
            ppm.do([1, 0], acc, A)
            return A.committed[0]

        _, got = run_ppm(main, Cluster(mkconfig(n_nodes=2, cores_per_node=2)))
        assert got == pytest.approx(sum(values), abs=1e-9)


class TestApplicationEquivalenceProperties:
    @settings(max_examples=6, deadline=None)
    @given(nx=st.integers(3, 6), nodes=st.sampled_from([1, 2, 3]))
    def test_cg_ppm_matches_serial_on_random_sizes(self, nx, nodes):
        from repro.apps.cg import build_chimney_problem, ppm_cg_solve, serial_cg_solve
        from repro.config import franklin

        problem = build_chimney_problem(nx)
        ref = serial_cg_solve(problem.A, problem.b, tol=1e-9)
        res, _ = ppm_cg_solve(
            problem, Cluster(franklin(n_nodes=nodes)), tol=1e-9
        )
        assert np.allclose(res.x, ref.x, atol=1e-6)

    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(16, 200),
        degree=st.integers(1, 5),
        seed=st.integers(0, 1000),
        source=st.integers(0, 15),
    )
    def test_bfs_ppm_matches_serial_on_random_graphs(self, n, degree, seed, source):
        from repro.apps.graph import hashed_graph, ppm_bfs, serial_bfs
        from repro.config import franklin

        graph = hashed_graph(n, degree=degree, seed=seed)
        ref = serial_bfs(graph, source)
        dist, _ = ppm_bfs(graph, source, Cluster(franklin(n_nodes=2)))
        assert (dist == ref).all()

    @settings(max_examples=6, deadline=None)
    @given(levels=st.integers(2, 5), nodes=st.sampled_from([1, 2, 3]))
    def test_multigrid_ppm_bitwise_on_random_hierarchies(self, levels, nodes):
        from repro.apps.multigrid import build_mg_problem, ppm_mg_solve, serial_mg_solve
        from repro.config import franklin

        problem = build_mg_problem(levels=levels)
        ref, _ = serial_mg_solve(problem, cycles=2)
        u, _ = ppm_mg_solve(problem, Cluster(franklin(n_nodes=nodes)), cycles=2)
        assert np.abs(u - ref).max() == 0.0


class TestSanitizerProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 3),  # writing VP's global rank
                st.integers(0, 4),  # row
                st.integers(0, 2),  # value (small range forces collisions)
            ),
            min_size=1,
            max_size=10,
        ),
        layout=st.sampled_from([(1, 4), (2, 2), (4, 1)]),
    )
    def test_ppm201_iff_commit_order_matters(self, writes, layout):
        """The sanitizer reports a rank-order-dependent conflict
        (PPM201) exactly when permuting the VP commit order changes
        the committed array.

        Plain writes only: their commit is last-writer-wins, so an
        exhaustive oracle over all rank permutations is exact (float
        accumulates would break the 'iff' by mere reassociation)."""
        import itertools

        n_rows = 5
        per_vp: list[list[tuple[int, float]]] = [[] for _ in range(4)]
        for rank, row, value in writes:
            per_vp[rank].append((row, float(value)))

        @ppm_function
        def kernel(ctx, X):
            yield ctx.global_phase
            for row, value in per_vp[ctx.global_rank]:
                X[row] = value

        def main(ppm):
            X = ppm.global_shared("X", n_rows)
            ppm.do(layout[1], kernel, X)
            return X.committed

        n_nodes, per_node = layout
        cluster = Cluster(mkconfig(n_nodes=n_nodes, cores_per_node=per_node))
        ppm, committed = run_ppm(main, cluster, sanitize="warn")

        # Exhaustive oracle: replay the write plan under every rank
        # permutation (writes of one VP keep their program order, R3).
        outcomes = set()
        for perm in itertools.permutations(range(4)):
            arr = np.zeros(n_rows)
            for rank in perm:
                for row, value in per_vp[rank]:
                    arr[row] = value
            outcomes.add(arr.tobytes())
        order_matters = len(outcomes) > 1

        flagged = any(d.rule == "PPM201" for d in ppm.diagnostics)
        assert flagged == order_matters
        # And the actual commit matches the identity-order replay.
        expected = np.zeros(n_rows)
        for rank in range(4):
            for row, value in per_vp[rank]:
                expected[row] = value
        assert (committed == expected).all()


class TestIndexSizeProperties:
    @settings(max_examples=150, deadline=None)
    @given(shape=st.sampled_from([(7,), (5, 4), (4, 3, 2)]), data=st.data())
    def test_index_result_size_matches_numpy(self, shape, data):
        """The analytic element counter used by the write-cost model
        agrees with numpy on every index form it claims to model."""
        from repro.core.shared import _index_result_size

        def axis_index(n: int, allow_arrays: bool):
            opts = [
                st.integers(-n, n - 1),
                st.slices(n),
            ]
            if allow_arrays:
                opts.append(
                    st.lists(st.integers(0, n - 1), max_size=6).map(
                        lambda xs: np.array(xs, dtype=np.int64)
                    )
                )
                opts.append(
                    st.lists(st.booleans(), min_size=n, max_size=n).map(np.array)
                )
            return st.one_of(opts)

        arr = np.zeros(shape)
        n_axes = data.draw(st.integers(1, len(shape)))
        # At most one advanced (array) entry: several advanced entries
        # must broadcast, which numpy itself rejects on mismatch.
        adv_axis = data.draw(st.integers(0, n_axes - 1))
        idx = tuple(
            data.draw(axis_index(shape[ax], allow_arrays=(ax == adv_axis)))
            for ax in range(n_axes)
        )
        assert _index_result_size(idx, shape) == arr[idx].size

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 30),
        trailing=st.sampled_from([(), (3,), (2, 2)]),
        data=st.data(),
    )
    def test_count_elements_avoids_fancy_copy(self, n, trailing, data):
        """`_count_elements` on a (rows, column-index) tuple matches the
        materialised size without building the fancy-index copy."""
        from repro.core.shared import _index_result_size

        shape = (n,) + trailing
        arr = np.zeros(shape)
        rows = data.draw(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=8).map(
                lambda xs: np.array(xs, dtype=np.int64)
            )
        )
        idx: tuple = (rows,)
        for ax in range(1, len(shape)):
            idx = idx + (data.draw(st.slices(shape[ax])),)
        assert _index_result_size(idx, shape) == arr[idx].size
