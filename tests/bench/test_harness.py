"""Tests for the experiment harness: sweeps, reports, code counting,
and the CLI."""

from __future__ import annotations

import os

import pytest

from repro.bench.codesize import PAPER_TABLE1, TABLE1_FILES, count_loc, table1_codesize
from repro.bench.harness import SweepResult, run_sweep
from repro.bench.report import format_table, save_result


class TestRunSweep:
    def test_collects_rows_in_order(self):
        result = run_sweep("demo", "x", [1, 2, 3], lambda x: {"y": x * x})
        assert result.columns == ["x", "y"]
        assert [r["x"] for r in result.rows] == [1, 2, 3]
        assert result.series("y") == [1, 4, 9]

    def test_ragged_columns_supported(self):
        def runner(x):
            return {"y": x} if x < 2 else {"y": x, "z": -x}

        result = run_sweep("demo", "x", [1, 2], runner)
        assert result.columns == ["x", "y", "z"]
        assert result.rows[0].get("z") is None

    def test_series_unknown_column(self):
        result = run_sweep("demo", "x", [1], lambda x: {"y": x})
        with pytest.raises(KeyError):
            result.series("nope")

    def test_notes_attached(self):
        result = run_sweep("demo", "x", [], lambda x: {}, notes="hello")
        assert result.notes == "hello"


class TestFormatting:
    def test_format_table_contains_everything(self):
        result = SweepResult(
            name="t", columns=["a", "b"], rows=[{"a": 1, "b": 0.5}], notes="n"
        )
        text = format_table(result)
        assert "== t ==" in text
        assert "n" in text
        assert "0.5" in text

    def test_float_formatting(self):
        result = SweepResult(
            name="t",
            columns=["v"],
            rows=[{"v": 0.000123}, {"v": 123456.0}, {"v": 0.0}],
        )
        text = format_table(result)
        assert "0.000123" in text
        assert "0" in text

    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        import repro.bench.report as report

        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        result = SweepResult(name="demo", columns=["a"], rows=[{"a": 1}])
        text = save_result(result)
        assert (tmp_path / "demo.txt").read_text().strip() == text.strip()


class TestCodeSize:
    def test_count_loc_ignores_comments_and_docstrings(self, tmp_path):
        src = tmp_path / "sample.py"
        src.write_text(
            '"""Module docstring\nspanning lines."""\n'
            "# a comment\n"
            "\n"
            "def f(x):\n"
            '    """Doc."""\n'
            "    # inner comment\n"
            "    return x + 1\n"
        )
        assert count_loc(str(src)) == 2  # def line + return line

    def test_count_loc_counts_multiline_statements(self, tmp_path):
        src = tmp_path / "sample.py"
        src.write_text("x = [\n    1,\n    2,\n]\n")
        assert count_loc(str(src)) == 4

    def test_table1_structure(self):
        result = table1_codesize()
        assert {r["application"] for r in result.rows} == set(PAPER_TABLE1)
        for row in result.rows:
            assert row["ppm_loc"] > 0
            assert row["mpi_loc"] > 0

    def test_listed_files_exist(self):
        import repro.apps as apps

        base = os.path.dirname(apps.__file__)
        for ppm_files, mpi_files in TABLE1_FILES.values():
            for rel in ppm_files + mpi_files:
                assert os.path.exists(os.path.join(base, rel)), rel


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table1" in out

    def test_unknown_experiment(self, capsys):
        from repro.bench.__main__ import main

        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_table1(self, capsys, tmp_path, monkeypatch):
        import repro.bench.report as report

        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        from repro.bench.__main__ import main

        assert main(["table1"]) == 0
        assert "Conjugate Gradient" in capsys.readouterr().out
        assert (tmp_path / "table1_codesize.txt").exists()


class TestFigureBuildersSmoke:
    """Tiny-instance smoke runs of every sweep builder (the real sizes
    run in benchmarks/)."""

    def test_fig1_smoke(self):
        from repro.bench.figures import fig1_cg

        result = fig1_cg(node_counts=(1, 2), nx=4, iters=3)
        assert len(result.rows) == 2
        assert all(r["ppm_s"] > 0 and r["mpi_s"] > 0 for r in result.rows)

    def test_fig2_smoke(self):
        from repro.bench.figures import fig2_matgen

        result = fig2_matgen(node_counts=(1, 2), levels=5)
        assert all(r["ppm_s"] > 0 for r in result.rows)

    def test_fig3_smoke(self):
        from repro.bench.figures import fig3_barneshut

        result = fig3_barneshut(node_counts=(1, 2), n_particles=128, steps=1)
        assert all(r["ppm_s"] > 0 for r in result.rows)

    def test_ext_smoke(self):
        from repro.bench.figures import ext_bfs, ext_trsv

        assert ext_bfs(node_counts=(1,), n_vertices=200).rows[0]["ppm_s"] > 0
        assert ext_trsv(node_counts=(1,), nx=4).rows[0]["ppm_s"] > 0


class TestRenderChart:
    def _result(self):
        return SweepResult(
            name="demo",
            columns=["nodes", "ppm_s", "mpi_s", "ratio"],
            rows=[
                {"nodes": 1, "ppm_s": 0.01, "mpi_s": 0.002, "ratio": 5.0},
                {"nodes": 2, "ppm_s": 0.005, "mpi_s": 0.003, "ratio": 1.7},
            ],
        )

    def test_renders_time_series_only(self):
        from repro.bench.report import render_chart

        text = render_chart(self._result())
        assert "ppm_s" in text and "mpi_s" in text
        assert "ratio" not in text

    def test_bars_scale_with_values(self):
        from repro.bench.report import render_chart

        lines = render_chart(self._result()).splitlines()[1:]  # skip header
        big = next(l for l in lines if l.endswith("0.01"))
        small = next(l for l in lines if l.endswith("0.002"))
        assert big.count("#") > small.count("#")

    def test_missing_values_marked(self):
        from repro.bench.report import render_chart

        r = SweepResult(
            name="demo",
            columns=["nodes", "a_s"],
            rows=[{"nodes": 1, "a_s": 0.1}, {"nodes": 2}],
        )
        assert "(n/a)" in render_chart(r)

    def test_no_time_columns_gives_empty(self):
        from repro.bench.report import render_chart

        r = SweepResult(name="demo", columns=["x", "y"], rows=[{"x": 1, "y": 2}])
        assert render_chart(r) == ""
