"""Serial reference multigrid solver."""

from __future__ import annotations

import numpy as np

from repro.apps.multigrid.problem import (
    MgProblem,
    coarse_solve,
    prolong_window,
    residual_window,
    restrict_window,
    smooth_window,
    vcycle_schedule,
)


def serial_mg_solve(
    problem: MgProblem,
    *,
    cycles: int = 8,
    nu1: int = 2,
    nu2: int = 2,
) -> tuple[np.ndarray, list[float]]:
    """Run ``cycles`` V-cycles from a zero initial guess.

    Returns the finest-grid iterate and the residual 2-norm after each
    cycle.  The implementation executes the same flat operation
    schedule (and the same windowed arithmetic) as the parallel
    versions, so their iterates agree bit-for-bit.
    """
    L = problem.levels
    u = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    f = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    r = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    f[0][:] = problem.f
    schedule = vcycle_schedule(L, nu1=nu1, nu2=nu2)

    history: list[float] = []
    for _cycle in range(cycles):
        for op, l in schedule:
            n = problem.sizes[l]
            h = problem.h(l)
            if op == "smooth":
                u[l][1 : n - 1] = smooth_window(u[l][0:n], f[l][1 : n - 1], h)
            elif op == "residual":
                r[l][1 : n - 1] = residual_window(u[l][0:n], f[l][1 : n - 1], h)
            elif op == "restrict":
                nc = problem.sizes[l + 1]
                f[l + 1][1 : nc - 1] = restrict_window(r[l][1 : 2 * (nc - 2) + 2])
                u[l + 1][:] = 0.0
            elif op == "coarse":
                u[l][:] = coarse_solve(f[l], h)
            elif op == "prolong":
                u[l][1 : n - 1] += prolong_window(
                    u[l + 1][0 : problem.sizes[l + 1]], 1, n - 2
                )
        res = residual_window(u[0], f[0][1:-1], problem.h(0))
        history.append(float(np.linalg.norm(res)))
    return u[0], history
