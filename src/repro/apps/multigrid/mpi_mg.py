"""MPI implementation of the multigrid V-cycle.

The explicit-message counterpart: every level's points are partitioned
so that a rank's coarse points sit under its fine points (rank owns
coarse ``i`` iff it owns fine ``2i``), which bounds every operation's
remote needs to one-point halos.  The application then has to carry,
per level, a halo plan (left/right neighbours in the chain of
non-empty ranks), exchange ghost cells before each smoothing sweep,
each residual, each restriction (residual ghosts) and each
prolongation (coarse ghosts), and gather/scatter the coarsest level to
rank 0 for the direct solve.  All of this choreography is what the PPM
version's plain indexing replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import split_range
from repro.apps.multigrid.problem import (
    MgProblem,
    coarse_solve,
    op_flops,
    prolong_window,
    residual_window,
    restrict_window,
    smooth_window,
    vcycle_schedule,
)
from repro.machine import Cluster
from repro.mpi import run_mpi

_TAG_LEFT = 51
_TAG_RIGHT = 52


@dataclass(frozen=True)
class _LevelPlan:
    """One rank's slice of one level, plus its halo neighbours."""

    lo: int
    hi: int
    prev: int  # rank owning lo-1 (-1: domain boundary / empty)
    next: int  # rank owning hi   (-1: domain boundary / empty)

    @property
    def interior(self) -> tuple[int, int]:
        return self.lo, self.hi


def build_level_plans(
    problem: MgProblem, size: int
) -> tuple[list[list[_LevelPlan]], set[int]]:
    """Per-rank, per-level slices with halo neighbours (setup,
    untimed).  Level 0 is block-partitioned over the interior; each
    coarser level's ownership is induced by the fine level (coarse i
    under fine 2i), so halos stay one point wide everywhere.

    Also returns the set of *replicated* coarse levels: once a level is
    so small that some rank holds fine points but no coarse points,
    one-point halos cannot feed its prolongation, so (like real
    multigrid codes) the level is assembled everywhere by allgather.
    """
    L = problem.levels
    n0 = problem.sizes[0]
    fine_blocks = [(max(lo, 1), min(hi, n0 - 1)) for lo, hi in split_range(n0, size)]

    per_level: list[list[tuple[int, int]]] = [fine_blocks]
    for l in range(1, L + 1):
        prev_blocks = per_level[-1]
        n = problem.sizes[l]
        blocks = []
        for f_lo, f_hi in prev_blocks:
            c_lo = max((f_lo + 1) // 2, 1)
            c_hi = max((f_hi + 1) // 2, c_lo)
            blocks.append((min(c_lo, n - 1), min(c_hi, n - 1)))
        per_level.append(blocks)

    plans: list[list[_LevelPlan]] = [[] for _ in range(size)]
    for l in range(L + 1):
        blocks = per_level[l]
        owner = {}
        for r, (lo, hi) in enumerate(blocks):
            for i in range(lo, hi):
                owner[i] = r
        for r, (lo, hi) in enumerate(blocks):
            if lo >= hi:
                plans[r].append(_LevelPlan(lo=lo, hi=lo, prev=-1, next=-1))
                continue
            prev = owner.get(lo - 1, -1)
            nxt = owner.get(hi, -1)
            plans[r].append(_LevelPlan(lo=lo, hi=hi, prev=prev, next=nxt))

    replicated: set[int] = set()
    for l in range(1, L + 1):
        for fine, coarse in zip(per_level[l - 1], per_level[l]):
            if fine[0] < fine[1] and coarse[0] >= coarse[1]:
                replicated.add(l)
                break
    return plans, replicated


def _exchange_halo(comm, plan: _LevelPlan, local: np.ndarray, n: int) -> None:
    """Refresh the ghost cells ``local[lo-1]`` and ``local[hi]`` from
    the neighbouring ranks (domain boundaries stay at their Dirichlet
    zeros).  ``local`` is the rank's full-length working vector."""
    lo, hi = plan.lo, plan.hi
    if lo >= hi:
        return
    if plan.prev >= 0:
        comm.send(float(local[lo]), dest=plan.prev, tag=_TAG_RIGHT)
    if plan.next >= 0:
        comm.send(float(local[hi - 1]), dest=plan.next, tag=_TAG_LEFT)
    if plan.next >= 0:
        local[hi] = comm.recv(source=plan.next, tag=_TAG_RIGHT)
    if plan.prev >= 0:
        local[lo - 1] = comm.recv(source=plan.prev, tag=_TAG_LEFT)
    comm.mem_work(2)


def _mg_rank(comm, problem: MgProblem, plans, replicated, cycles, nu1, nu2):
    L = problem.levels
    my = plans[comm.rank]
    u = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    f = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    r = [np.zeros(problem.sizes[l]) for l in range(L + 1)]
    f[0][:] = problem.f
    schedule = vcycle_schedule(L, nu1=nu1, nu2=nu2)

    for _cycle in range(cycles):
        for op, l in schedule:
            h = problem.h(l)
            plan = my[l]
            lo, hi = plan.interior
            if op == "coarse":
                # Agglomerate the (tiny) coarsest level on rank 0.
                chunk = f[l][lo:hi]
                gathered = comm.gather((lo, hi, chunk), root=0)
                if comm.rank == 0:
                    full_f = np.zeros(problem.sizes[l])
                    for glo, ghi, vals in gathered:
                        full_f[glo:ghi] = vals
                    full_u = coarse_solve(full_f, h)
                    comm.work(op_flops("coarse", problem.sizes[l]))
                    pieces = [
                        full_u[p[l].lo - 1 : p[l].hi + 1] if p[l].lo < p[l].hi else None
                        for p in plans
                    ]
                else:
                    pieces = None
                mine = comm.scatter(pieces, root=0)
                if mine is not None:
                    u[l][lo - 1 : hi + 1] = mine
                continue
            if op == "smooth":
                _exchange_halo(comm, plan, u[l], problem.sizes[l])
                if lo < hi:
                    u[l][lo:hi] = smooth_window(u[l][lo - 1 : hi + 1], f[l][lo:hi], h)
                    comm.work(op_flops("smooth", hi - lo))
            elif op == "residual":
                _exchange_halo(comm, plan, u[l], problem.sizes[l])
                if lo < hi:
                    r[l][lo:hi] = residual_window(u[l][lo - 1 : hi + 1], f[l][lo:hi], h)
                    comm.work(op_flops("residual", hi - lo))
            elif op == "restrict":
                _exchange_halo(comm, plan, r[l], problem.sizes[l])
                cplan = my[l + 1]
                clo, chi = cplan.interior
                if clo < chi:
                    f[l + 1][clo:chi] = restrict_window(
                        r[l][2 * clo - 1 : 2 * (chi - 1) + 2]
                    )
                    comm.work(op_flops("restrict", chi - clo))
                u[l + 1][:] = 0.0
            elif op == "prolong":
                cplan = my[l + 1]
                if (l + 1) in replicated:
                    # Tiny coarse level: assemble it everywhere.
                    clo, chi = cplan.interior
                    gathered = comm.allgather((clo, chi, u[l + 1][clo:chi]))
                    for glo, ghi, vals in gathered:
                        u[l + 1][glo:ghi] = vals
                    comm.mem_work(problem.sizes[l + 1])
                else:
                    _exchange_halo(comm, cplan, u[l + 1], problem.sizes[l + 1])
                if lo < hi:
                    a, b = lo // 2, (hi - 1) // 2 + 2
                    corr = prolong_window(u[l + 1][a:b], lo, hi - lo)
                    u[l][lo:hi] += corr
                    comm.work(op_flops("prolong", hi - lo))

    lo, hi = my[0].interior
    return lo, hi, u[0][lo:hi]


def mpi_mg_solve(
    problem: MgProblem,
    cluster: Cluster,
    *,
    cycles: int = 8,
    nu1: int = 2,
    nu2: int = 2,
    ranks: int | None = None,
) -> tuple[np.ndarray, float]:
    """Run the MPI V-cycles; returns the finest iterate and time."""
    size = cluster.total_cores if ranks is None else ranks
    plans, replicated = build_level_plans(problem, size)
    res = run_mpi(
        _mg_rank, cluster, problem, plans, replicated, cycles, nu1, nu2, ranks=ranks
    )
    u = np.zeros(problem.n)
    for lo, hi, chunk in res.results:
        u[lo:hi] = chunk
    return u, res.elapsed
