"""PPM implementation of the multigrid V-cycle.

Every grid operation of the flat schedule is one global phase; VPs own
chunks of each level's points (aligned with the shared arrays' block
distribution) and read their one-point halos with plain indexing.
Nothing in the code knows about neighbours, ghost cells or level
repartitioning — the runtime resolves every read.  Note how the
hierarchy shows the model's cost profile: deep levels have almost no
work per phase but still pay the phase synchronisation.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import split_range
from repro.apps.multigrid.problem import (
    MgProblem,
    coarse_solve,
    op_flops,
    prolong_window,
    residual_window,
    restrict_window,
    smooth_window,
    vcycle_schedule,
)
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _mg_kernel(ctx, problem, U, F, R, cycles, nu1, nu2):
    L = problem.levels
    # Interior chunk of each level, inside this VP's node's block.
    chunks = []
    for l in range(L + 1):
        n = problem.sizes[l]
        node_lo, node_hi = U[l].local_range(ctx.node_id)
        ilo, ihi = max(node_lo, 1), min(node_hi, n - 1)
        span = max(0, ihi - ilo)
        lo, hi = split_range(span, ctx.node_vp_count)[ctx.node_rank]
        chunks.append((ilo + lo, ilo + hi))
    schedule = vcycle_schedule(L, nu1=nu1, nu2=nu2)

    for _cycle in range(cycles):
        for op, l in schedule:
            yield ctx.global_phase
            h = problem.h(l)
            if op == "coarse":
                if ctx.global_rank == 0:
                    n = problem.sizes[l]
                    U[l][:] = coarse_solve(F[l][0:n], h)
                    ctx.work(op_flops("coarse", n))
                continue
            if op == "restrict":
                # Operates on the VP's *coarse* chunk (which can be
                # non-empty even when its fine chunk is empty).
                clo, chi = chunks[l + 1]
                if clo < chi:
                    F[l + 1][clo:chi] = restrict_window(
                        R[l][2 * clo - 1 : 2 * (chi - 1) + 2]
                    )
                    U[l + 1][clo:chi] = np.zeros(chi - clo)
                    ctx.work(op_flops("restrict", chi - clo))
                continue
            lo, hi = chunks[l]
            if lo >= hi:
                continue
            if op == "smooth":
                U[l][lo:hi] = smooth_window(U[l][lo - 1 : hi + 1], F[l][lo:hi], h)
            elif op == "residual":
                R[l][lo:hi] = residual_window(U[l][lo - 1 : hi + 1], F[l][lo:hi], h)
            elif op == "prolong":
                a, b = lo // 2, (hi - 1) // 2 + 2
                corr = prolong_window(U[l + 1][a:b], lo, hi - lo)
                U[l].accumulate(np.arange(lo, hi), corr)
            ctx.work(op_flops(op, hi - lo))


def ppm_mg_solve(
    problem: MgProblem,
    cluster: Cluster,
    *,
    cycles: int = 8,
    nu1: int = 2,
    nu2: int = 2,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[np.ndarray, float]:
    """Run the PPM V-cycles; returns the finest iterate and the
    simulated time."""

    def main(ppm):
        L = problem.levels
        U = [ppm.global_shared(f"mg_u{l}", problem.sizes[l]) for l in range(L + 1)]
        F = [ppm.global_shared(f"mg_f{l}", problem.sizes[l]) for l in range(L + 1)]
        R = [ppm.global_shared(f"mg_r{l}", problem.sizes[l]) for l in range(L + 1)]
        F[0][:] = problem.f
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(k, _mg_kernel, problem, U, F, R, cycles, nu1, nu2)
        return U[0].committed

    ppm, u = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    return u, ppm.elapsed
