"""Geometric multigrid (V-cycle) for the 1-D Poisson problem.

"Multi-grid" is on the paper's introduction list of unstructured
applications that motivate PPM.  The V-cycle is a stress test for the
phase model's *hierarchy* handling: every smoothing step, restriction
and prolongation is a data-parallel phase, but the active grid shrinks
by half per level, so deep levels have far less work than the fixed
synchronisation cost — the classic multigrid communication squeeze.

Three forms as usual: a serial reference (verified against the direct
sparse solve), a PPM version (one global phase per grid operation,
halo reads through shared memory), and an MPI baseline (explicit
per-level neighbour halo exchanges).
"""

from repro.apps.multigrid.mpi_mg import mpi_mg_solve
from repro.apps.multigrid.ppm_mg import ppm_mg_solve
from repro.apps.multigrid.problem import MgProblem, build_mg_problem, vcycle_schedule
from repro.apps.multigrid.serial_mg import serial_mg_solve

__all__ = [
    "MgProblem",
    "build_mg_problem",
    "mpi_mg_solve",
    "ppm_mg_solve",
    "serial_mg_solve",
    "vcycle_schedule",
]
