"""Problem setup and the V-cycle operation schedule.

The discrete problem is the standard second-order finite-difference
Poisson equation ``-u'' = f`` on [0, 1] with homogeneous Dirichlet
boundaries: ``(-u[i-1] + 2 u[i] - u[i+1]) / h² = f[i]``.

The V-cycle is expressed as a flat *schedule* of grid operations so
that all three implementations execute the identical op sequence (and
the PPM version can map each op to one phase):

    ("smooth", l)     one weighted-Jacobi sweep on level l
    ("residual", l)   r_l = f_l - A_l u_l
    ("restrict", l)   f_{l+1} = full-weighting(r_l); u_{l+1} = 0
    ("coarse", L)     direct solve on the coarsest level
    ("prolong", l)    u_l += linear-interpolation(u_{l+1})
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

#: Weighted-Jacobi relaxation factor (the textbook 2/3).
JACOBI_WEIGHT = 2.0 / 3.0


@dataclass(frozen=True)
class MgProblem:
    """A Poisson problem with its grid hierarchy metadata."""

    levels: int
    """Number of coarsening steps; level 0 is the finest grid."""

    sizes: tuple[int, ...]
    """Points per level including both boundary points."""

    f: np.ndarray
    """Right-hand side on the finest grid (boundary entries zero)."""

    @property
    def n(self) -> int:
        """Finest-grid point count."""
        return self.sizes[0]

    def h(self, level: int) -> float:
        """Mesh width of ``level``."""
        return 1.0 / (self.sizes[level] - 1)

    def operator(self, level: int = 0) -> sp.csr_matrix:
        """The discrete operator of a level (interior unknowns only);
        used for direct reference solves and residual checks."""
        m = self.sizes[level] - 2
        h2 = self.h(level) ** 2
        return sp.diags(
            [np.full(m - 1, -1.0), np.full(m, 2.0), np.full(m - 1, -1.0)],
            offsets=[-1, 0, 1],
        ).tocsr() / h2


def build_mg_problem(levels: int = 6, *, coarsest: int = 3, seed: int = 7) -> MgProblem:
    """Build a hierarchy with ``2**(levels + log2(coarsest-1)) + 1``
    fine points and a smooth deterministic right-hand side.

    ``coarsest`` is the interior size the coarsest level is allowed
    (default 3 interior points, solved directly).
    """
    if levels < 1:
        raise ValueError(f"levels must be >= 1, got {levels}")
    base = coarsest + 1  # intervals on the coarsest grid
    sizes = tuple(base * 2 ** (levels - l) + 1 for l in range(levels + 1))
    n = sizes[0]
    x = np.linspace(0.0, 1.0, n)
    rng = np.random.default_rng(seed)
    bumps = sum(
        a * np.sin((k + 1) * np.pi * x)
        for k, a in enumerate(rng.uniform(0.5, 1.5, 4))
    )
    f = (np.pi**2) * bumps
    f[0] = f[-1] = 0.0
    return MgProblem(levels=levels, sizes=sizes, f=f)


def vcycle_schedule(levels: int, *, nu1: int = 2, nu2: int = 2) -> list[tuple[str, int]]:
    """Flatten one V-cycle into its operation sequence."""
    ops: list[tuple[str, int]] = []

    def descend(l: int) -> None:
        if l == levels:
            ops.append(("coarse", l))
            return
        for _ in range(nu1):
            ops.append(("smooth", l))
        ops.append(("residual", l))
        ops.append(("restrict", l))
        descend(l + 1)
        ops.append(("prolong", l))
        for _ in range(nu2):
            ops.append(("smooth", l))

    descend(0)
    return ops


# ----------------------------------------------------------------------
# The grid operations, expressed over index windows so that serial,
# PPM and MPI implementations share the identical arithmetic (and
# therefore produce bit-identical iterates).
# ----------------------------------------------------------------------

def smooth_window(u_window: np.ndarray, f_chunk: np.ndarray, h: float) -> np.ndarray:
    """One weighted-Jacobi update for the interior points covered by
    ``u_window[1:-1]`` (the window carries one halo point per side)."""
    h2 = h * h
    au = (-u_window[:-2] + 2.0 * u_window[1:-1] - u_window[2:]) / h2
    return u_window[1:-1] + JACOBI_WEIGHT * (h2 / 2.0) * (f_chunk - au)


def residual_window(u_window: np.ndarray, f_chunk: np.ndarray, h: float) -> np.ndarray:
    """Residual ``f - A u`` for the window's interior points."""
    h2 = h * h
    au = (-u_window[:-2] + 2.0 * u_window[1:-1] - u_window[2:]) / h2
    return f_chunk - au


def restrict_window(r_window: np.ndarray) -> np.ndarray:
    """Full-weighting restriction of fine residuals onto the coarse
    points whose fine images are ``r_window[1:-1:2]``: the window spans
    fine indices ``[2*clo - 1, 2*(chi-1) + 2)`` for coarse chunk
    ``[clo, chi)``."""
    return 0.25 * (r_window[:-2:2] + 2.0 * r_window[1:-1:2] + r_window[2::2])


def prolong_window(uc_window: np.ndarray, fine_lo: int, count: int) -> np.ndarray:
    """Linear-interpolation corrections for ``count`` fine points
    starting at fine index ``fine_lo``; ``uc_window`` must span coarse
    indices ``[fine_lo // 2, (fine_lo + count - 1) // 2 + 2)``."""
    base = fine_lo // 2
    j = fine_lo + np.arange(count)
    even = j % 2 == 0
    ci = j // 2 - base
    out = np.empty(count)
    out[even] = uc_window[ci[even]]
    out[~even] = 0.5 * (uc_window[ci[~even]] + uc_window[ci[~even] + 1])
    return out


def coarse_solve(f_coarse: np.ndarray, h: float) -> np.ndarray:
    """Direct (Thomas) solve of the coarsest level; returns the full
    vector including zero boundaries."""
    m = f_coarse.size - 2
    A = sp.diags(
        [np.full(m - 1, -1.0), np.full(m, 2.0), np.full(m - 1, -1.0)],
        offsets=[-1, 0, 1],
    ).tocsc() / (h * h)
    import scipy.sparse.linalg as spla

    u = np.zeros_like(f_coarse)
    u[1:-1] = spla.spsolve(A, f_coarse[1:-1])
    return u


def op_flops(op: str, interior: int) -> float:
    """Charged flops of one grid operation over ``interior`` points."""
    if op in ("smooth", "residual"):
        return 6.0 * interior
    if op == "restrict":
        return 4.0 * interior
    if op == "prolong":
        return 3.0 * interior
    if op == "coarse":
        return 20.0 * interior  # tridiagonal factor+solve
    raise ValueError(f"unknown multigrid op {op!r}")
