"""The paper's three evaluation applications (section 4).

Each application comes in three forms:

* a **serial reference** (plain numpy/scipy) used to verify numerics;
* a **PPM implementation** using the programming model under study;
* an **MPI implementation** written the way the paper's baselines were
  (explicit neighbour lists, packing/unpacking, collectives).

All three compute the same answer (verified by the test suite); the
PPM and MPI versions additionally report simulated execution time on
the configured machine, which is what the figures compare.
"""

from repro.apps import barneshut, cg, collocation, graph, multigrid, sptrsv  # noqa: F401

__all__ = ["barneshut", "cg", "collocation", "graph", "multigrid", "sptrsv"]
