"""MPI implementation of level-synchronous BFS.

The owner-computes message-passing formulation: each rank owns a block
of the distance array; per level it expands its local frontier, groups
the neighbour updates by owning rank, ships one bundled update list per
destination (counts first, then the vertex lists — user-written
bundling again), applies incoming updates to its own block, and joins
an allreduce on the global frontier size for termination.
"""

from __future__ import annotations

import numpy as np

from repro.apps.graph.generator import Graph
from repro.apps.graph.serial_bfs import UNREACHED
from repro.apps.common import split_range
from repro.machine import Cluster
from repro.mpi import run_mpi

_TAG_COUNT = 31
_TAG_VERTS = 32


def _bfs_rank(comm, graph: Graph, source: int, blocks):
    rank, size = comm.rank, comm.size
    lo, hi = blocks[rank]
    bounds = np.array([b[0] for b in blocks] + [graph.n])
    indptr, indices = graph.indptr, graph.indices

    dist = np.full(hi - lo, UNREACHED, dtype=np.int64)
    if lo <= source < hi:
        dist[source - lo] = 0

    level = 0
    while True:
        frontier = lo + np.nonzero(dist == level)[0]
        # Expand and group neighbour updates by owner.
        if frontier.size:
            spans = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            nbrs = np.unique(np.concatenate(spans))
            comm.work(2 * sum(len(s) for s in spans))
        else:
            nbrs = np.empty(0, dtype=np.int64)
        owners = np.searchsorted(bounds, nbrs, side="right") - 1

        outgoing: dict[int, np.ndarray] = {}
        for peer in range(size):
            sel = nbrs[owners == peer]
            if peer == rank:
                mine = sel
            elif sel.size:
                outgoing[peer] = sel
        comm.mem_work(nbrs.size)  # grouping/packing

        # Post all sends first (counts, then vertex lists), then drain
        # the matching receives — the standard deadlock-free ordering.
        for peer in range(size):
            if peer == rank:
                continue
            comm.send(len(outgoing.get(peer, ())), dest=peer, tag=_TAG_COUNT)
        for peer, verts in outgoing.items():
            comm.send(verts, dest=peer, tag=_TAG_VERTS)
        incoming = [mine] if mine.size else []
        for peer in range(size):
            if peer == rank:
                continue
            count = comm.recv(source=peer, tag=_TAG_COUNT)
            if count == 0:
                continue
            verts = comm.recv(source=peer, tag=_TAG_VERTS)
            incoming.append(verts)

        # Apply updates to my block (min semantics = first visit wins).
        if incoming:
            updates = np.unique(np.concatenate(incoming)) - lo
            fresh = updates[dist[updates] == UNREACHED]
            dist[fresh] = level + 1
            comm.mem_work(len(updates))

        total_frontier = comm.allreduce(int(frontier.size), op="sum")
        if total_frontier == 0:
            return dist
        level += 1


def mpi_bfs(
    graph: Graph,
    source: int,
    cluster: Cluster,
    *,
    ranks: int | None = None,
) -> tuple[np.ndarray, float]:
    """Run the MPI BFS baseline; returns distances and simulated time."""
    size = cluster.total_cores if ranks is None else ranks
    blocks = split_range(graph.n, size)
    res = run_mpi(_bfs_rank, cluster, graph, source, blocks, ranks=ranks)
    return np.concatenate(res.results), res.elapsed
