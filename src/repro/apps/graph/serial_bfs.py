"""Serial reference breadth-first search."""

from __future__ import annotations

import numpy as np

from repro.apps.graph.generator import Graph

#: Distance assigned to vertices the search never reaches.
UNREACHED = np.iinfo(np.int64).max


def serial_bfs(graph: Graph, source: int) -> np.ndarray:
    """Level-synchronous BFS; returns the distance of every vertex
    from ``source`` (``UNREACHED`` where disconnected)."""
    if not 0 <= source < graph.n:
        raise ValueError(f"source {source} out of range [0, {graph.n})")
    dist = np.full(graph.n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        nbrs_list = [graph.neighbors(v) for v in frontier]
        nbrs = np.unique(np.concatenate(nbrs_list)) if nbrs_list else np.empty(0, np.int64)
        fresh = nbrs[dist[nbrs] == UNREACHED]
        dist[fresh] = level + 1
        frontier = fresh
        level += 1
    return dist
