"""Deterministic sparse graph generation.

Graphs are built from the repository's SplitMix64 hash, so every
implementation (and every test run) sees the identical structure
without carrying adjacency data around.  Each vertex draws ``degree``
pseudo-random out-neighbours; edges are symmetrised, self-loops and
duplicates removed, and the result stored in CSR form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.apps.common import hash_u64


@dataclass(frozen=True)
class Graph:
    """An undirected graph in CSR adjacency form."""

    indptr: np.ndarray
    indices: np.ndarray
    n: int

    @property
    def n_edges(self) -> int:
        """Undirected edge count."""
        return int(self.indices.size) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Adjacency list of vertex ``v``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def degree(self) -> np.ndarray:
        """Degree of every vertex."""
        return np.diff(self.indptr)


def hashed_graph(n: int, degree: int = 4, *, seed: int = 1) -> Graph:
    """Build a deterministic pseudo-random graph.

    Every vertex draws ``degree`` hash-derived neighbours (plus the
    reverse edges), giving an expander-like structure with small
    diameter — the worst case for BFS communication, since frontiers
    touch most nodes of the cluster within a few levels.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    src = np.repeat(np.arange(n, dtype=np.int64), degree)
    k = np.tile(np.arange(degree, dtype=np.int64), n)
    with np.errstate(over="ignore"):
        key = (
            src.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
            + k.astype(np.uint64) * np.uint64(0xC2B2AE3D27D4EB4F)
            + np.uint64(seed)
        )
    dst = (hash_u64(key) % np.uint64(n)).astype(np.int64)
    keep = src != dst  # no self-loops
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    adj = sp.coo_matrix(
        (np.ones(rows.size, dtype=np.int8), (rows, cols)), shape=(n, n)
    ).tocsr()
    adj.data[:] = 1  # collapse duplicate edges
    adj.sum_duplicates()
    adj.sort_indices()
    return Graph(indptr=adj.indptr.astype(np.int64), indices=adj.indices.astype(np.int64), n=n)


def to_networkx(graph: Graph):
    """Convert to a networkx Graph (verification helper)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    for v in range(graph.n):
        for w in graph.neighbors(v):
            g.add_edge(v, int(w))
    return g
