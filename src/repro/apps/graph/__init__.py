"""Graph application: level-synchronous breadth-first search.

The paper's introduction names graph algorithms first among the
unstructured applications that "inherently require high-volume random
fine-grained communication" and motivate PPM.  This package adds a
BFS in the same three forms as the evaluation applications: a serial
reference (verified against networkx), a PPM version (frontier
expansion as one global phase per level, neighbour updates as
combining ``minimum`` writes), and an MPI baseline (owner-directed
update messages with explicit bundling).
"""

from repro.apps.graph.generator import hashed_graph, to_networkx
from repro.apps.graph.mpi_bfs import mpi_bfs
from repro.apps.graph.ppm_bfs import ppm_bfs
from repro.apps.graph.serial_bfs import UNREACHED, serial_bfs

__all__ = [
    "UNREACHED",
    "hashed_graph",
    "mpi_bfs",
    "ppm_bfs",
    "serial_bfs",
    "to_networkx",
]
