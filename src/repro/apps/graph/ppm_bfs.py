"""PPM implementation of level-synchronous BFS.

One global phase per BFS level: each VP scans its owned slice of the
distance array for current-frontier vertices, then posts combining
``minimum`` writes to every neighbour — fine-grained, data-driven,
graph-structured traffic that the runtime deduplicates and bundles.
A phase reduction of the frontier size drives termination.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.apps.graph.generator import Graph
from repro.apps.graph.serial_bfs import UNREACHED
from repro.apps.common import split_range
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _bfs_kernel(ctx, graph, DIST):
    node_lo, node_hi = DIST.local_range(ctx.node_id)
    lo, hi = split_range(node_hi - node_lo, ctx.node_vp_count)[ctx.node_rank]
    lo, hi = node_lo + lo, node_lo + hi
    indptr, indices = graph.indptr, graph.indices

    handle = None
    for level in itertools.count():
        yield ctx.global_phase
        if handle is not None and handle.value == 0:
            return  # previous level's global frontier was empty
        mine = DIST[lo:hi]
        frontier = lo + np.nonzero(mine == level)[0]
        if frontier.size:
            spans = [indices[indptr[v] : indptr[v + 1]] for v in frontier]
            nbrs = np.unique(np.concatenate(spans))
            DIST.accumulate(nbrs, np.full(nbrs.size, level + 1), op="minimum")
            ctx.work(2 * sum(len(s) for s in spans))
        handle = ctx.reduce(int(frontier.size), "sum")


def ppm_bfs(
    graph: Graph,
    source: int,
    cluster: Cluster,
    *,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[np.ndarray, float]:
    """Run the PPM BFS; returns distances and the simulated time."""

    def main(ppm):
        DIST = ppm.global_shared("bfs_dist", graph.n, dtype=np.int64, fill=UNREACHED)
        DIST[source] = 0
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(k, _bfs_kernel, graph, DIST)
        return DIST.committed

    ppm, dist = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    return dist, ppm.elapsed
