"""Serial reference forward substitution (row-wise and by levels)."""

from __future__ import annotations

import numpy as np

from repro.apps.sptrsv.problem import TrsvProblem


def serial_trsv(problem: TrsvProblem) -> np.ndarray:
    """Solve ``L x = b`` by level-ordered forward substitution.

    Iterating wavefront-by-wavefront (rather than row-by-row) gives the
    exact floating-point evaluation order the parallel versions use, so
    their results compare bit-for-bit.
    """
    L, b = problem.L, problem.b
    indptr, indices, data = L.indptr, L.indices, L.data
    x = np.zeros(problem.n)
    for level in range(problem.n_levels):
        for i in problem.rows_of_level(level):
            start, end = indptr[i], indptr[i + 1]
            cols = indices[start:end]
            vals = data[start:end]
            off = cols < i
            s = float(vals[off] @ x[cols[off]])
            diag = vals[~off][0]
            x[i] = (b[i] - s) / diag
    return x
