"""MPI implementation of the level-scheduled triangular solve.

This is the kernel the paper's reference [20] made famous as a
message-passing bottleneck.  The tuned structure: a precomputed
communication plan says, for every wavefront level, which freshly
solved entries each rank must push to which peers (and which to
expect); the solve loop interleaves local wavefront solves with packed
value pushes and blocking receives, all tagged by level.  The plan
construction and the push/stash choreography below are exactly the
code PPM makes disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.common import split_range
from repro.apps.sptrsv.problem import TrsvProblem
from repro.machine import Cluster
from repro.mpi import run_mpi

_TAG_BASE = 40


@dataclass
class _TrsvPlan:
    """One rank's solve and communication schedule."""

    lo: int
    hi: int
    rows_by_level: list[np.ndarray]
    send_plan: list[dict[int, np.ndarray]] = field(default_factory=list)
    recv_plan: list[dict[int, np.ndarray]] = field(default_factory=list)


def build_trsv_plans(problem: TrsvProblem, size: int) -> list[_TrsvPlan]:
    """Precompute every rank's wavefront and push schedules (setup,
    untimed — tuned codes amortise this over many solves)."""
    n = problem.n
    blocks = split_range(n, size)
    bounds = np.array([b[0] for b in blocks] + [n])
    owner_of = lambda rows: np.searchsorted(bounds, rows, side="right") - 1
    n_levels = problem.n_levels
    indptr, indices = problem.L.indptr, problem.L.indices

    plans = [
        _TrsvPlan(
            lo=blocks[r][0],
            hi=blocks[r][1],
            rows_by_level=[
                problem.rows_of_level(l)[
                    (problem.rows_of_level(l) >= blocks[r][0])
                    & (problem.rows_of_level(l) < blocks[r][1])
                ]
                for l in range(n_levels)
            ],
            send_plan=[{} for _ in range(n_levels)],
            recv_plan=[{} for _ in range(n_levels)],
        )
        for r in range(size)
    ]

    # Cross-rank dependencies: consumer rank c needs x[j] (owned by
    # producer p, solved at level[j]) — p pushes it right after that
    # level; deduplicate per (p, c, level).
    needed: dict[tuple[int, int, int], set[int]] = {}
    for i in range(n):
        c = int(owner_of(np.array([i]))[0])
        deps = indices[indptr[i] : indptr[i + 1]]
        deps = deps[deps < i]
        for j in deps:
            p = int(owner_of(np.array([j]))[0])
            if p == c:
                continue
            lv = int(problem.levels[j])
            needed.setdefault((p, c, lv), set()).add(int(j))
    for (p, c, lv), rows in needed.items():
        arr = np.array(sorted(rows), dtype=np.int64)
        plans[p].send_plan[lv][c] = arr
        plans[c].recv_plan[lv][p] = arr
    return plans


def _trsv_rank(comm, problem: TrsvProblem, plans):
    plan: _TrsvPlan = plans[comm.rank]
    L, b = problem.L, problem.b
    indptr, indices, data = L.indptr, L.indices, L.data
    # Full-length working vector: own entries plus stashed halo values.
    x = np.zeros(problem.n)

    for level in range(problem.n_levels):
        rows = plan.rows_by_level[level]
        flops = 0
        for i in rows:
            cols = indices[indptr[i] : indptr[i + 1]]
            vals = data[indptr[i] : indptr[i + 1]]
            off = cols < i
            s = float(vals[off] @ x[cols[off]])
            x[i] = (b[i] - s) / vals[~off][0]
            flops += 2 * int(off.sum()) + 2
        comm.work(flops)

        # Push freshly solved values to every consumer (pack cost),
        # then stash the values peers solved this level.
        for peer, out_rows in plan.send_plan[level].items():
            comm.mem_work(out_rows.size)
            comm.send(x[out_rows], dest=peer, tag=_TAG_BASE + level)
        for peer, in_rows in plan.recv_plan[level].items():
            vals = comm.recv(source=peer, tag=_TAG_BASE + level)
            x[in_rows] = vals
            comm.mem_work(in_rows.size)

    return x[plan.lo : plan.hi]


def mpi_trsv(
    problem: TrsvProblem,
    cluster: Cluster,
    *,
    ranks: int | None = None,
) -> tuple[np.ndarray, float]:
    """Solve with the MPI baseline; returns x and simulated time."""
    size = cluster.total_cores if ranks is None else ranks
    plans = build_trsv_plans(problem, size)
    res = run_mpi(_trsv_rank, cluster, problem, plans, ranks=ranks)
    return np.concatenate(res.results), res.elapsed
