"""PPM implementation of the level-scheduled triangular solve.

One global phase per wavefront level: every VP solves its own rows of
that level, reading the dependency entries of ``x`` — solution values
committed on earlier wavefronts, scattered across the cluster — with
plain array indexing that the runtime bundles.  The code is a direct
transcription of the mathematical recurrence; there is no trace of the
communication choreography that makes the MPI version of this kernel
notorious ([20]).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import split_range
from repro.apps.sptrsv.problem import TrsvProblem
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _trsv_kernel(ctx, problem, X):
    node_lo, node_hi = X.local_range(ctx.node_id)
    lo, hi = split_range(node_hi - node_lo, ctx.node_vp_count)[ctx.node_rank]
    lo, hi = node_lo + lo, node_lo + hi
    L, b, levels = problem.L, problem.b, problem.levels
    indptr, indices, data = L.indptr, L.indices, L.data
    my_rows_by_level = [
        rows[(rows >= lo) & (rows < hi)]
        for rows in (problem.rows_of_level(l) for l in range(problem.n_levels))
    ]

    for level in range(problem.n_levels):
        yield ctx.global_phase
        rows = my_rows_by_level[level]
        if rows.size == 0:
            continue
        # Dependency footprint: each row's off-diagonal columns (all
        # solved on strictly earlier wavefronts).
        spans = [
            indices[indptr[i] : indptr[i + 1]][indices[indptr[i] : indptr[i + 1]] < i]
            for i in rows
        ]
        deps = np.unique(np.concatenate(spans)) if spans else np.empty(0, np.int64)
        lookup = X[deps] if deps.size else np.empty(0)
        x_new = np.empty(rows.size)
        flops = 0
        for k, i in enumerate(rows):
            cols = indices[indptr[i] : indptr[i + 1]]
            vals = data[indptr[i] : indptr[i + 1]]
            off = cols < i
            s = float(vals[off] @ lookup[np.searchsorted(deps, cols[off])])
            x_new[k] = (b[i] - s) / vals[~off][0]
            flops += 2 * int(off.sum()) + 2
        X[rows] = x_new
        ctx.work(flops)


def ppm_trsv(
    problem: TrsvProblem,
    cluster: Cluster,
    *,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[np.ndarray, float]:
    """Solve with PPM on the cluster; returns x and simulated time."""

    def main(ppm):
        X = ppm.global_shared("trsv_x", problem.n)
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(k, _trsv_kernel, problem, X)
        return X.committed

    ppm, x = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    return x, ppm.elapsed
