"""Triangular system construction and level scheduling."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.apps.cg.problem import build_chimney_problem


@dataclass(frozen=True)
class TrsvProblem:
    """A lower-triangular system ``L x = b`` with its wavefront
    schedule."""

    L: sp.csr_matrix
    b: np.ndarray
    levels: np.ndarray
    """Dependency level of every row (0 = no off-diagonal deps)."""

    @property
    def n(self) -> int:
        return self.L.shape[0]

    @property
    def n_levels(self) -> int:
        return int(self.levels.max()) + 1 if self.levels.size else 0

    def rows_of_level(self, level: int) -> np.ndarray:
        """Rows solvable on the given wavefront."""
        return np.nonzero(self.levels == level)[0]


def level_schedule(L: sp.csr_matrix) -> np.ndarray:
    """Wavefront levels of a lower-triangular CSR matrix.

    ``level[i] = 1 + max(level[j])`` over the off-diagonal dependencies
    ``j < i`` of row ``i`` (0 when the row only touches its diagonal).
    One increasing-row pass suffices because dependencies always point
    backwards in a lower-triangular matrix.
    """
    n = L.shape[0]
    levels = np.zeros(n, dtype=np.int64)
    indptr, indices = L.indptr, L.indices
    for i in range(n):
        deps = indices[indptr[i] : indptr[i + 1]]
        deps = deps[deps < i]
        if deps.size:
            levels[i] = levels[deps].max() + 1
    return levels


def build_trsv_problem(nx: int, *, seed: int = 2009) -> TrsvProblem:
    """Lower-triangular factor of the CG application's 27-point stencil
    matrix (the incomplete-factorisation structure of [20]) plus a
    deterministic right-hand side."""
    cg = build_chimney_problem(nx, seed=seed)
    lower = sp.tril(cg.A, k=0, format="csr")
    lower.sort_indices()
    levels = level_schedule(lower)
    return TrsvProblem(L=lower, b=cg.b.copy(), levels=levels)
