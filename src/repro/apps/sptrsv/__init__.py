"""Sparse triangular solve (level-scheduled forward substitution).

The paper's introduction cites Rothberg and Gupta's parallel ICCG
triangular-solve bottleneck [20] as the canonical application "so
difficult to implement efficiently that they are considered unsuitable
for MPI parallel programming".  This package reproduces that workload:
the lower-triangular factor of the CG application's stencil matrix,
solved by wavefront (level) scheduling — rows of one dependency level
solve concurrently, each needing fine-grained random reads of solution
entries produced on earlier levels, usually on other nodes.
"""

from repro.apps.sptrsv.mpi_trsv import mpi_trsv
from repro.apps.sptrsv.ppm_trsv import ppm_trsv
from repro.apps.sptrsv.problem import TrsvProblem, build_trsv_problem, level_schedule
from repro.apps.sptrsv.serial_trsv import serial_trsv

__all__ = [
    "TrsvProblem",
    "build_trsv_problem",
    "level_schedule",
    "mpi_trsv",
    "ppm_trsv",
    "serial_trsv",
]
