"""Serial reference for the multiscale matrix generation."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.apps.collocation.multiscale import MultiscaleProblem


def serial_generate(problem: MultiscaleProblem) -> sp.coo_matrix:
    """Generate the full sparse matrix directly.

    Iterates the levels like the parallel versions: evaluate level
    ``l``'s cache table, then assemble every nonzero whose column
    lives at level ``l``.
    """
    rows_all = np.arange(problem.n, dtype=np.int64)
    out_r: list[np.ndarray] = []
    out_c: list[np.ndarray] = []
    out_v: list[np.ndarray] = []
    for level in range(problem.config.levels + 1):
        lo = int(problem.cache_offsets[level])
        hi = int(problem.cache_offsets[level + 1])
        cache = problem.cache_values(np.arange(lo, hi, dtype=np.int64))
        r, c, cache_idx, coeffs, _j = problem.row_entries(rows_all, level)
        if r.size == 0:
            continue
        vals = (coeffs * cache[cache_idx - lo]).sum(axis=1)
        out_r.append(r)
        out_c.append(c)
        out_v.append(vals)
    return sp.coo_matrix(
        (np.concatenate(out_v), (np.concatenate(out_r), np.concatenate(out_c))),
        shape=(problem.n, problem.n),
    )
