"""Application 2 (paper section 4.3): sparse matrix generation for a
multi-scale collocation method.

"Every non-zero entry of the generated matrix is a linear combination
of multiple functions' values at multiple collocation points.  The
evaluation of these function values involves numerical integrations of
very high computational complexity.  To reduce the computational cost,
the algorithm iterates through multiple levels of computation, on each
of which the intermediate results of the numerical integrations are
stored as global data, and then very randomly accessed in the patterns
determined by the linear combinations as well as the non-zero pattern
of the sparse matrix."  (Chen, Wu, Xu [6] is the method's source.)
"""

from repro.apps.collocation.mpi_gen import mpi_generate
from repro.apps.collocation.multiscale import CollocationConfig, MultiscaleProblem
from repro.apps.collocation.ppm_gen import ppm_generate
from repro.apps.collocation.serial_gen import serial_generate

__all__ = [
    "CollocationConfig",
    "MultiscaleProblem",
    "mpi_generate",
    "ppm_generate",
    "serial_generate",
]
