"""Multiscale collocation discretisation of a weakly singular
Fredholm integral equation of the second kind.

The structure follows the fast collocation method of Chen, Wu and Xu
[6]: basis functions and collocation functionals organised in dyadic
levels 0..L (level ``l`` holds ``2**l`` functions), a truncation
strategy that keeps fewer couplings between distant levels (giving the
method its near-linear nonzero count), and entry values assembled as
linear combinations of *cached* kernel integrals.

The cached integral is computed for real — a Gauss-Legendre quadrature
of ``integral(s) = ∫ |s - t|^{-1/2} φ(t) dt`` for a level-scaled hat
function φ — and the selection of collocation points, supports,
combination terms and coefficients is derived from a deterministic
SplitMix64 hash so that serial, PPM and MPI implementations compute
bit-identical matrices.

Substitution note (see DESIGN.md): the paper's instance uses the full
multi-dimensional integration of [6], far costlier per cache entry
than our 1-D quadrature; ``quad_cost_factor`` scales the *charged*
flops to restore the paper's compute/communication ratio while the
numerics stay real and verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.common import hash_u64, hash_unit

_P_ROW = np.uint64(0x9E3779B97F4A7C15)
_P_LEVEL = np.uint64(0xC2B2AE3D27D4EB4F)
_P_TERM = np.uint64(0x165667B19E3779F9)


@dataclass(frozen=True)
class CollocationConfig:
    """Parameters of the multiscale generation workload."""

    levels: int = 8
    """Finest level L; the matrix has ``2**(L+1) - 1`` rows/columns."""

    n_terms: int = 8
    """Cached integrals combined per nonzero entry (the "linear
    combination of multiple functions' values")."""

    base_cols: int = 4
    """Couplings a row has with its own level; the count halves per
    level of distance (the truncation strategy)."""

    quad_points: int = 32
    """Gauss-Legendre points per cached integral."""

    quad_cost_factor: float = 10.0
    """Charged-flop multiplier standing in for the full method's
    high-complexity integration."""

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError(f"levels must be >= 1, got {self.levels}")
        if self.n_terms < 1:
            raise ValueError(f"n_terms must be >= 1, got {self.n_terms}")
        if self.base_cols < 1:
            raise ValueError(f"base_cols must be >= 1, got {self.base_cols}")
        if self.quad_points < 2:
            raise ValueError(f"quad_points must be >= 2, got {self.quad_points}")


class MultiscaleProblem:
    """Index arithmetic, sparsity pattern and cache evaluation."""

    def __init__(self, config: CollocationConfig | None = None) -> None:
        self.config = config or CollocationConfig()
        L = self.config.levels
        # Functions of level l occupy ids [2**l - 1, 2**(l+1) - 1).
        self.level_offsets = np.array([2**l - 1 for l in range(L + 2)], dtype=np.int64)
        self.n = int(self.level_offsets[-1])
        # Cache table of level l: 2 * 2**l + 8 integrals.
        sizes = [2 * 2**l + 8 for l in range(L + 1)]
        self.cache_offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        self.cache_total = int(self.cache_offsets[-1])
        self._gauss_x, self._gauss_w = np.polynomial.legendre.leggauss(
            self.config.quad_points
        )

    # ------------------------------------------------------------------
    # Index arithmetic
    # ------------------------------------------------------------------
    def level_of(self, ids: np.ndarray | int) -> np.ndarray | int:
        """Level of basis/collocation function id(s)."""
        scalar = np.isscalar(ids)
        arr = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        lv = np.searchsorted(self.level_offsets, arr, side="right") - 1
        return int(lv[0]) if scalar else lv

    def level_width(self, level: int) -> int:
        """Functions at ``level``."""
        return 2**level

    def cache_size(self, level: int) -> int:
        """Cache-table entries of ``level``."""
        return int(self.cache_offsets[level + 1] - self.cache_offsets[level])

    def cache_level_of(self, gidx: np.ndarray) -> np.ndarray:
        """Level owning each global cache index."""
        return np.searchsorted(self.cache_offsets, gidx, side="right") - 1

    # ------------------------------------------------------------------
    # Sparsity pattern + combination terms (pure index hashing)
    # ------------------------------------------------------------------
    def row_entries(self, rows: np.ndarray, col_level: int):
        """The nonzeros of ``rows`` whose *columns* live at
        ``col_level``, with their combination terms.

        Returns ``(row_ids, col_ids, cache_idx, coeffs, slot_j)``
        where ``cache_idx``/``coeffs`` have shape ``(nnz, n_terms)``,
        ``cache_idx`` holds *global* cache indices (all at
        ``col_level`` — each level's pass touches only that level's
        cache, as the paper describes), and ``slot_j`` is each entry's
        within-(row, level) ordinal, giving every nonzero a canonical
        dense slot ``(row, col_level * base_cols + slot_j)``.
        """
        cfg = self.config
        rows = np.asarray(rows, dtype=np.int64)
        row_levels = np.asarray(self.level_of(rows))
        dist = np.abs(row_levels - col_level)
        k = cfg.base_cols >> dist  # truncation: halve per level distance
        out_rows = []
        out_cols = []
        out_j = []
        width = self.level_width(col_level)
        for j in range(cfg.base_cols):
            mask = k > j
            if not mask.any():
                continue
            r = rows[mask]
            with np.errstate(over="ignore"):
                h = hash_u64(
                    r.astype(np.uint64) * _P_ROW
                    + np.uint64(col_level) * _P_LEVEL
                    + np.uint64(j)
                )
            c = self.level_offsets[col_level] + (h % np.uint64(width)).astype(np.int64)
            out_rows.append(r)
            out_cols.append(c)
            out_j.append(np.full(r.shape, j, dtype=np.int64))
        if not out_rows:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                empty,
                empty.reshape(0, cfg.n_terms),
                np.empty((0, cfg.n_terms)),
                empty,
            )
        row_ids = np.concatenate(out_rows)
        col_ids = np.concatenate(out_cols)
        slot_j = np.concatenate(out_j)
        # Combination terms: n_terms cache entries of col_level plus
        # hash-derived coefficients.
        t = np.arange(cfg.n_terms, dtype=np.uint64)
        with np.errstate(over="ignore"):
            key = (
                row_ids.astype(np.uint64)[:, None] * _P_ROW
                + col_ids.astype(np.uint64)[:, None] * _P_LEVEL
                + t[None, :] * _P_TERM
            )
        h = hash_u64(key)
        csize = np.uint64(self.cache_size(col_level))
        cache_idx = int(self.cache_offsets[col_level]) + (h % csize).astype(np.int64)
        coeffs = hash_unit(h ^ _P_TERM) - 0.5
        return row_ids, col_ids, cache_idx, coeffs, slot_j

    def row_nnz_upper_bound(self) -> int:
        """Upper bound of nonzeros per row (all levels)."""
        return self.config.base_cols * (self.config.levels + 1)

    # ------------------------------------------------------------------
    # Cache evaluation (real quadrature)
    # ------------------------------------------------------------------
    def cache_values(self, gidx: np.ndarray) -> np.ndarray:
        """Evaluate the cached kernel integrals for global cache
        indices ``gidx`` (vectorised Gauss-Legendre quadrature of the
        weakly singular kernel against level-scaled hat functions)."""
        gidx = np.asarray(gidx, dtype=np.int64)
        levels = self.cache_level_of(gidx)
        local = gidx - self.cache_offsets[levels]
        with np.errstate(over="ignore"):
            key = gidx.astype(np.uint64) * _P_TERM
        s = hash_unit(key)  # collocation point
        center = hash_unit(key ^ _P_ROW)
        halfw = 0.5 ** (levels.astype(np.float64) + 1.0)
        lo = np.clip(center - halfw, 0.0, 1.0)
        hi = np.clip(center + halfw, 0.0, 1.0)
        # Map Gauss nodes onto each support [lo, hi].
        mid = 0.5 * (lo + hi)
        half = 0.5 * (hi - lo)
        t = mid[:, None] + half[:, None] * self._gauss_x[None, :]
        # Hat function peaked at the centre of the support.
        phi = np.maximum(0.0, 1.0 - np.abs(t - center[:, None]) / np.maximum(halfw[:, None], 1e-300))
        kernel = 1.0 / np.sqrt(np.abs(s[:, None] - t) + 1e-12)
        vals = (self._gauss_w[None, :] * phi * kernel).sum(axis=1) * half
        # Tiny level-dependent shift keeps values distinct across
        # levels even when supports clip identically.
        return vals + 1e-3 * local.astype(np.float64) / np.maximum(self.cache_size(0), 1)

    def quad_flops(self, n_entries: int) -> float:
        """Charged flops for evaluating ``n_entries`` cache values."""
        per_entry = 8.0 * self.config.quad_points * self.config.quad_cost_factor
        return per_entry * n_entries

    def combine_flops(self, nnz: int) -> float:
        """Charged flops for combining cached values into ``nnz``
        entries."""
        return 2.0 * self.config.n_terms * nnz


def slots_to_coo(problem: MultiscaleProblem, vals: np.ndarray):
    """Assemble a canonical slot array (one column per (level, j)
    ordinal) into a COO matrix by regenerating the deterministic
    sparsity pattern.  Shared by the PPM and MPI generators."""
    import scipy.sparse as sp

    base = problem.config.base_cols
    rows_all = np.arange(problem.n, dtype=np.int64)
    out_r, out_c, out_v = [], [], []
    for level in range(problem.config.levels + 1):
        r, c, _ci, _co, slot_j = problem.row_entries(rows_all, level)
        if r.size == 0:
            continue
        out_r.append(r)
        out_c.append(c)
        out_v.append(vals[r, level * base + slot_j])
    return sp.coo_matrix(
        (np.concatenate(out_v), (np.concatenate(out_r), np.concatenate(out_c))),
        shape=(problem.n, problem.n),
    )
