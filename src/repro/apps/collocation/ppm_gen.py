"""PPM implementation of the multiscale matrix generation.

Structure per level (exactly the paper's description):

1. a global phase computing the level's cache of kernel integrals —
   "the intermediate results of the numerical integrations are stored
   as global data" — each VP filling the part of the distributed cache
   its node owns;
2. a global phase assembling every nonzero whose column lives at that
   level — "then very randomly accessed in the patterns determined by
   the linear combinations" — each VP gathering the (mostly remote)
   cache entries its rows' combinations touch.  The PPM runtime
   bundles these fine-grained random reads automatically.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.apps.collocation.multiscale import MultiscaleProblem, slots_to_coo
from repro.apps.common import split_range
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _gen_kernel(ctx, problem, CACHE, VALS):
    # Private prologue: this VP's row chunk and cache chunk, both
    # aligned with the arrays' node-block distribution.
    row_lo, row_hi = VALS.local_range(ctx.node_id)
    rlo, rhi = split_range(row_hi - row_lo, ctx.node_vp_count)[ctx.node_rank]
    my_rows = np.arange(row_lo + rlo, row_lo + rhi, dtype=np.int64)
    cache_lo, cache_hi = CACHE.local_range(ctx.node_id)
    clo, chi = split_range(cache_hi - cache_lo, ctx.node_vp_count)[ctx.node_rank]
    clo, chi = cache_lo + clo, cache_lo + chi
    base = problem.config.base_cols

    for level in range(problem.config.levels + 1):
        yield ctx.global_phase
        # Cache phase: evaluate my slice of this level's table.
        lo = max(clo, int(problem.cache_offsets[level]))
        hi = min(chi, int(problem.cache_offsets[level + 1]))
        if lo < hi:
            idx = np.arange(lo, hi, dtype=np.int64)
            CACHE[idx] = problem.cache_values(idx)
            ctx.work(problem.quad_flops(hi - lo))

        yield ctx.global_phase
        # Assembly phase: combine cached integrals into my rows'
        # entries at this column level.
        r, _c, cache_idx, coeffs, slot_j = problem.row_entries(my_rows, level)
        if r.size == 0:
            continue
        # row_entries draws r from my_rows, so this is an identity; it
        # re-expresses the rows through the contiguous arange so the
        # static verifier can prove the write stays in this VP's chunk.
        r = my_rows[r - my_rows[0]]
        uniq, inv = np.unique(cache_idx, return_inverse=True)
        cached = CACHE[uniq]
        vals = (coeffs * cached[inv].reshape(cache_idx.shape)).sum(axis=1)
        VALS[r, level * base + slot_j] = vals
        ctx.work(problem.combine_flops(r.size))


def ppm_generate(
    problem: MultiscaleProblem,
    cluster: Cluster,
    *,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[sp.coo_matrix, float]:
    """Generate the matrix with PPM on the given cluster.

    Returns the assembled sparse matrix and the simulated generation
    time.
    """

    def main(ppm):
        CACHE = ppm.global_shared("msc_cache", problem.cache_total)
        VALS = ppm.global_shared(
            "msc_vals",
            (problem.n, problem.config.base_cols * (problem.config.levels + 1)),
        )
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(k, _gen_kernel, problem, CACHE, VALS)
        return VALS.committed

    ppm, vals = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    matrix = slots_to_coo(problem, vals)
    return matrix, ppm.elapsed
