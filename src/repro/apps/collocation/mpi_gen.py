"""MPI implementation of the multiscale matrix generation.

The message-passing counterpart of :mod:`repro.apps.collocation.ppm_gen`:
the cache tables are block-distributed over the ranks, and every
level's random accesses become an explicit request/reply protocol that
the application must write itself —

1. deduplicate the cache indices this rank's rows need and split them
   by owning rank;
2. tell every peer how many indices are coming (count exchange — a
   receiver cannot size its buffers otherwise);
3. ship the index lists, receive the peers' lists;
4. serve each incoming list from the local cache slice and ship the
   values back;
5. receive the value buffers and unpack them into a lookup aligned
   with the deduplicated index order.

All of this bundling/unbundling is user code here; in PPM the runtime
does it (paper section 4.6: "the MPI programs include very significant
codes in bundling and unbundling fine-grained communication
messages").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.apps.collocation.multiscale import MultiscaleProblem, slots_to_coo
from repro.apps.common import split_range
from repro.machine import Cluster
from repro.mpi import run_mpi

_TAG_COUNT = 21
_TAG_INDEX = 22
_TAG_VALUE = 23


def _exchange_cache_values(comm, uniq, owners, local_cache, cache_lo):
    """The request/reply protocol: fetch the cache values for the
    deduplicated global indices ``uniq`` from their owning ranks.

    Returns the values aligned with ``uniq``.
    """
    rank, size = comm.rank, comm.size
    values = np.empty(uniq.size)

    # Build per-owner request lists (packing).
    requests: dict[int, np.ndarray] = {}
    positions: dict[int, np.ndarray] = {}
    for peer in range(size):
        sel = np.nonzero(owners == peer)[0]
        if sel.size == 0:
            continue
        positions[peer] = sel
        requests[peer] = uniq[sel]
    comm.mem_work(uniq.size)

    # Serve myself without messaging.
    if rank in requests:
        values[positions[rank]] = local_cache[requests[rank] - cache_lo]

    # Round 0: counts, so receivers can size buffers (the classic
    # MPI_Alltoall over the request-count vector).
    counts_out = [
        len(requests.get(peer, ())) if peer != rank else 0 for peer in range(size)
    ]
    counts_in = comm.alltoall(counts_out)
    incoming_counts = {
        peer: counts_in[peer] for peer in range(size) if peer != rank
    }

    # Round 1: ship index lists.
    for peer, req in requests.items():
        if peer != rank:
            comm.send(req, dest=peer, tag=_TAG_INDEX)
    incoming_requests = {}
    for peer, count in incoming_counts.items():
        if count == 0:
            continue
        req = comm.recv(source=peer, tag=_TAG_INDEX)
        if len(req) != count:
            raise RuntimeError(
                f"request length mismatch from rank {peer}: "
                f"got {len(req)}, expected {count}"
            )
        incoming_requests[peer] = req

    # Round 2: serve and ship values back.
    served = 0
    for peer, req in incoming_requests.items():
        reply = local_cache[req - cache_lo]
        served += reply.size
        comm.send(reply, dest=peer, tag=_TAG_VALUE)
    comm.mem_work(served)

    for peer, sel in positions.items():
        if peer == rank:
            continue
        reply = comm.recv(source=peer, tag=_TAG_VALUE)
        values[sel] = reply  # unpack
    comm.mem_work(uniq.size)
    return values


def _gen_rank(comm, problem: MultiscaleProblem, cache_blocks, row_blocks):
    rank, size = comm.rank, comm.size
    cache_lo, cache_hi = cache_blocks[rank]
    row_lo, row_hi = row_blocks[rank]
    my_rows = np.arange(row_lo, row_hi, dtype=np.int64)
    cache_bounds = np.array([b[0] for b in cache_blocks] + [problem.cache_total])

    base = problem.config.base_cols
    local_cache = np.zeros(cache_hi - cache_lo)
    vals_local = np.zeros((row_hi - row_lo, base * (problem.config.levels + 1)))

    for level in range(problem.config.levels + 1):
        # Evaluate my slice of this level's cache table.
        lo = max(cache_lo, int(problem.cache_offsets[level]))
        hi = min(cache_hi, int(problem.cache_offsets[level + 1]))
        if lo < hi:
            idx = np.arange(lo, hi, dtype=np.int64)
            local_cache[lo - cache_lo : hi - cache_lo] = problem.cache_values(idx)
            comm.work(problem.quad_flops(hi - lo))
        # Everyone's cache slice must be ready before requests arrive.
        comm.barrier()

        # Which cache entries do my rows need, and who owns them?
        r, _c, cache_idx, coeffs, slot_j = problem.row_entries(my_rows, level)
        uniq = np.unique(cache_idx)
        owners = np.searchsorted(cache_bounds, uniq, side="right") - 1

        values = _exchange_cache_values(comm, uniq, owners, local_cache, cache_lo)

        if r.size == 0:
            continue
        inv = np.searchsorted(uniq, cache_idx)
        entry_vals = (coeffs * values[inv]).sum(axis=1)
        comm.work(problem.combine_flops(r.size))
        vals_local[r - row_lo, level * base + slot_j] = entry_vals

    return vals_local


def mpi_generate(
    problem: MultiscaleProblem,
    cluster: Cluster,
    *,
    ranks: int | None = None,
) -> tuple[sp.coo_matrix, float]:
    """Generate the matrix with the MPI baseline on the cluster.

    Returns the assembled sparse matrix and the simulated time.
    """
    size = cluster.total_cores if ranks is None else ranks
    cache_blocks = split_range(problem.cache_total, size)
    row_blocks = split_range(problem.n, size)
    res = run_mpi(_gen_rank, cluster, problem, cache_blocks, row_blocks, ranks=ranks)
    vals = np.vstack(res.results)
    return slots_to_coo(problem, vals), res.elapsed
