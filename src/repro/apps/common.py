"""Small utilities shared by the application implementations."""

from __future__ import annotations

import numpy as np

_SPLITMIX_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def split_range(n: int, parts: int) -> list[tuple[int, int]]:
    """Partition ``range(n)`` into ``parts`` contiguous blocks whose
    sizes differ by at most one (the canonical block distribution)."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    bounds = [(i * n) // parts for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


def block_of(index: int, n: int, parts: int) -> int:
    """The block (from :func:`split_range`) containing ``index``."""
    if not 0 <= index < n:
        raise IndexError(f"index {index} out of range [0, {n})")
    # Inverse of the floor-division bounds: smallest p with
    # ((p+1)*n)//parts > index.
    p = (index * parts) // n
    while (p + 1) * n // parts <= index:
        p += 1
    return p


def hash_u64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """SplitMix64 integer hash — the deterministic pseudo-randomness
    used by the synthetic workloads (identical in serial, PPM and MPI
    implementations, so results can be compared exactly)."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _SPLITMIX_MULT) & _U64
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _U64
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _U64
        return z ^ (z >> np.uint64(31))


def hash_unit(x: np.ndarray | int) -> np.ndarray | float:
    """Deterministic hash of integers into [0, 1)."""
    h = hash_u64(x)
    return np.asarray(h, dtype=np.float64) / 2.0**64


def dot_flops(n: int) -> int:
    """Flop count of a length-``n`` dot product."""
    return 2 * n


def axpy_flops(n: int) -> int:
    """Flop count of ``y += a*x`` over ``n`` elements."""
    return 2 * n
