"""Small utilities shared by the application implementations."""

from __future__ import annotations

import numpy as np

_SPLITMIX_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def split_range(n: int, parts: int) -> list[tuple[int, int]]:
    """Partition ``range(n)`` into ``parts`` contiguous blocks whose
    sizes differ by at most one (the canonical block distribution)."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    bounds = [(i * n) // parts for i in range(parts + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


def block_of(index: int, n: int, parts: int) -> int:
    """The block (from :func:`split_range`) containing ``index``."""
    if not 0 <= index < n:
        raise IndexError(f"index {index} out of range [0, {n})")
    # Inverse of the floor-division bounds: smallest p with
    # ((p+1)*n)//parts > index.
    p = (index * parts) // n
    while (p + 1) * n // parts <= index:
        p += 1
    return p


def hash_u64(x: np.ndarray | int) -> np.ndarray | np.uint64:
    """SplitMix64 integer hash — the deterministic pseudo-randomness
    used by the synthetic workloads (identical in serial, PPM and MPI
    implementations, so results can be compared exactly)."""
    with np.errstate(over="ignore"):
        z = (np.asarray(x, dtype=np.uint64) + _SPLITMIX_MULT) & _U64
        z = ((z ^ (z >> np.uint64(30))) * _MIX1) & _U64
        z = ((z ^ (z >> np.uint64(27))) * _MIX2) & _U64
        return z ^ (z >> np.uint64(31))


def hash_unit(x: np.ndarray | int) -> np.ndarray | float:
    """Deterministic hash of integers into [0, 1)."""
    h = hash_u64(x)
    return np.asarray(h, dtype=np.float64) / 2.0**64


try:  # scipy's csr matvec kernel, minus the operator-dispatch layers.
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - older/newer scipy layouts
    _csr_matvec = None


def csr_matvec(Ac, v: np.ndarray) -> np.ndarray:
    """``Ac @ v`` for a CSR matrix without scipy's per-call dispatch
    overhead.

    Identical arithmetic to ``Ac @ v`` (scipy's ``_matmul_vector`` is
    exactly zeros + ``csr_matvec``), so results are bitwise equal; the
    solver kernels run this thousands of times per solve, where the
    dispatch layers would otherwise rival the runtime's own per-access
    cost.  Shared by the PPM and MPI implementations alike — a common
    computation kernel, outside Table 1's per-model line counts.
    """
    if _csr_matvec is None:
        return Ac @ v
    M, N = Ac.shape
    out = np.zeros(M, dtype=np.result_type(Ac.dtype, v.dtype))
    _csr_matvec(M, N, Ac.indptr, Ac.indices, Ac.data, v, out)
    return out


def dot_flops(n: int) -> int:
    """Flop count of a length-``n`` dot product."""
    return 2 * n


def axpy_flops(n: int) -> int:
    """Flop count of ``y += a*x`` over ``n`` elements."""
    return 2 * n
