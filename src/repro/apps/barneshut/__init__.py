"""Application 3 (paper section 4.4): Barnes-Hut N-body simulation.

"In every time step, the algorithm creates a tree from the particles
according to the distribution of their coordinates, then updates the
coordinates by computing the particles' forces using the tree.  The
advantage is the reduced O(n log n) computation complexity ... but the
drawback is the totally data-driven random access to the tree and the
particles."
"""

from repro.apps.barneshut.mpi_bh import mpi_bh_simulate
from repro.apps.barneshut.octree import Octree, build_octree, check_octree, max_tree_nodes
from repro.apps.barneshut.ppm_bh import ppm_bh_simulate
from repro.apps.barneshut.serial_bh import (
    bh_forces,
    direct_forces,
    make_plummer_cloud,
    serial_bh_simulate,
)
from repro.apps.barneshut.traversal import WalkResult, walk_forces

__all__ = [
    "Octree",
    "WalkResult",
    "bh_forces",
    "build_octree",
    "check_octree",
    "direct_forces",
    "make_plummer_cloud",
    "max_tree_nodes",
    "mpi_bh_simulate",
    "ppm_bh_simulate",
    "serial_bh_simulate",
    "walk_forces",
]
