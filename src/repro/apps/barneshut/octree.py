"""Linearised octree for Barnes-Hut.

The tree is a flat ``(n_nodes, 12)`` float array so that it can live in
a PPM global shared variable (or be shipped whole by the MPI baseline)
and be fetched record-by-record during the data-driven traversal.

Record layout (one row per tree node)::

    0..2   cell centre (x, y, z)
    3      cell half-width
    4      subtree mass
    5..7   subtree centre of mass
    8      first child row (-1 for leaves)
    9      child count (0 for leaves)
    10     first particle slot in the permutation array (-1 internal)
    11     particle count (leaf: stored particles; internal: subtree)

Children of a node are contiguous rows, so a traversal can expand a
rejected cell without extra lookups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

RECORD_LEN = 12
F_CENTER = slice(0, 3)
F_HALFW = 3
F_MASS = 4
F_COM = slice(5, 8)
F_FIRST_CHILD = 8
F_NCHILDREN = 9
F_PSTART = 10
F_PCOUNT = 11


@dataclass
class Octree:
    """A built octree: node records, the particle permutation that
    groups each leaf's particles contiguously, and build statistics."""

    nodes: np.ndarray
    perm: np.ndarray
    leaf_size: int
    build_flops: float

    @property
    def n_nodes(self) -> int:
        return self.nodes.shape[0]

    @property
    def depth_estimate(self) -> int:
        """Upper-bound traversal depth (for latency-round hints)."""
        n = max(int(self.perm.size), 2)
        return int(np.ceil(np.log2(n) / 3)) + 2


def max_tree_nodes(n_particles: int, leaf_size: int) -> int:
    """Safe upper bound on octree size for allocation purposes."""
    leaves = max(1, (2 * n_particles) // max(leaf_size, 1) + 1)
    return 8 * leaves + 64


def build_octree(
    pos: np.ndarray, mass: np.ndarray, *, leaf_size: int = 16
) -> Octree:
    """Build the octree top-down (breadth-first, deterministic).

    Cells with at most ``leaf_size`` particles become leaves; others
    split into up to eight children (empty octants are skipped).
    Masses and centres of mass are exact per subtree.
    """
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = pos.shape[0]
    if pos.shape != (n, 3):
        raise ValueError(f"pos must have shape (n, 3), got {pos.shape}")
    if mass.shape != (n,):
        raise ValueError(f"mass must have shape ({n},), got {mass.shape}")
    if n == 0:
        raise ValueError("cannot build an octree with zero particles")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    lo = pos.min(axis=0)
    hi = pos.max(axis=0)
    center = 0.5 * (lo + hi)
    halfw = float(max(0.5 * (hi - lo).max(), 1e-12)) * 1.0000001

    records: list[np.ndarray] = []
    perm = np.empty(n, dtype=np.int64)
    perm_fill = 0
    partitioned = 0

    def new_record(c: np.ndarray, hw: float, idx: np.ndarray) -> np.ndarray:
        rec = np.zeros(RECORD_LEN)
        rec[F_CENTER] = c
        rec[F_HALFW] = hw
        m = mass[idx]
        total = float(m.sum())
        rec[F_MASS] = total
        if total > 0:
            rec[F_COM] = (pos[idx] * m[:, None]).sum(axis=0) / total
        else:
            rec[F_COM] = c
        rec[F_FIRST_CHILD] = -1
        rec[F_NCHILDREN] = 0
        rec[F_PSTART] = -1
        rec[F_PCOUNT] = len(idx)
        return rec

    # BFS queue of (record row, centre, halfwidth, particle ids).
    root_idx = np.arange(n, dtype=np.int64)
    records.append(new_record(center, halfw, root_idx))
    queue: list[tuple[int, np.ndarray, float, np.ndarray]] = [
        (0, center, halfw, root_idx)
    ]

    while queue:
        row, c, hw, idx = queue.pop(0)
        if idx.size <= leaf_size:
            records[row][F_PSTART] = perm_fill
            perm[perm_fill : perm_fill + idx.size] = idx
            perm_fill += idx.size
            continue
        partitioned += idx.size
        p = pos[idx]
        octant = (
            (p[:, 0] >= c[0]).astype(np.int64) * 4
            + (p[:, 1] >= c[1]).astype(np.int64) * 2
            + (p[:, 2] >= c[2]).astype(np.int64)
        )
        first_child = len(records)
        n_children = 0
        child_hw = 0.5 * hw
        for o in range(8):
            sub = idx[octant == o]
            if sub.size == 0:
                continue
            offs = np.array(
                [1.0 if o & 4 else -1.0, 1.0 if o & 2 else -1.0, 1.0 if o & 1 else -1.0]
            )
            cc = c + child_hw * offs
            records.append(new_record(cc, child_hw, sub))
            queue.append((len(records) - 1, cc, child_hw, sub))
            n_children += 1
        records[row][F_FIRST_CHILD] = first_child
        records[row][F_NCHILDREN] = n_children

    nodes = np.vstack(records)
    # Build cost: partitioning plus per-record mass/COM accumulation.
    build_flops = 10.0 * partitioned + 8.0 * sum(r[F_PCOUNT] for r in records)
    return Octree(nodes=nodes, perm=perm, leaf_size=leaf_size, build_flops=build_flops)


def check_octree(tree: Octree, pos: np.ndarray, mass: np.ndarray) -> None:
    """Validate structural invariants; raises AssertionError on breakage.

    Used by tests and the property-based suite: exact total mass,
    exact COM, leaves partition the particle set, children lie inside
    their parents.
    """
    nodes = tree.nodes
    root = nodes[0]
    assert abs(root[F_MASS] - mass.sum()) < 1e-9 * max(1.0, abs(mass.sum()))
    com = (pos * mass[:, None]).sum(axis=0) / mass.sum()
    assert np.allclose(root[F_COM], com, atol=1e-9)
    assert sorted(tree.perm.tolist()) == list(range(pos.shape[0]))
    for row in range(tree.n_nodes):
        rec = nodes[row]
        fc, nc = int(rec[F_FIRST_CHILD]), int(rec[F_NCHILDREN])
        if nc == 0:
            ps, pc = int(rec[F_PSTART]), int(rec[F_PCOUNT])
            assert ps >= 0
            ids = tree.perm[ps : ps + pc]
            inside = np.abs(pos[ids] - rec[F_CENTER]) <= rec[F_HALFW] * (1 + 1e-9)
            assert inside.all()
        else:
            child_mass = nodes[fc : fc + nc, F_MASS].sum()
            assert abs(child_mass - rec[F_MASS]) < 1e-9 * max(1.0, abs(rec[F_MASS]))
            child_hw = nodes[fc : fc + nc, F_HALFW]
            assert np.allclose(child_hw, 0.5 * rec[F_HALFW])
