"""Fetch-driven Barnes-Hut traversal.

One traversal engine serves all three implementations; what differs is
where the tree lives, expressed by three fetch callbacks:

* serial — direct numpy indexing of the local tree;
* PPM — the callbacks index global shared arrays, so every fetched
  record is a fine-grained remote access the runtime bundles (the
  paper: "totally data-driven random access to the tree and the
  particles");
* MPI — indexing of the replicated tree copies received each step.

The walk is breadth-first and vectorised over a particle chunk:
each round fetches the unique tree records the frontier needs, adds
monopole contributions for accepted cells, resolves leaves by direct
summation, and expands the rest.  Per particle, cells are visited in
a deterministic order independent of the chunking, so all three
implementations produce bit-identical accelerations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.barneshut.octree import (
    F_COM,
    F_FIRST_CHILD,
    F_HALFW,
    F_MASS,
    F_NCHILDREN,
    F_PCOUNT,
    F_PSTART,
)

FLOPS_PER_INTERACTION = 20.0


@dataclass(frozen=True)
class WalkResult:
    """Accelerations plus traversal statistics for cost charging."""

    acc: np.ndarray
    interactions: int
    rounds: int
    records_fetched: int


def walk_forces(
    pos_chunk: np.ndarray,
    fetch_tree: Callable[[np.ndarray], np.ndarray],
    fetch_perm: Callable[[int, int], np.ndarray],
    fetch_posm: Callable[[np.ndarray], np.ndarray],
    *,
    theta: float = 0.5,
    eps: float = 1e-3,
) -> WalkResult:
    """Compute accelerations on ``pos_chunk`` against the tree behind
    the fetch callbacks.

    ``fetch_tree(rows)`` returns tree records; ``fetch_perm(start,
    count)`` a leaf's slice of the particle permutation;
    ``fetch_posm(ids)`` rows of the ``(n, 4)`` position+mass table.
    """
    m = pos_chunk.shape[0]
    acc = np.zeros((m, 3))
    if m == 0:
        return WalkResult(acc=acc, interactions=0, rounds=0, records_fetched=0)
    pairs_p = np.arange(m, dtype=np.int64)
    pairs_n = np.zeros(m, dtype=np.int64)  # everyone starts at the root
    theta2 = theta * theta
    eps2 = eps * eps
    interactions = 0
    rounds = 0
    fetched = 0

    while pairs_p.size:
        rounds += 1
        uniq, inv = np.unique(pairs_n, return_inverse=True)
        recs = np.asarray(fetch_tree(uniq))
        fetched += uniq.size
        R = recs[inv]
        d = R[:, F_COM] - pos_chunk[pairs_p]
        r2 = np.einsum("ij,ij->i", d, d)
        size = 2.0 * R[:, F_HALFW]
        is_leaf = R[:, F_NCHILDREN] == 0
        accept = (size * size < theta2 * r2) & (R[:, F_MASS] > 0.0)

        a_idx = np.nonzero(accept)[0]
        if a_idx.size:
            rr2 = r2[a_idx] + eps2
            inv_r3 = np.where(rr2 > 0.0, R[a_idx, F_MASS] / (rr2 * np.sqrt(rr2)), 0.0)
            np.add.at(acc, pairs_p[a_idx], d[a_idx] * inv_r3[:, None])
            interactions += int(a_idx.size)

        l_idx = np.nonzero(~accept & is_leaf)[0]
        if l_idx.size:
            # Group leaf pairs by tree node so each leaf's particles
            # are fetched once per round.
            order = np.argsort(pairs_n[l_idx], kind="stable")
            l_sorted = l_idx[order]
            leaf_nodes = pairs_n[l_sorted]
            boundaries = np.nonzero(np.diff(leaf_nodes))[0] + 1
            for group in np.split(l_sorted, boundaries):
                rec = R[group[0]]
                ps, pc = int(rec[F_PSTART]), int(rec[F_PCOUNT])
                ids = np.asarray(fetch_perm(ps, pc), dtype=np.int64)
                pm = np.asarray(fetch_posm(ids))
                p_local = pairs_p[group]
                dp = pm[None, :, 0:3] - pos_chunk[p_local][:, None, :]
                rr2 = np.einsum("ijk,ijk->ij", dp, dp) + eps2
                inv_r3 = np.where(rr2 > 0.0, pm[None, :, 3] / (rr2 * np.sqrt(rr2)), 0.0)
                # A particle meeting itself has dp == 0, contributing
                # exactly zero — no special case needed.
                acc[p_local] += (dp * inv_r3[:, :, None]).sum(axis=1)
                interactions += int(group.size) * pc
                fetched += pc

        e_idx = np.nonzero(~accept & ~is_leaf)[0]
        if e_idx.size:
            fc = R[e_idx, F_FIRST_CHILD].astype(np.int64)
            nc = R[e_idx, F_NCHILDREN].astype(np.int64)
            total = int(nc.sum())
            starts = np.repeat(fc, nc)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(nc) - nc, nc
            )
            pairs_p = np.repeat(pairs_p[e_idx], nc)
            pairs_n = starts + within
        else:
            break

    return WalkResult(
        acc=acc, interactions=interactions, rounds=rounds, records_fetched=fetched
    )
