"""Serial reference Barnes-Hut simulation and verification helpers."""

from __future__ import annotations

import numpy as np

from repro.apps.barneshut.octree import build_octree
from repro.apps.barneshut.traversal import walk_forces


def make_plummer_cloud(
    n: int, *, seed: int = 42, radius: float = 1.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A deterministic particle cloud: Plummer-like radial profile,
    equal masses, zero initial velocities (cold collapse)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = np.random.default_rng(seed)
    # Plummer-profile radii with a sanity cap, isotropic directions.
    u = rng.uniform(0.05, 0.95, n)
    r = radius / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, 5.0 * radius)
    v = rng.standard_normal((n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    pos = v * r[:, None]
    mass = np.full(n, 1.0 / n)
    vel = np.zeros((n, 3))
    return pos, vel, mass


def direct_forces(pos: np.ndarray, mass: np.ndarray, *, eps: float = 1e-3) -> np.ndarray:
    """Exact O(n^2) accelerations, the ground truth the Barnes-Hut
    approximations are verified against."""
    d = pos[None, :, :] - pos[:, None, :]
    r2 = np.einsum("ijk,ijk->ij", d, d) + eps * eps
    inv_r3 = mass[None, :] / (r2 * np.sqrt(r2))
    np.fill_diagonal(inv_r3, 0.0)
    return (d * inv_r3[:, :, None]).sum(axis=1)


def bh_forces(
    pos: np.ndarray,
    mass: np.ndarray,
    *,
    theta: float = 0.5,
    eps: float = 1e-3,
    leaf_size: int = 16,
) -> np.ndarray:
    """Single-tree Barnes-Hut accelerations (serial)."""
    tree = build_octree(pos, mass, leaf_size=leaf_size)
    posm = np.concatenate([pos, mass[:, None]], axis=1)
    result = walk_forces(
        pos,
        lambda rows: tree.nodes[rows],
        lambda start, count: tree.perm[start : start + count],
        lambda ids: posm[ids],
        theta=theta,
        eps=eps,
    )
    return result.acc


def serial_bh_simulate(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    *,
    steps: int = 2,
    dt: float = 1e-3,
    theta: float = 0.5,
    eps: float = 1e-3,
    leaf_size: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference time integration: per step, rebuild the tree, compute
    forces, kick velocities and drift positions (symplectic Euler)."""
    pos = pos.copy()
    vel = vel.copy()
    for _ in range(steps):
        acc = bh_forces(pos, mass, theta=theta, eps=eps, leaf_size=leaf_size)
        vel += dt * acc
        pos += dt * vel
    return pos, vel
