"""MPI baseline for Barnes-Hut: per-rank subtrees, replicated each step.

This follows the message-passing method the paper cites ([9], Garmire
and Ong): "a hierarchical representation of the force field data is
implemented [as] a tree data structure on each MPI node, then in every
round of computation, each node needs to receive copies of the trees
from all other nodes.  This requires [an] extremely high volume of
data exchange."

Per step, each rank builds an octree over its own particle block,
allgathers *every* rank's serialised tree (records, permutation and
the underlying particle table — whole structures on the wire), then
computes its particles' accelerations as the sum of the per-subtree
Barnes-Hut forces.  No further communication is needed within the
step, but the replication traffic grows with both the particle count
and the rank count — the scaling wall Figure 3 shows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.barneshut.octree import RECORD_LEN, build_octree
from repro.apps.barneshut.traversal import FLOPS_PER_INTERACTION, walk_forces
from repro.apps.common import split_range
from repro.machine import Cluster
from repro.mpi import run_mpi


def _serialize_tree(comm, tree, posm) -> np.ndarray:
    """Flatten a subtree package into one contiguous send buffer:
    [n_nodes, n_particles, node records..., permutation..., posm...].
    Real MPI codes must do exactly this — a tree of separate arrays is
    not a sendable buffer."""
    n_nodes = tree.nodes.shape[0]
    n_part = tree.perm.shape[0]
    buf = np.empty(2 + n_nodes * RECORD_LEN + n_part + n_part * 4)
    buf[0] = n_nodes
    buf[1] = n_part
    cursor = 2
    buf[cursor : cursor + n_nodes * RECORD_LEN] = tree.nodes.ravel()
    cursor += n_nodes * RECORD_LEN
    buf[cursor : cursor + n_part] = tree.perm
    cursor += n_part
    buf[cursor : cursor + n_part * 4] = posm.ravel()
    comm.mem_work(buf.size)  # packing cost
    return buf


def _deserialize_tree(comm, buf: np.ndarray):
    """Reverse of :func:`_serialize_tree` (unpacking cost charged)."""
    n_nodes = int(buf[0])
    n_part = int(buf[1])
    cursor = 2
    nodes = buf[cursor : cursor + n_nodes * RECORD_LEN].reshape(n_nodes, RECORD_LEN)
    cursor += n_nodes * RECORD_LEN
    perm = buf[cursor : cursor + n_part].astype(np.int64)
    cursor += n_part
    posm = buf[cursor : cursor + n_part * 4].reshape(n_part, 4)
    comm.mem_work(n_part)  # unpacking/indexing setup
    return nodes, perm, posm


def _bh_rank(comm, pos0, vel0, mass0, blocks, steps, dt, theta, eps, leaf_size):
    lo, hi = blocks[comm.rank]
    pos = pos0[lo:hi].copy()
    vel = vel0[lo:hi].copy()
    mass = mass0[lo:hi].copy()

    for _step in range(steps):
        # Local subtree over this rank's particles.
        if pos.shape[0] > 0:
            tree = build_octree(pos, mass, leaf_size=leaf_size)
            comm.work(tree.build_flops)
            posm = np.concatenate([pos, mass[:, None]], axis=1)
            buf = _serialize_tree(comm, tree, posm)
        else:
            buf = np.zeros(2)

        # Replicate every rank's whole tree (the method's hallmark).
        all_bufs = comm.allgather(buf)

        acc = np.zeros((pos.shape[0], 3))
        for buf_r in all_bufs:
            if buf_r[0] == 0:
                continue
            nodes_r, perm_r, posm_r = _deserialize_tree(comm, buf_r)
            result = walk_forces(
                pos,
                lambda rows: nodes_r[rows],
                lambda start, count: perm_r[start : start + count],
                lambda ids: posm_r[ids],
                theta=theta,
                eps=eps,
            )
            acc += result.acc
            comm.work(result.interactions * FLOPS_PER_INTERACTION)

        vel += dt * acc
        pos += dt * vel
        comm.work(12 * pos.shape[0])

    return pos, vel


def mpi_bh_simulate(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    cluster: Cluster,
    *,
    steps: int = 2,
    dt: float = 1e-3,
    theta: float = 0.5,
    eps: float = 1e-3,
    leaf_size: int = 16,
    ranks: int | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Run the tree-replication MPI Barnes-Hut baseline.

    Returns final positions, velocities and the simulated time.  Note
    the *forces differ slightly* from the single-tree algorithm: each
    subtree is approximated independently, so the summed accelerations
    carry a (bounded) different approximation error — both versions
    are verified against direct summation.
    """
    size = cluster.total_cores if ranks is None else ranks
    blocks = split_range(pos.shape[0], size)
    res = run_mpi(
        _bh_rank, cluster, pos, vel, mass, blocks,
        steps, dt, theta, eps, leaf_size, ranks=ranks,
    )
    pos_out = np.vstack([r[0] for r in res.results])
    vel_out = np.vstack([r[1] for r in res.results])
    return pos_out, vel_out, res.elapsed
