"""PPM implementation of the Barnes-Hut simulation.

The tree, the particle permutation and the particle table all live in
global shared memory.  Per time step:

1. **build** — one VP reads the particle table and publishes the new
   tree (a bulk write the runtime streams out);
2. **forces** — every VP walks the shared tree for its own particles.
   The walk's reads are exactly the paper's nightmare workload:
   data-driven, fine-grained, unpredictable ("they cannot be
   anticipated and prepared in advance").  Each VP simply indexes the
   shared arrays; the runtime deduplicates and bundles the fetches,
   which is why PPM "avoids the need to copy the entire tree
   structures from other nodes";
3. **integrate** — every VP advances its own particles.

The force phase declares ``latency_rounds`` equal to the tree depth:
each traversal level's fetches depend on the previous level's records.
"""

from __future__ import annotations

import numpy as np

from repro.apps.barneshut.octree import build_octree, max_tree_nodes
from repro.apps.barneshut.traversal import FLOPS_PER_INTERACTION, walk_forces
from repro.apps.common import split_range
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _bh_kernel(ctx, POSM, VEL, ACC, TREE, PERM, steps, dt, theta, eps, leaf_size, depth_hint):
    n = POSM.shape[0]
    node_lo, node_hi = POSM.local_range(ctx.node_id)
    lo, hi = split_range(node_hi - node_lo, ctx.node_vp_count)[ctx.node_rank]
    lo, hi = node_lo + lo, node_lo + hi

    for _step in range(steps):
        yield ctx.global_phase
        # Build phase: one VP constructs this step's tree from the
        # shared particle table and publishes it.
        if ctx.global_rank == 0:
            pm = POSM[:]
            tree = build_octree(pm[:, 0:3], pm[:, 3], leaf_size=leaf_size)
            TREE[0 : tree.n_nodes] = tree.nodes
            PERM[:] = tree.perm
            ctx.work(tree.build_flops)

        yield ctx.phase("global", latency_rounds=depth_hint)
        # Force phase: data-driven traversal through shared memory.
        pos_chunk = POSM[lo:hi][:, 0:3]
        result = walk_forces(
            pos_chunk,
            lambda rows: TREE[rows],
            lambda start, count: PERM[start : start + count],
            lambda ids: POSM[ids],
            theta=theta,
            eps=eps,
        )
        ACC[lo:hi] = result.acc
        ctx.work(result.interactions * FLOPS_PER_INTERACTION)

        yield ctx.global_phase
        # Integration phase: kick + drift over the VP's own particles.
        # Snapshot reads are read-only views; copy before mutating.
        pm = POSM[lo:hi].copy()
        vel = VEL[lo:hi] + dt * ACC[lo:hi]
        pm[:, 0:3] += dt * vel
        VEL[lo:hi] = vel
        POSM[lo:hi] = pm
        ctx.work(12 * (hi - lo))


def ppm_bh_simulate(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    cluster: Cluster,
    *,
    steps: int = 2,
    dt: float = 1e-3,
    theta: float = 0.5,
    eps: float = 1e-3,
    leaf_size: int = 16,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Run the PPM Barnes-Hut on the cluster.

    Returns final positions, velocities and the simulated time.
    """
    n = pos.shape[0]
    depth_hint = int(np.ceil(np.log2(max(n, 2)) / 3)) + 2

    def main(ppm):
        POSM = ppm.global_shared("bh_posm", (n, 4))
        VEL = ppm.global_shared("bh_vel", (n, 3))
        ACC = ppm.global_shared("bh_acc", (n, 3))
        TREE = ppm.global_shared("bh_tree", (max_tree_nodes(n, leaf_size), 12))
        PERM = ppm.global_shared("bh_perm", n, dtype=np.int64)
        POSM[:] = np.concatenate([pos, mass[:, None]], axis=1)
        VEL[:] = vel
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(
            k, _bh_kernel, POSM, VEL, ACC, TREE, PERM,
            steps, dt, theta, eps, leaf_size, depth_hint,
        )
        return POSM.committed, VEL.committed

    ppm, (posm, vel_out) = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    return posm[:, 0:3], vel_out, ppm.elapsed
