"""MPI implementation of the Conjugate Gradient solver.

This is the hand-tuned message-passing baseline of the paper's
Figure 1: block row distribution (one block per rank, one rank per
core), precomputed neighbour lists, packed halo exchange of the search
direction before every matrix-vector product, and allreduce dot
products.  All the communication bookkeeping that PPM's runtime does
implicitly — computing who needs which elements, packing them into
send buffers, posting matched sends/receives, unpacking into halo
slots — is explicit application code here, which is exactly why the
paper's MPI CG is 733 lines against PPM's 161.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.apps.cg.problem import CgProblem
from repro.apps.cg.serial_cg import CgResult
from repro.apps.common import csr_matvec, split_range
from repro.machine import Cluster
from repro.mpi import run_mpi

_HALO_TAG = 11


@dataclass(frozen=True)
class _RankPlan:
    """Precomputed communication plan for one rank.

    Attributes
    ----------
    lo, hi:
        Owned row range.
    Ac:
        Local matrix block with columns renumbered into the compressed
        footprint ``cols``.
    cols:
        Sorted global column footprint of the local block.
    own_pos:
        Positions of the owned columns within ``cols``.
    recv_plan:
        ``peer -> positions (within cols) of the halo entries that
        peer owns`` — where unpacked values land.
    send_plan:
        ``peer -> local row offsets this rank must pack and send``.
    """

    lo: int
    hi: int
    Ac: sp.csr_matrix
    cols: np.ndarray
    own_pos: np.ndarray
    recv_plan: dict[int, np.ndarray]
    send_plan: dict[int, np.ndarray]


def build_rank_plans(problem: CgProblem, size: int) -> list[_RankPlan]:
    """Precompute every rank's halo-exchange plan (setup, untimed).

    A real tuned code computes this once per matrix; we do it centrally
    so each simulated rank starts with the same data a real rank would
    have after its setup phase.
    """
    n = problem.n
    blocks = split_range(n, size)
    bounds = np.array([b[0] for b in blocks] + [n])
    footprints: list[np.ndarray] = []
    plans_recv: list[dict[int, np.ndarray]] = []
    for rank in range(size):
        lo, hi = blocks[rank]
        Aloc = problem.A[lo:hi]
        cols = np.unique(Aloc.indices)
        footprints.append(cols)
        owners = np.searchsorted(bounds, cols, side="right") - 1
        recv_plan: dict[int, np.ndarray] = {}
        for peer in np.unique(owners):
            peer = int(peer)
            if peer == rank:
                continue
            recv_plan[peer] = np.nonzero(owners == peer)[0]
        plans_recv.append(recv_plan)

    plans: list[_RankPlan] = []
    for rank in range(size):
        lo, hi = blocks[rank]
        Aloc = problem.A[lo:hi]
        cols = footprints[rank]
        Ac = sp.csr_matrix(
            (Aloc.data, np.searchsorted(cols, Aloc.indices), Aloc.indptr),
            shape=(hi - lo, cols.size),
        )
        own_pos = np.searchsorted(cols, np.arange(lo, hi))
        send_plan: dict[int, np.ndarray] = {}
        for peer in range(size):
            if peer == rank:
                continue
            wanted_pos = plans_recv[peer].get(rank)
            if wanted_pos is not None and wanted_pos.size:
                global_ids = footprints[peer][wanted_pos]
                send_plan[peer] = global_ids - lo
        plans.append(
            _RankPlan(
                lo=lo,
                hi=hi,
                Ac=Ac,
                cols=cols,
                own_pos=own_pos,
                recv_plan=plans_recv[rank],
                send_plan=send_plan,
            )
        )
    return plans


def _exchange_halo(comm, plan: _RankPlan, p_local: np.ndarray, p_full: np.ndarray) -> None:
    """One halo exchange of the search direction.

    Packs the boundary entries each neighbour needs, posts the sends,
    receives the matching halo segments and scatters them into the
    compressed-footprint vector ``p_full``.
    """
    for peer, rows in plan.send_plan.items():
        buf = p_local[rows]  # pack
        comm.mem_work(rows.size)  # user-level packing cost
        comm.send(buf, dest=peer, tag=_HALO_TAG)
    for peer, positions in plan.recv_plan.items():
        buf = comm.recv(source=peer, tag=_HALO_TAG)
        if len(buf) != positions.size:
            raise RuntimeError(
                f"halo length mismatch from rank {peer}: "
                f"got {len(buf)}, expected {positions.size}"
            )
        p_full[positions] = buf  # unpack
        comm.mem_work(positions.size)


def _cg_rank(comm, problem: CgProblem, plans, b_norm, max_iters, tol):
    plan: _RankPlan = plans[comm.rank]
    lo, hi = plan.lo, plan.hi
    m = hi - lo

    x = np.zeros(m)
    r = problem.b[lo:hi].copy()
    p = r.copy()
    p_full = np.zeros(plan.cols.size)

    rz = comm.allreduce(float(r @ r), op="sum")
    comm.work(2 * m)

    it = 0
    converged = False
    for it in range(1, max_iters + 1):
        # Halo exchange, then local sparse matvec.
        p_full[plan.own_pos] = p
        _exchange_halo(comm, plan, p, p_full)
        q = csr_matvec(plan.Ac, p_full)
        comm.work(2 * plan.Ac.nnz)

        pq = comm.allreduce(float(p @ q), op="sum")
        comm.work(2 * m)
        if pq == 0.0:
            break
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        comm.work(4 * m)

        rz_new = comm.allreduce(float(r @ r), op="sum")
        comm.work(2 * m)
        if np.sqrt(rz_new) <= tol * b_norm:
            rz = rz_new
            converged = True
            break
        beta = rz_new / rz
        rz = rz_new
        p = r + beta * p
        comm.work(2 * m)

    return x, it, rz, converged


def mpi_cg_solve(
    problem: CgProblem,
    cluster: Cluster,
    *,
    max_iters: int = 200,
    tol: float = 1e-8,
    ranks: int | None = None,
) -> tuple[CgResult, float]:
    """Solve the problem with the MPI CG baseline on the cluster.

    One rank per core by default.  Returns the result and the
    simulated execution time of the solve.
    """
    size = cluster.total_cores if ranks is None else ranks
    plans = build_rank_plans(problem, size)
    b_norm = float(np.sqrt(problem.b @ problem.b)) or 1.0
    res = run_mpi(
        _cg_rank, cluster, problem, plans, b_norm, max_iters, tol, ranks=ranks
    )
    x = np.concatenate([out[0] for out in res.results])
    _, iterations, rz, converged = res.results[0]
    result = CgResult(
        x=x,
        iterations=iterations,
        residual_norm=float(np.sqrt(rz)),
        converged=converged,
    )
    return result, res.elapsed
