"""27-point finite-difference diffusion problem on a 3D chimney domain.

The matrix is the implicit discretisation of a diffusion operator on a
``nx x ny x nz`` box (a "chimney": taller than wide), coupling every
cell to its 26 neighbours.  Stored in CSR with rows in x-major order;
the assembled operator is symmetric positive definite (strictly
diagonally dominant), as a CG solver requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class CgProblem:
    """A linear system ``A x = b`` plus its grid metadata."""

    A: sp.csr_matrix
    b: np.ndarray
    nx: int
    ny: int
    nz: int

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)


def build_chimney_problem(
    nx: int, ny: int | None = None, nz: int | None = None, *, seed: int = 2009
) -> CgProblem:
    """Assemble the 27-point stencil system.

    ``ny`` defaults to ``nx`` and ``nz`` to ``2 * nx`` (the chimney is
    taller than its cross-section).  The right-hand side is a smooth
    deterministic field plus hashed noise, seeded for reproducibility.
    """
    ny = nx if ny is None else ny
    nz = 2 * nx if nz is None else nz
    if min(nx, ny, nz) < 1:
        raise ValueError(f"grid dims must be >= 1, got {(nx, ny, nz)}")
    n = nx * ny * nz

    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.ravel(), iy.ravel(), iz.ravel()

    rows_list = []
    cols_list = []
    vals_list = []
    # 26 neighbour offsets of the 27-point stencil (the centre is the
    # diagonal, added afterwards for diagonal dominance).
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if dx == dy == dz == 0:
                    continue
                jx, jy, jz = ix + dx, iy + dy, iz + dz
                valid = (
                    (jx >= 0) & (jx < nx)
                    & (jy >= 0) & (jy < ny)
                    & (jz >= 0) & (jz < nz)
                )
                r = (ix[valid] * ny + iy[valid]) * nz + iz[valid]
                c = (jx[valid] * ny + jy[valid]) * nz + jz[valid]
                dist2 = dx * dx + dy * dy + dz * dz
                w = -1.0 / dist2  # nearer neighbours couple stronger
                rows_list.append(r)
                cols_list.append(c)
                vals_list.append(np.full(r.shape, w))

    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = np.concatenate(vals_list)

    A = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
    # Diagonal: strict dominance makes the operator SPD.
    offdiag_rowsum = np.abs(A).sum(axis=1).A1
    A = A + sp.diags(offdiag_rowsum + 1.0)
    A = A.tocsr()
    A.sort_indices()

    rng = np.random.default_rng(seed)
    x_coord = ix / max(nx - 1, 1)
    z_coord = iz / max(nz - 1, 1)
    b = np.sin(2 * np.pi * x_coord) + z_coord + 0.01 * rng.standard_normal(n)
    return CgProblem(A=A, b=b, nx=nx, ny=ny, nz=nz)


def spmv_flops(nnz: int) -> int:
    """Flops of one sparse matrix-vector product."""
    return 2 * nnz
