"""PPM implementation of the Conjugate Gradient solver.

Communication structure (all implicit, through shared variables):

* the vectors ``x, r, p, q`` are global shared arrays, block-
  distributed with the matrix rows;
* each VP owns a contiguous chunk of its node's rows and keeps its
  matrix block as private (resident) data;
* one CG iteration is three global phases —

  1. gather ``p`` over the chunk's column footprint (the runtime
     bundles the remote part), compute ``q = A p``, contribute the
     ``p·q`` partial to a phase reduction;
  2. update ``x`` and ``r`` with ``alpha``, contribute ``r·r``;
  3. check convergence and update the search direction ``p``.

Note how little code this is next to :mod:`repro.apps.cg.mpi_cg` —
Table 1 of the paper (161 vs 733 lines) is about exactly this gap.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.apps.cg.problem import CgProblem
from repro.apps.cg.serial_cg import CgResult
from repro.apps.common import csr_matvec, split_range
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster


@ppm_function
def _cg_kernel(ctx, A, xs, rs, ps, qs, stats, b_norm, max_iters, tol):
    # Private prologue: slice this VP's matrix block and precompute its
    # column footprint (static, resident data).
    node_lo, node_hi = xs.local_range(ctx.node_id)
    lo, hi = split_range(node_hi - node_lo, ctx.node_vp_count)[ctx.node_rank]
    lo, hi = node_lo + lo, node_lo + hi
    Aloc = A[lo:hi]
    cols = np.unique(Aloc.indices)
    Ac = sp.csr_matrix(
        (Aloc.data, np.searchsorted(cols, Aloc.indices), Aloc.indptr),
        shape=(hi - lo, cols.size),
    )
    m = hi - lo
    # Positions of this VP's own rows inside its column footprint —
    # static, so hoisted out of the iteration loop.
    own = np.searchsorted(cols, np.arange(lo, hi))

    yield ctx.global_phase
    r_chunk = rs[lo:hi]
    h_rz = ctx.reduce(float(r_chunk @ r_chunk), "sum")
    ctx.work(2 * m)

    rz = None
    for it in range(1, max_iters + 1):
        yield ctx.global_phase
        if rz is None:
            rz = h_rz.value
        p_needed = ps[cols]
        q_chunk = csr_matvec(Ac, p_needed)
        qs[lo:hi] = q_chunk
        p_chunk = p_needed[own]
        h_pq = ctx.reduce(float(p_chunk @ q_chunk), "sum")
        ctx.work(2 * Ac.nnz + 2 * m)

        yield ctx.global_phase
        alpha = rz / h_pq.value
        x_new = xs[lo:hi] + alpha * ps[lo:hi]
        r_new = rs[lo:hi] - alpha * qs[lo:hi]
        xs[lo:hi] = x_new
        rs[lo:hi] = r_new
        h_rz_new = ctx.reduce(float(r_new @ r_new), "sum")
        ctx.work(6 * m)

        yield ctx.global_phase
        rz_new = h_rz_new.value
        if np.sqrt(rz_new) <= tol * b_norm or it == max_iters:
            if ctx.global_rank == 0:
                stats[0] = rz_new
                stats[1] = float(it)
                stats[2] = 1.0 if np.sqrt(rz_new) <= tol * b_norm else 0.0
            if np.sqrt(rz_new) <= tol * b_norm:
                return
            rz = rz_new
            continue
        beta = rz_new / rz
        rz = rz_new
        p_new = rs[lo:hi] + beta * ps[lo:hi]
        ps[lo:hi] = p_new
        ctx.work(2 * m)


def ppm_cg_solve(
    problem: CgProblem,
    cluster: Cluster,
    *,
    max_iters: int = 200,
    tol: float = 1e-8,
    vp_per_core: int = 2,
    trace=None,
    hot_path: str = "fast",
    **run_opts,
) -> tuple[CgResult, float]:
    """Solve the problem with the PPM CG on the given cluster.

    Returns the solver result and the simulated execution time of the
    solve (setup is untimed, as in the paper's measurements).  Pass a
    :class:`~repro.obs.events.PhaseTrace` as ``trace`` to collect
    phase-level observability events for the run.  Extra keyword
    arguments (``faults=``, ``checkpoint_every=``, ``resilience=``,
    ``sanitize=``, ...) pass through to
    :func:`~repro.core.program.run_ppm`.
    """

    def main(ppm):
        n = problem.n
        xs = ppm.global_shared("cg_x", n)
        rs = ppm.global_shared("cg_r", n)
        ps = ppm.global_shared("cg_p", n)
        qs = ppm.global_shared("cg_q", n)
        stats = ppm.global_shared("cg_stats", 3)
        rs[:] = problem.b
        ps[:] = problem.b
        b_norm = float(np.sqrt(problem.b @ problem.b)) or 1.0
        ppm.reset_clocks()
        k = ppm.cores_per_node * vp_per_core
        ppm.do(k, _cg_kernel, problem.A, xs, rs, ps, qs, stats, b_norm, max_iters, tol)
        return xs.committed, stats.committed

    ppm, (x, stats) = run_ppm(
        main, cluster, trace=trace, hot_path=hot_path, **run_opts
    )
    result = CgResult(
        x=x,
        iterations=int(stats[1]),
        residual_norm=float(np.sqrt(stats[0])),
        converged=bool(stats[2]),
    )
    return result, ppm.elapsed
