"""Serial reference Conjugate Gradient solver."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class CgResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: tuple[float, ...] = ()


def serial_cg_solve(
    A: sp.csr_matrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iters: int = 500,
) -> CgResult:
    """Plain (unpreconditioned) CG on a SPD CSR matrix.

    This is the exact algorithm the PPM and MPI implementations
    distribute, with the same floating-point evaluation order per
    element, so distributed results agree to rounding error.
    """
    n = A.shape[0]
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rz = float(r @ r)
    b_norm = float(np.sqrt(b @ b)) or 1.0
    history = [float(np.sqrt(rz))]
    converged = False
    it = 0
    for it in range(1, max_iters + 1):
        q = A @ p
        pq = float(p @ q)
        if pq == 0.0:
            break
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        rz_new = float(r @ r)
        history.append(float(np.sqrt(rz_new)))
        if np.sqrt(rz_new) <= tol * b_norm:
            rz = rz_new
            converged = True
            break
        beta = rz_new / rz
        rz = rz_new
        p = r + beta * p
    return CgResult(
        x=x,
        iterations=it,
        residual_norm=float(np.sqrt(rz)),
        converged=converged,
        residual_history=tuple(history),
    )
