"""Application 1 (paper section 4.2): Conjugate Gradient solver.

"The linear system solved in this program is from the diffusion
problem on [a] 3D chimney domain by a 27 point implicit finite
difference scheme with unstructured data formats and communication
patterns."  The paper's instance is 16.7M rows / ~400M nonzeros; the
reproduction uses the same generator at laptop scale.
"""

from repro.apps.cg.mpi_cg import mpi_cg_solve
from repro.apps.cg.ppm_cg import ppm_cg_solve
from repro.apps.cg.problem import CgProblem, build_chimney_problem
from repro.apps.cg.serial_cg import serial_cg_solve

__all__ = [
    "CgProblem",
    "build_chimney_problem",
    "mpi_cg_solve",
    "ppm_cg_solve",
    "serial_cg_solve",
]
