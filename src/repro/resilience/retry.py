"""Retrying message delivery: timeout, exponential backoff, sequence
numbers.

The PPM runtime's commit-time traffic is bundled per (node, owner)
pair (:mod:`repro.core.bundling`).  The resilience layer treats each
such directed exchange as one *flight* and, when the fault injector
fails it, charges the realistic simulated cost of recovering it:

* a failed attempt costs its timeout (exponential backoff, capped) —
  the sender only learns of the loss when the ack timer fires —
  plus the wire time of the re-send;
* an injected delay adds straight wire latency;
* a duplicated delivery costs the receiver one message-handling
  overhead and is otherwise dropped by sequence-number deduplication
  (:class:`SequencedChannel` demonstrates the mechanism standalone).

Retry costs only ever add *time*; payloads are never mutated (a
corrupt flight is detected by checksum and retransmitted), so faults
cannot change committed values — see docs/RESILIENCE.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import ResilienceConfigError
from repro.resilience.faults import FaultVerdict


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff schedule of the reliable delivery layer.

    ``timeout`` is the ack timeout of the first re-send; attempt ``k``
    waits ``timeout * backoff_factor**(k-1)``, capped at
    ``max_backoff``.  ``max_retries`` bounds the re-sends per flight
    before the simulated transport escalates (the flight then goes
    through regardless, keeping delivery total).
    """

    timeout: float = 50.0e-6
    backoff_factor: float = 2.0
    max_backoff: float = 1.0e-3
    max_retries: int = 16

    def __post_init__(self) -> None:
        if not math.isfinite(self.timeout) or self.timeout <= 0:
            raise ResilienceConfigError(
                f"retry timeout must be positive and finite, got {self.timeout}",
                code="PPM304",
            )
        if not math.isfinite(self.backoff_factor) or self.backoff_factor < 1.0:
            raise ResilienceConfigError(
                f"backoff factor must be >= 1 and finite, got {self.backoff_factor}",
                code="PPM304",
            )
        if not math.isfinite(self.max_backoff) or self.max_backoff < self.timeout:
            raise ResilienceConfigError(
                f"max_backoff must be >= timeout, got {self.max_backoff}",
                code="PPM304",
            )
        if self.max_retries < 1:
            raise ResilienceConfigError(
                f"max_retries must be >= 1, got {self.max_retries}",
                code="PPM304",
            )

    def backoff(self, attempt: int) -> float:
        """Timeout before re-send ``attempt`` (1-based)."""
        return min(
            self.timeout * self.backoff_factor ** (attempt - 1), self.max_backoff
        )


@dataclass
class DeliveryOutcome:
    """Simulated result of delivering one flight under faults."""

    attempts: int = 1
    """Total send attempts (1 = delivered first try)."""

    extra_time: float = 0.0
    """Simulated seconds added on top of the fault-free flight cost."""

    duplicates: int = 0
    """Redundant deliveries suppressed by sequence numbers."""

    retries: list = field(default_factory=list)
    """``(attempt, reason, backoff)`` per re-send, for event emission."""


def deliver_flight(
    policy: RetryPolicy,
    verdict: FaultVerdict,
    *,
    resend_wire_time: float,
    duplicate_cpu_time: float,
) -> DeliveryOutcome:
    """Charge one flight's faults against the retry policy.

    ``resend_wire_time`` is the wire cost of retransmitting the
    flight's bundle; ``duplicate_cpu_time`` the receiver-side handling
    cost of one redundant delivery.  Pure: same inputs, same outcome.
    """
    out = DeliveryOutcome()
    if verdict.clean:
        return out
    for i, reason in enumerate(verdict.failures):
        attempt = i + 1
        if attempt > policy.max_retries:
            # Transport escalation: the link is reset and the flight
            # forced through; stop charging backoff.
            break
        wait = policy.backoff(attempt)
        out.extra_time += wait + resend_wire_time
        out.attempts += 1
        out.retries.append((attempt, reason, wait))
    if verdict.delay:
        out.extra_time += verdict.delay
    if verdict.duplicate:
        out.duplicates = 1
        out.extra_time += duplicate_cpu_time
    return out


class SequencedChannel:
    """Idempotent receive window: per-sender sequence numbers make
    duplicate delivery a no-op.

    This is the mechanism the cost model above assumes.  The simulator
    never moves real payload bytes between nodes (commits apply
    in-process), so the channel is exercised by unit tests and the
    duplicate path's accounting rather than sitting on the data path.
    """

    def __init__(self) -> None:
        self._next_seq: dict[int, int] = {}
        self._delivered: dict[int, dict[int, object]] = {}
        self.duplicates_dropped = 0

    def next_seq(self, src: int) -> int:
        """Allocate the next sequence number for sender ``src``."""
        seq = self._next_seq.get(src, 0)
        self._next_seq[src] = seq + 1
        return seq

    def receive(self, src: int, seq: int, payload: object) -> bool:
        """Accept a flight; returns False (and drops it) when the
        (src, seq) pair was already delivered — replay is a no-op."""
        seen = self._delivered.setdefault(src, {})
        if seq in seen:
            self.duplicates_dropped += 1
            return False
        seen[seq] = payload
        return True

    def delivered(self, src: int) -> list[object]:
        """Payloads accepted from ``src``, in sequence order."""
        seen = self._delivered.get(src, {})
        return [seen[k] for k in sorted(seen)]
