"""Deterministic, seeded fault injection.

A :class:`FaultPlan` is a declarative description of everything that
goes wrong during a run; a :class:`FaultInjector` answers the
runtime's point queries against it.  Two design rules keep injection
compatible with the simulator's determinism and with crash recovery:

1. **Hash-derived randomness.**  Message-fault decisions draw from a
   PRNG seeded by ``(seed, phase, src, dst, attempt)`` rather than a
   stateful stream, so the verdict for a given flight is a pure
   function of its coordinates.  Replaying a phase after recovery
   re-derives exactly the same drops — no hidden RNG state to
   checkpoint.
2. **Crashes are consumed.**  A node crash fires at most once; the
   replay that recovery triggers passes the same phase index again and
   must not re-crash, so fired crashes are recorded on the injector.

Message faults never mutate payloads.  A *corrupt* verdict models a
checksum failure detected by the receiver (the bundle is retransmitted,
like a drop but with the receiver having paid to receive the garbage);
*drop* models a lost bundle detected by timeout; *delay* adds wire
latency; *duplicate* delivers twice — the sequence numbers of
:mod:`repro.resilience.retry` make the second copy a no-op.  Injected
faults therefore cost simulated time but can never change committed
values, which is one half of the recovery-equivalence property
(docs/RESILIENCE.md has the argument; the other half is the
phase-boundary checkpoint cut).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.errors import ResilienceConfigError


def _check_prob(p: float, what: str) -> float:
    p = float(p)
    if not 0.0 <= p < 1.0 or not math.isfinite(p):
        raise ResilienceConfigError(
            f"{what} probability must be in [0, 1), got {p}", code="PPM301"
        )
    return p


def _check_node(node: int, what: str) -> int:
    if not isinstance(node, int) or isinstance(node, bool) or node < 0:
        raise ResilienceConfigError(
            f"{what} node must be a non-negative int, got {node!r}",
            code="PPM302",
        )
    return node


def _check_phase(phase: int, what: str) -> int:
    if not isinstance(phase, int) or isinstance(phase, bool) or phase < 0:
        raise ResilienceConfigError(
            f"{what} phase must be a non-negative int, got {phase!r}",
            code="PPM302",
        )
    return phase


@dataclass(frozen=True)
class MessageFaults:
    """Per-flight fault probabilities for matching (phase, src, dst)
    flights.  ``phases``/``src``/``dst`` of ``None`` match anything."""

    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.0
    phases: tuple[int, ...] | None = None
    src: int | None = None
    dst: int | None = None

    def matches(self, phase: int, src: int, dst: int) -> bool:
        if self.phases is not None and phase not in self.phases:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return True


@dataclass(frozen=True)
class NodeCrash:
    """Crash ``node`` when the cluster reaches phase ``phase``."""

    node: int
    phase: int


@dataclass(frozen=True)
class Straggler:
    """Inflate ``node``'s per-phase compute time by ``factor`` (for
    the listed phases, or every phase when ``phases`` is None)."""

    node: int
    factor: float
    phases: tuple[int, ...] | None = None

    def matches(self, phase: int, node: int) -> bool:
        if self.node != node:
            return False
        return self.phases is None or phase in self.phases


class FaultPlan:
    """Builder for a seeded fault schedule.

    Methods chain::

        plan = (
            FaultPlan(seed=7)
            .drop_messages(0.05)
            .crash(node=1, phase=9)
            .straggle(node=0, factor=3.0, phases=range(4, 8))
        )

    Validation happens eagerly (``PPM301``/``PPM302``/``PPM305``
    diagnostics); node ids are range-checked against the cluster when
    the plan is bound to a run.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.message_faults: list[MessageFaults] = []
        self.crashes: list[NodeCrash] = []
        self.stragglers: list[Straggler] = []

    # -- message-layer faults ------------------------------------------
    def drop_messages(
        self, probability: float, *, phases=None, src=None, dst=None
    ) -> "FaultPlan":
        """Drop each matching bundle flight with ``probability``."""
        return self._add_message_fault(
            drop=probability, phases=phases, src=src, dst=dst
        )

    def corrupt_messages(
        self, probability: float, *, phases=None, src=None, dst=None
    ) -> "FaultPlan":
        """Corrupt (checksum-fail, forcing retransmit) matching flights."""
        return self._add_message_fault(
            corrupt=probability, phases=phases, src=src, dst=dst
        )

    def duplicate_messages(
        self, probability: float, *, phases=None, src=None, dst=None
    ) -> "FaultPlan":
        """Deliver matching flights twice (deduplicated by receiver)."""
        return self._add_message_fault(
            duplicate=probability, phases=phases, src=src, dst=dst
        )

    def delay_messages(
        self, probability: float, seconds: float, *, phases=None, src=None, dst=None
    ) -> "FaultPlan":
        """Add ``seconds`` of wire latency to matching flights."""
        if not math.isfinite(seconds) or seconds < 0:
            raise ResilienceConfigError(
                f"delay seconds must be non-negative and finite, got {seconds}",
                code="PPM301",
            )
        return self._add_message_fault(
            delay=probability,
            delay_seconds=float(seconds),
            phases=phases,
            src=src,
            dst=dst,
        )

    def _add_message_fault(
        self,
        *,
        drop=0.0,
        corrupt=0.0,
        duplicate=0.0,
        delay=0.0,
        delay_seconds=0.0,
        phases=None,
        src=None,
        dst=None,
    ) -> "FaultPlan":
        if phases is not None:
            phases = tuple(_check_phase(p, "message fault") for p in phases)
        if src is not None:
            src = _check_node(src, "message fault src")
        if dst is not None:
            dst = _check_node(dst, "message fault dst")
        self.message_faults.append(
            MessageFaults(
                drop=_check_prob(drop, "drop"),
                corrupt=_check_prob(corrupt, "corrupt"),
                duplicate=_check_prob(duplicate, "duplicate"),
                delay=_check_prob(delay, "delay"),
                delay_seconds=delay_seconds,
                phases=phases,
                src=src,
                dst=dst,
            )
        )
        return self

    # -- node-level faults ---------------------------------------------
    def crash(self, *, node: int, phase: int) -> "FaultPlan":
        """Crash ``node`` when execution reaches phase ``phase``."""
        self.crashes.append(
            NodeCrash(
                node=_check_node(node, "crash"),
                phase=_check_phase(phase, "crash"),
            )
        )
        return self

    def straggle(self, *, node: int, factor: float, phases=None) -> "FaultPlan":
        """Slow ``node``'s compute by ``factor`` (>= 1) for the given
        phases (every phase when omitted)."""
        factor = float(factor)
        if not math.isfinite(factor) or factor < 1.0:
            raise ResilienceConfigError(
                f"straggler factor must be >= 1 and finite, got {factor}",
                code="PPM305",
            )
        if phases is not None:
            phases = tuple(_check_phase(p, "straggler") for p in phases)
        self.stragglers.append(
            Straggler(node=_check_node(node, "straggler"), factor=factor, phases=phases)
        )
        return self

    # ------------------------------------------------------------------
    @property
    def has_message_faults(self) -> bool:
        return bool(self.message_faults)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, message_faults={len(self.message_faults)}, "
            f"crashes={len(self.crashes)}, stragglers={len(self.stragglers)})"
        )


class FaultVerdict:
    """Outcome of one flight query (see :meth:`FaultInjector.flight`)."""

    __slots__ = ("failures", "delay", "duplicate")

    def __init__(self, failures: list[str], delay: float, duplicate: bool) -> None:
        #: Reasons ("drop" / "corrupt") for each failed attempt, in
        #: order; the attempt after the last failure succeeds.
        self.failures = failures
        #: Extra wire latency injected on the successful attempt.
        self.delay = delay
        #: The successful attempt was delivered twice.
        self.duplicate = duplicate

    @property
    def clean(self) -> bool:
        return not self.failures and not self.delay and not self.duplicate


_CLEAN = FaultVerdict([], 0.0, False)


class FaultInjector:
    """Answers runtime point queries against a :class:`FaultPlan`.

    Bound to a cluster size at construction so planned node ids are
    range-checked up front (``PPM302``).
    """

    def __init__(self, plan: FaultPlan, n_nodes: int, *, max_attempts: int = 64) -> None:
        for crash in plan.crashes:
            if crash.node >= n_nodes:
                raise ResilienceConfigError(
                    f"crash targets node {crash.node} but the cluster has "
                    f"{n_nodes} nodes",
                    code="PPM302",
                )
        for s in plan.stragglers:
            if s.node >= n_nodes:
                raise ResilienceConfigError(
                    f"straggler targets node {s.node} but the cluster has "
                    f"{n_nodes} nodes",
                    code="PPM302",
                )
        self.plan = plan
        self.n_nodes = n_nodes
        #: Hard cap on attempts per flight: at this point the simulated
        #: transport escalates (link reset) and the flight goes through,
        #: keeping every delivery total and the simulation finite.
        self.max_attempts = max_attempts
        self._fired_crashes: set[NodeCrash] = set()

    # ------------------------------------------------------------------
    def _rng(self, phase: int, src: int, dst: int, salt: int) -> random.Random:
        # String seeds hash via SHA-512 (stable across platforms and
        # processes, unlike tuple hashing which is not supported and
        # object hashing which is salted), so a flight's verdict is a
        # pure, reproducible function of its coordinates.
        return random.Random(f"{self.plan.seed}:{phase}:{src}:{dst}:{salt}")

    def crash_at(self, phase: int) -> NodeCrash | None:
        """The planned, not-yet-fired crash for this phase (or None)."""
        for crash in self.plan.crashes:
            if crash.phase == phase and crash not in self._fired_crashes:
                return crash
        return None

    def consume(self, crash: NodeCrash) -> None:
        """Mark a crash as fired so recovery's replay cannot re-crash."""
        self._fired_crashes.add(crash)

    def straggler_factor(self, phase: int, node: int) -> float:
        """Compute-time inflation for ``node`` in ``phase`` (1.0 = none)."""
        factor = 1.0
        for s in self.plan.stragglers:
            if s.matches(phase, node):
                factor *= s.factor
        return factor

    def flight(self, phase: int, src: int, dst: int) -> FaultVerdict:
        """Fault verdict for the bundle flight ``src -> dst`` in
        ``phase``: which attempts fail (and why), injected delay, and
        duplication of the delivered copy.  Pure in its arguments."""
        rules = [
            f for f in self.plan.message_faults if f.matches(phase, src, dst)
        ]
        if not rules:
            return _CLEAN
        failures: list[str] = []
        for attempt in range(self.max_attempts - 1):
            rng = self._rng(phase, src, dst, attempt)
            reason = None
            for f in rules:
                roll = rng.random()
                if roll < f.drop:
                    reason = "drop"
                    break
                if roll < f.drop + f.corrupt:
                    reason = "corrupt"
                    break
            if reason is None:
                break
            failures.append(reason)
        rng = self._rng(phase, src, dst, -1)
        delay = 0.0
        duplicate = False
        for f in rules:
            if f.delay and rng.random() < f.delay:
                delay += f.delay_seconds
            if f.duplicate and rng.random() < f.duplicate:
                duplicate = True
        if not failures and not delay and not duplicate:
            return _CLEAN
        return FaultVerdict(failures, delay, duplicate)
