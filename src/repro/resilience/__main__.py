"""Chaos demo: run CG clean and under a seeded fault plan, compare.

Usage::

    python -m repro.resilience demo [--small] [--check] [--seed S]
                                    [--nodes N] [--nx NX] [--iters K]
                                    [--checkpoint-every C]
                                    [--out RUN.trace.json]

Runs the paper's CG application twice on the same simulated machine:
once fault-free and once under a deterministic chaos plan (message
drops, corruption, delays, duplicates, a straggler and a mid-run node
crash) with phase-boundary checkpointing.  Prints both runs'
simulated times, the resilience counters and the run report, and
verifies the recovery-equivalence property: the committed solution of
the chaotic run is bitwise-identical to the fault-free one.

``--small`` shrinks the problem for CI smoke use; ``--check`` exits
non-zero unless the equivalence check passes (it is also asserted by
default — ``--check`` additionally demands that faults actually fired,
guarding against a silently inert plan).

Exit status: 0 on success, 1 on a failed check, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _chaos_plan(seed: int, nodes: int, crash_phase: int):
    from repro.resilience import FaultPlan

    return (
        FaultPlan(seed=seed)
        .drop_messages(0.10)
        .corrupt_messages(0.05)
        .delay_messages(0.10, 25e-6)
        .duplicate_messages(0.10)
        .straggle(node=0, factor=1.5)
        .crash(node=nodes - 1, phase=crash_phase)
    )


def cmd_demo(args: argparse.Namespace) -> int:
    # Imported lazily so --help stays scipy-free.
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.config import franklin
    from repro.machine import Cluster
    from repro.obs import PhaseTrace, RunReport, format_report, save_trace

    if args.small:
        args.nodes = min(args.nodes, 2)
        args.nx = min(args.nx, 4)
        args.iters = min(args.iters, 6)

    problem = build_chimney_problem(args.nx)
    # CG issues 3 global phases per iteration plus a setup phase; crash
    # roughly two thirds of the way through the run.
    crash_phase = max(1, 2 * args.iters)
    plan = _chaos_plan(args.seed, args.nodes, crash_phase)

    clean, t_clean = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
    )

    trace = PhaseTrace()
    chaotic, t_chaos = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
        trace=trace,
        faults=plan,
        checkpoint_every=args.checkpoint_every,
    )

    identical = np.array_equal(clean.x, chaotic.x)
    report = RunReport.from_trace(trace)
    rs = report.resilience

    print(
        f"CG on {args.nodes} nodes, {args.iters} iterations "
        f"(chaos seed {args.seed}, crash at phase {crash_phase}, "
        f"checkpoint every {args.checkpoint_every} phases)"
    )
    print(f"  fault-free : {t_clean * 1e3:9.3f} ms simulated")
    print(
        f"  chaotic    : {t_chaos * 1e3:9.3f} ms simulated "
        f"({t_chaos / t_clean:.2f}x)"
    )
    print(f"  bitwise-identical solution: {identical}")
    print()
    print(format_report(report))
    if args.out:
        save_trace(trace, args.out)
        print(f"trace written to {args.out}")

    if not identical:
        print("FAIL: chaotic run diverged from the fault-free run", file=sys.stderr)
        return 1
    if args.check:
        fired = rs is not None and rs.faults > 0 and rs.recoveries > 0
        if not fired:
            print(
                "FAIL: --check expects injected faults and a recovery, "
                f"got {rs!r}",
                file=sys.stderr,
            )
            return 1
        print("check passed: faults fired, recovery ran, results identical")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Fault-injection chaos demo on the CG application.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser(
        "demo", help="run CG fault-free vs chaotic and compare results"
    )
    p_demo.add_argument("--seed", type=int, default=7, help="fault-plan seed")
    p_demo.add_argument("--nodes", type=int, default=4)
    p_demo.add_argument("--nx", type=int, default=8, help="grid edge (nx*nx*2nx rows)")
    p_demo.add_argument("--iters", type=int, default=10)
    p_demo.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="C",
        help="phases between checkpoints (default 5)",
    )
    p_demo.add_argument(
        "--small", action="store_true", help="shrink for CI smoke use"
    )
    p_demo.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless faults fired and recovery preserved results",
    )
    p_demo.add_argument("--out", help="write the ppm-trace JSON here")
    p_demo.set_defaults(func=cmd_demo)
    return parser


def main(argv: list[str]) -> int:
    try:
        args = build_parser().parse_args(argv)
        return args.func(args)
    except SystemExit as exc:  # argparse exits 2 on bad input
        return int(exc.code or 0)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
