"""Chaos demos: run CG clean and under injected faults, compare.

Usage::

    python -m repro.resilience demo  [--small] [--check] [--seed S]
                                     [--nodes N] [--nx NX] [--iters K]
                                     [--checkpoint-every C]
                                     [--out RUN.trace.json]
    python -m repro.resilience chaos --executor process [--small]
                                     [--check] [--seed S] [--nodes N]
                                     [--nx NX] [--iters K] [--workers W]
                                     [--every K] [--signal kill|stop]

``demo`` exercises the *simulated* fault model: the paper's CG
application runs twice on the same simulated machine, once fault-free
and once under a deterministic chaos plan (message drops, corruption,
delays, duplicates, a straggler and a mid-run node crash) with
phase-boundary checkpointing.

``chaos`` exercises the *real-process* fault model: the CG application
runs fault-free on the inline engine, then on the process executor
with worker supervision while :class:`~repro.parallel.ProcessChaos`
SIGKILLs (or SIGSTOPs) live worker processes at round boundaries.  The
supervisor respawns and replays each victim; the run must finish with
committed arrays and simulated times bitwise-identical to inline.

Both subcommands print the two runs' simulated times, the relevant
counters and the run report, and verify the recovery-equivalence
property.  ``--small`` shrinks the problem for CI smoke use;
``--check`` exits non-zero unless the equivalence check passes (it is
also asserted by default — ``--check`` additionally demands that
faults actually fired, guarding against a silently inert plan).

Exit status: 0 on success, 1 on a failed check, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _chaos_plan(seed: int, nodes: int, crash_phase: int):
    from repro.resilience import FaultPlan

    return (
        FaultPlan(seed=seed)
        .drop_messages(0.10)
        .corrupt_messages(0.05)
        .delay_messages(0.10, 25e-6)
        .duplicate_messages(0.10)
        .straggle(node=0, factor=1.5)
        .crash(node=nodes - 1, phase=crash_phase)
    )


def cmd_demo(args: argparse.Namespace) -> int:
    # Imported lazily so --help stays scipy-free.
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.config import franklin
    from repro.machine import Cluster
    from repro.obs import PhaseTrace, RunReport, format_report, save_trace

    if args.small:
        args.nodes = min(args.nodes, 2)
        args.nx = min(args.nx, 4)
        args.iters = min(args.iters, 6)

    problem = build_chimney_problem(args.nx)
    # CG issues 3 global phases per iteration plus a setup phase; crash
    # roughly two thirds of the way through the run.
    crash_phase = max(1, 2 * args.iters)
    plan = _chaos_plan(args.seed, args.nodes, crash_phase)

    clean, t_clean = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
    )

    trace = PhaseTrace()
    chaotic, t_chaos = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
        trace=trace,
        faults=plan,
        checkpoint_every=args.checkpoint_every,
    )

    identical = np.array_equal(clean.x, chaotic.x)
    report = RunReport.from_trace(trace)
    rs = report.resilience

    print(
        f"CG on {args.nodes} nodes, {args.iters} iterations "
        f"(chaos seed {args.seed}, crash at phase {crash_phase}, "
        f"checkpoint every {args.checkpoint_every} phases)"
    )
    print(f"  fault-free : {t_clean * 1e3:9.3f} ms simulated")
    print(
        f"  chaotic    : {t_chaos * 1e3:9.3f} ms simulated "
        f"({t_chaos / t_clean:.2f}x)"
    )
    print(f"  bitwise-identical solution: {identical}")
    print()
    print(format_report(report))
    if args.out:
        save_trace(trace, args.out)
        print(f"trace written to {args.out}")

    if not identical:
        print("FAIL: chaotic run diverged from the fault-free run", file=sys.stderr)
        return 1
    if args.check:
        fired = rs is not None and rs.faults > 0 and rs.recoveries > 0
        if not fired:
            print(
                "FAIL: --check expects injected faults and a recovery, "
                f"got {rs!r}",
                file=sys.stderr,
            )
            return 1
        print("check passed: faults fired, recovery ran, results identical")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    # Imported lazily so --help stays scipy-free.
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.config import franklin
    from repro.machine import Cluster
    from repro.obs import PhaseTrace, RunReport, format_report
    from repro.parallel import ProcessChaos, SupervisionPolicy
    from repro.parallel.supervisor import LAST_SUPERVISION

    if args.executor != "process":
        print(
            f"chaos: unsupported --executor {args.executor!r} "
            "(only 'process' spawns real workers to kill)",
            file=sys.stderr,
        )
        return 2
    if args.small:
        args.nodes = min(args.nodes, 2)
        args.nx = min(args.nx, 4)
        args.iters = min(args.iters, 6)
        args.workers = min(args.workers, 2)

    problem = build_chimney_problem(args.nx)

    clean, t_clean = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
    )

    chaos = ProcessChaos(seed=args.seed, every=args.every, signal=args.signal)
    trace = PhaseTrace()
    chaotic, t_chaos = ppm_cg_solve(
        problem,
        Cluster(franklin(n_nodes=args.nodes)),
        max_iters=args.iters,
        tol=0.0,
        trace=trace,
        executor="process",
        workers=args.workers,
        supervision=SupervisionPolicy(chaos=chaos),
    )
    sup = dict(LAST_SUPERVISION)

    identical = np.array_equal(clean.x, chaotic.x) and t_clean == t_chaos
    report = RunReport.from_trace(trace)

    print(
        f"CG on {args.nodes} nodes, {args.iters} iterations, "
        f"{args.workers} workers (chaos seed {args.seed}, "
        f"{args.signal} every {args.every} rounds)"
    )
    print(f"  inline fault-free : {t_clean * 1e3:9.3f} ms simulated")
    print(f"  process + chaos   : {t_chaos * 1e3:9.3f} ms simulated")
    print(
        f"  worker failures: {sup.get('crashes', 0)} crash, "
        f"{sup.get('hangs', 0)} hang   respawns: {sup.get('respawns', 0)}   "
        f"replayed rounds: {sup.get('replayed_rounds', 0)}"
    )
    print(f"  bitwise-identical solution and clock: {identical}")
    print()
    print(format_report(report))

    if not identical:
        print(
            "FAIL: supervised chaotic run diverged from the inline run",
            file=sys.stderr,
        )
        return 1
    if args.check:
        fired = sup.get("crashes", 0) + sup.get("hangs", 0) > 0
        recovered = sup.get("respawns", 0) > 0
        if not (fired and recovered):
            print(
                "FAIL: --check expects worker kills and respawns, "
                f"got {sup!r}",
                file=sys.stderr,
            )
            return 1
        print("check passed: workers died, supervisor recovered, results identical")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Fault-injection chaos demo on the CG application.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser(
        "demo", help="run CG fault-free vs chaotic and compare results"
    )
    p_demo.add_argument("--seed", type=int, default=7, help="fault-plan seed")
    p_demo.add_argument("--nodes", type=int, default=4)
    p_demo.add_argument("--nx", type=int, default=8, help="grid edge (nx*nx*2nx rows)")
    p_demo.add_argument("--iters", type=int, default=10)
    p_demo.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="C",
        help="phases between checkpoints (default 5)",
    )
    p_demo.add_argument(
        "--small", action="store_true", help="shrink for CI smoke use"
    )
    p_demo.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless faults fired and recovery preserved results",
    )
    p_demo.add_argument("--out", help="write the ppm-trace JSON here")
    p_demo.set_defaults(func=cmd_demo)

    p_chaos = sub.add_parser(
        "chaos",
        help="SIGKILL real worker processes mid-run and verify recovery",
    )
    p_chaos.add_argument(
        "--executor", default="process",
        help="execution backend to attack (only 'process' is supported)",
    )
    p_chaos.add_argument("--seed", type=int, default=7, help="chaos seed")
    p_chaos.add_argument("--nodes", type=int, default=4)
    p_chaos.add_argument("--nx", type=int, default=8, help="grid edge (nx*nx*2nx rows)")
    p_chaos.add_argument("--iters", type=int, default=10)
    p_chaos.add_argument("--workers", type=int, default=2)
    p_chaos.add_argument(
        "--every", type=int, default=3, metavar="K",
        help="kill a worker on every K-th round dispatch (default 3)",
    )
    p_chaos.add_argument(
        "--signal", choices=["kill", "stop"], default="kill",
        help="kill=SIGKILL (crash), stop=SIGSTOP (hang)",
    )
    p_chaos.add_argument(
        "--small", action="store_true", help="shrink for CI smoke use"
    )
    p_chaos.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless workers died, respawned and results match",
    )
    p_chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: list[str]) -> int:
    try:
        args = build_parser().parse_args(argv)
        return args.func(args)
    except SystemExit as exc:  # argparse exits 2 on bad input
        return int(exc.code or 0)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
