"""The runtime-facing resilience orchestrator.

:class:`ResilienceManager` is the single object the PPM engine talks
to; every hook is gated in :mod:`repro.core.runtime` behind one
``self.resilience is not None`` pointer test, mirroring the tracer
pattern, so disabled resilience costs the hot path nothing.

Recovery model (docs/RESILIENCE.md walks through an example):

* An injected crash raises :class:`~repro.core.errors.NodeCrashFault`
  at a phase *start* — before any body runs and before any write of
  that phase applies — so the state recovery sees is exactly the last
  phase-boundary cut.
* ``run_ppm`` catches the fault and re-executes the driver
  (*incarnation* loop).  VP locals live in generator frames and cannot
  be serialized, so the simulator reaches the restored cut by
  deterministic re-execution: during this *fast-forward* the tracer is
  detached and fault injection, checkpointing and retry charging are
  suppressed — the replayed phases are a simulator artifact, not
  simulated work.
* At the resume point (the commit of the checkpointed phase, or phase
  0's start when no checkpoint exists) the manager overwrites the
  re-computed arrays with the checkpoint, sets every clock to
  ``t_crash + detection_timeout + restore_time`` — the cost a real
  system would pay — re-attaches the tracer and emits
  :class:`~repro.obs.events.Recovery`.  Execution continues live; the
  phases between the checkpoint and the crash re-run with faults
  active (that re-execution is the *lost work* a rollback really
  costs).

Fired crashes are consumed, so replay cannot re-crash and the
incarnation loop terminates (bounded by ``max_incarnations``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.errors import NodeCrashFault, ResilienceConfigError
from repro.obs.events import FaultInjected, Recovery, RetryAttempt
from repro.resilience.checkpoint import CheckpointManager
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.retry import RetryPolicy, deliver_flight


@dataclass(frozen=True)
class ResiliencePolicy:
    """Cost knobs of the resilience machinery (``run_ppm(...,
    resilience=)``).  Kept out of the frozen
    :class:`~repro.config.MachineConfig`: these parameterize the
    recovery protocol, not the machine."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    """Timeout/backoff schedule for dropped or corrupted bundles."""

    checkpoint_alpha: float = 100.0e-6
    """Fixed simulated seconds per coordinated checkpoint."""

    checkpoint_bandwidth: float = 2.0e9
    """Per-node checkpoint drain rate in bytes/second."""

    detection_timeout: float = 1.0e-3
    """Simulated seconds between a crash and its cluster-wide
    detection (heartbeat timeout)."""

    restore_alpha: float = 100.0e-6
    """Fixed simulated seconds to launch the restore (or the restart,
    when no checkpoint exists)."""

    restore_bandwidth: float = 2.0e9
    """Per-node checkpoint read-back rate in bytes/second."""

    max_incarnations: int = 8
    """Upper bound on driver re-executions before the run aborts."""

    def __post_init__(self) -> None:
        for name in ("checkpoint_alpha", "detection_timeout", "restore_alpha"):
            v = getattr(self, name)
            if not math.isfinite(v) or v < 0:
                raise ResilienceConfigError(
                    f"{name} must be non-negative and finite, got {v}",
                    code="PPM303",
                )
        for name in ("checkpoint_bandwidth", "restore_bandwidth"):
            v = getattr(self, name)
            if not v > 0:
                raise ResilienceConfigError(
                    f"{name} must be positive, got {v}", code="PPM303"
                )
        if self.max_incarnations < 1:
            raise ResilienceConfigError(
                f"max_incarnations must be >= 1, got {self.max_incarnations}",
                code="PPM303",
            )


class ResilienceManager:
    """Orchestrates fault injection, retry charging, checkpointing and
    crash recovery for one ``run_ppm`` call (across incarnations)."""

    def __init__(
        self,
        cluster,
        *,
        plan: FaultPlan | None = None,
        checkpoint_every: int | None = None,
        policy: ResiliencePolicy | None = None,
    ) -> None:
        self.cluster = cluster
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.injector = (
            FaultInjector(plan, cluster.n_nodes) if plan is not None else None
        )
        self.checkpoints = (
            CheckpointManager(
                checkpoint_every,
                alpha=self.policy.checkpoint_alpha,
                bytes_per_second=self.policy.checkpoint_bandwidth,
            )
            if checkpoint_every is not None
            else None
        )
        #: The run's PhaseTrace (or None); set by ``run_ppm`` so it can
        #: be detached during fast-forward and re-attached at resume.
        self.tracer = None
        # -- replay state ---------------------------------------------
        self.replaying = False
        self._resume_phase = -1
        self._resume_time = 0.0
        self._pending: Recovery | None = None
        # -- counters (run report / CLI) ------------------------------
        self.faults_injected = 0
        self.retries = 0
        self.duplicates_dropped = 0
        self.recoveries = 0
        self.incarnations = 0

    # ==================================================================
    # Incarnation lifecycle (called by run_ppm)
    # ==================================================================
    def begin_incarnation(self, runtime) -> None:
        """Attach to a freshly built runtime; when recovering, detach
        the tracer for the fast-forward below the restored cut."""
        self.incarnations += 1
        if self.replaying:
            runtime.tracer = None
            runtime.cluster.network.tracer = None

    def handle_crash(self, crash: NodeCrashFault, runtime) -> None:
        """Plan the recovery: pick the rollback cut, price detection
        plus restore, and release node memory so the next incarnation
        can re-declare its shared variables."""
        cluster = runtime.cluster
        t_crash = cluster.elapsed
        ckpt = self.checkpoints.latest if self.checkpoints is not None else None
        pol = self.policy
        if ckpt is not None:
            restore = pol.restore_alpha + ckpt.nbytes / (
                cluster.n_nodes * pol.restore_bandwidth
            )
            self._resume_phase = ckpt.phase
            lost_work = t_crash - ckpt.t
            checkpoint_phase = ckpt.phase
        else:
            restore = pol.restore_alpha
            self._resume_phase = -1
            lost_work = t_crash
            checkpoint_phase = -1
        self._resume_time = t_crash + pol.detection_timeout + restore
        self._pending = Recovery(
            phase=crash.phase_index,
            node=crash.node,
            checkpoint_phase=checkpoint_phase,
            t_crash=t_crash,
            t_resume=self._resume_time,
            lost_work=lost_work,
        )
        self.replaying = True
        for node in cluster:
            node.memory.clear()

    # ==================================================================
    # Phase hooks (called by the engine; one pointer test each when
    # resilience is off)
    # ==================================================================
    def on_phase_start(self, phase_index: int, runtime) -> None:
        """Crash check (live) or phase-0 resume (recovering with no
        checkpoint).  Raises :class:`NodeCrashFault` on a planned,
        unfired crash."""
        if self.replaying:
            if self._resume_phase < 0 and phase_index == 0:
                self._resume(runtime)
            return
        if self.injector is not None:
            crash = self.injector.crash_at(phase_index)
            if crash is not None:
                self.injector.consume(crash)
                raise NodeCrashFault(node=crash.node, phase_index=phase_index)

    def after_commit(self, phase_index: int, runtime) -> None:
        """Checkpoint when due (live); resume when the fast-forward
        reaches the restored cut (recovering)."""
        if self.replaying:
            if phase_index == self._resume_phase:
                self._resume(runtime)
            return
        if self.checkpoints is not None and self.checkpoints.due(phase_index):
            self.checkpoints.take(phase_index, runtime)

    def straggler_factor(self, phase_index: int, node_id: int, runtime) -> float:
        """Compute-time inflation of ``node_id`` this phase (1.0 when
        clean, recovering, or no plan)."""
        if self.replaying or self.injector is None:
            return 1.0
        factor = self.injector.straggler_factor(phase_index, node_id)
        if factor != 1.0:
            self.faults_injected += 1
            tr = runtime.tracer
            if tr is not None:
                tr.emit(
                    FaultInjected(
                        phase=phase_index,
                        fault="straggler",
                        node=node_id,
                        src=-1,
                        dst=-1,
                        detail=factor,
                    )
                )
        return factor

    def message_penalties(self, phase_index: int, traffic, network) -> dict | None:
        """Per-node simulated seconds added by message faults on this
        phase's bundled flights (None when nothing fired).

        Each (node, owner) exchange of the phase is one *flight*; its
        fault verdict is a pure function of (seed, phase, src, dst),
        and all recovery cost — backoff waits, retransmit wire time,
        duplicate handling — is charged to the initiating node's
        communication time, serialized after the phase's regular
        traffic (retries cannot start before the loss is detected).
        """
        if self.replaying or self.injector is None:
            return None
        if not self.injector.plan.has_message_faults:
            return None
        cfg = network.config
        retry = self.policy.retry
        dup_cpu = cfg.mpi_msg_overhead
        penalties: dict[int, float] = {}
        tr = self.tracer
        for node_id, nt in sorted(traffic.items()):
            total = 0.0
            for p in nt.peers:
                if p.read_elems + p.write_elems == 0:
                    continue
                verdict = self.injector.flight(phase_index, node_id, p.owner)
                if verdict.clean:
                    continue
                payload = (p.read_elems + p.write_elems) * p.shared.itemsize
                resend_bytes = min(payload, cfg.bundle_max_bytes)
                outcome = deliver_flight(
                    retry,
                    verdict,
                    resend_wire_time=network.message_time(
                        resend_bytes, intra_node=False
                    ),
                    duplicate_cpu_time=dup_cpu,
                )
                total += outcome.extra_time
                self.retries += len(outcome.retries)
                self.duplicates_dropped += outcome.duplicates
                self.faults_injected += (
                    len(verdict.failures)
                    + (1 if verdict.delay else 0)
                    + (1 if verdict.duplicate else 0)
                )
                if tr is not None:
                    for reason in verdict.failures[: retry.max_retries]:
                        tr.emit(
                            FaultInjected(
                                phase=phase_index,
                                fault=reason,
                                node=-1,
                                src=node_id,
                                dst=p.owner,
                                detail=0.0,
                            )
                        )
                    for attempt, reason, wait in outcome.retries:
                        tr.emit(
                            RetryAttempt(
                                phase=phase_index,
                                src=node_id,
                                dst=p.owner,
                                attempt=attempt,
                                reason=reason,
                                backoff=wait,
                                delivered=attempt == len(outcome.retries),
                            )
                        )
                    if verdict.delay:
                        tr.emit(
                            FaultInjected(
                                phase=phase_index,
                                fault="delay",
                                node=-1,
                                src=node_id,
                                dst=p.owner,
                                detail=verdict.delay,
                            )
                        )
                    if verdict.duplicate:
                        tr.emit(
                            FaultInjected(
                                phase=phase_index,
                                fault="duplicate",
                                node=-1,
                                src=node_id,
                                dst=p.owner,
                                detail=0.0,
                            )
                        )
            if total:
                penalties[node_id] = total
        return penalties or None

    # ------------------------------------------------------------------
    def _resume(self, runtime) -> None:
        """The fast-forward reached the restored cut: load the
        checkpoint, set the clocks to the post-recovery time, re-attach
        the tracer and go live."""
        if self.checkpoints is not None and self.checkpoints.latest is not None:
            if self._resume_phase >= 0:
                self.checkpoints.restore(runtime)
        t = self._resume_time
        for node in runtime.cluster:
            node.clock.reset(to=t)
            for c in node.core_clocks:
                c.reset(to=t)
        self.replaying = False
        runtime.tracer = self.tracer
        runtime.cluster.network.tracer = self.tracer
        self.recoveries += 1
        pending, self._pending = self._pending, None
        if self.tracer is not None and pending is not None:
            self.tracer.emit(pending)

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Counter snapshot for CLIs and tests."""
        ck = self.checkpoints
        return {
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "duplicates_dropped": self.duplicates_dropped,
            "recoveries": self.recoveries,
            "incarnations": self.incarnations,
            "checkpoints": ck.count if ck is not None else 0,
            "checkpoint_bytes": ck.total_bytes if ck is not None else 0,
            "checkpoint_time_s": ck.total_time if ck is not None else 0.0,
        }
