"""Phase-boundary checkpoint/restore of PPM shared state.

Why the phase barrier is a correct checkpoint cut (paper §3): writes
made inside a phase are buffered and apply only at the end-of-phase
commit, every VP of the cluster passes the same barrier, and no
message crosses it — commit-time bundles are flushed and consumed
within the committing phase.  The committed arrays *between* two
phases therefore form a coordinated global snapshot with no in-flight
state, exactly what uncoordinated checkpointing protocols pay
message-logging to approximate.  A checkpoint here is just a copy of
every shared instance plus the simulated clock.

What is (deliberately) not checkpointed: VP-private generator state.
A VP's locals live in its Python generator frame, which cannot be
serialized; on recovery the driver re-executes deterministically from
its start and the runtime fast-forwards to the restored cut
(:mod:`repro.resilience.manager`).  Simulated time is charged as a
real checkpoint/restore system would pay it — write-out at
``checkpoint_bandwidth``, detection timeout, read-back — while the
host-side replay below the cut is a simulator artifact that costs
no simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ResilienceConfigError
from repro.core.shared import GlobalShared, NodeShared
from repro.obs.events import CheckpointTaken


@dataclass(frozen=True)
class Checkpoint:
    """One coordinated snapshot: the committed state after ``phase``.

    ``arrays`` maps each shared-variable name to a copy of its
    committed data — a single ndarray for global-shared, a list of
    per-node instances for node-shared.  ``t`` is the simulated time
    at which the checkpoint write-out completed.
    """

    phase: int
    t: float
    nbytes: int
    arrays: dict[str, np.ndarray | list[np.ndarray]] = field(repr=False)


class CheckpointManager:
    """Takes and restores coordinated phase-boundary checkpoints.

    ``every`` is the phase interval: the committed state is captured
    after phases ``every - 1``, ``2 * every - 1``, ... so
    ``every == 1`` checkpoints every phase.  Only the latest
    checkpoint is retained (recovery rolls back to the last cut;
    multi-version retention would model hierarchical schemes the
    paper's machine does not have).

    ``alpha``/``bytes_per_second`` price the coordinated write-out:
    ``alpha + nbytes / (n_nodes * bytes_per_second)`` simulated
    seconds, every node draining its partition in parallel.
    """

    def __init__(
        self,
        every: int,
        *,
        alpha: float = 100.0e-6,
        bytes_per_second: float = 2.0e9,
    ) -> None:
        if not isinstance(every, int) or isinstance(every, bool) or every < 1:
            raise ResilienceConfigError(
                f"checkpoint_every must be an int >= 1, got {every!r}",
                code="PPM303",
            )
        if alpha < 0 or bytes_per_second <= 0:
            raise ResilienceConfigError(
                "checkpoint cost knobs must be positive "
                f"(alpha={alpha}, bytes_per_second={bytes_per_second})",
                code="PPM303",
            )
        self.every = every
        self.alpha = alpha
        self.bytes_per_second = bytes_per_second
        self.latest: Checkpoint | None = None
        #: Running totals for the run report.
        self.count = 0
        self.total_bytes = 0
        self.total_time = 0.0

    # ------------------------------------------------------------------
    def due(self, phase_index: int) -> bool:
        """Whether a checkpoint is due after committing this phase."""
        return (phase_index + 1) % self.every == 0

    def take(self, phase_index: int, runtime) -> Checkpoint:
        """Capture the committed state after ``phase_index`` and charge
        the coordinated write-out to every node's clock."""
        arrays: dict[str, np.ndarray | list[np.ndarray]] = {}
        nbytes = 0
        for name, handle in runtime.shared_registry.items():
            if isinstance(handle, GlobalShared):
                snap = handle.committed
                nbytes += snap.nbytes
                arrays[name] = snap
            elif isinstance(handle, NodeShared):
                snaps = [inst.copy() for inst in handle._data]
                nbytes += sum(s.nbytes for s in snaps)
                arrays[name] = snaps
        cluster = runtime.cluster
        duration = self.alpha + nbytes / (cluster.n_nodes * self.bytes_per_second)
        # Coordinated: the checkpoint closes with a barrier, so all
        # clocks land on the same completion time.
        t_done = max(n.clock.now for n in cluster) + duration
        for node in cluster:
            node.clock.merge(t_done)
            for c in node.core_clocks:
                c.merge(t_done)
        ckpt = Checkpoint(phase=phase_index, t=t_done, nbytes=nbytes, arrays=arrays)
        self.latest = ckpt
        self.count += 1
        self.total_bytes += nbytes
        self.total_time += duration
        tr = runtime.tracer
        if tr is not None:
            tr.emit(
                CheckpointTaken(
                    phase=phase_index, nbytes=nbytes, duration=duration, t=t_done
                )
            )
        return ckpt

    def restore(self, runtime) -> None:
        """Overwrite the run's shared instances with the latest
        checkpoint's arrays (by name, honouring copy-on-commit)."""
        ckpt = self.latest
        if ckpt is None:
            raise ValueError("no checkpoint to restore")
        for name, saved in ckpt.arrays.items():
            handle = runtime.shared_registry.get(name)
            if handle is None:
                continue
            if isinstance(handle, GlobalShared):
                target = handle._commit_target(None)
                np.copyto(target, saved)
            else:
                for i, inst in enumerate(saved):
                    target = handle._commit_target(i)
                    np.copyto(target, inst)
