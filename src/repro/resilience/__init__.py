"""Resilience for PPM runs: fault injection, retrying delivery and
phase-boundary checkpoint/restore.

The paper's phase construct (§3) makes every phase barrier a globally
consistent cut: writes only become visible at end-of-phase commit, so
the committed state between two phases is exactly a coordinated
checkpoint — no message can be in flight across the cut.  This package
exploits that to add fault tolerance the original evaluation never
exercised:

* :class:`FaultPlan` / :class:`FaultInjector` — a deterministic,
  seeded description of what goes wrong: message drops, corruption,
  delays and duplicates on the bundled-message path, a node crash at a
  chosen phase, straggler cores;
* :class:`RetryPolicy` / :mod:`repro.resilience.retry` — timeout and
  exponential backoff for dropped/corrupted bundles, with sequence
  numbers making duplicate delivery a no-op;
* :class:`CheckpointManager` — snapshots of every
  ``PPM_global_shared``/``PPM_node_shared`` instance plus the
  simulated clocks at configurable phase intervals, restored on crash;
* :class:`ResilienceManager` — the runtime-facing orchestrator wired
  into :func:`repro.core.program.run_ppm` via
  ``run_ppm(..., faults=, checkpoint_every=, resilience=)``.

Recovered runs commit arrays bitwise-identical to a fault-free run
(property-tested); with every knob off the hot path is untouched.
Model and consistency argument: docs/RESILIENCE.md.  Chaos demos::

    python -m repro.resilience demo --small --check
    python -m repro.resilience chaos --executor process --small --check

``demo`` injects *simulated* faults; ``chaos`` SIGKILLs real worker
processes under the supervised process executor
(:class:`~repro.parallel.SupervisionPolicy`) and verifies
respawn-and-replay recovery (docs/PARALLEL.md).
"""

from repro.core.errors import (
    NodeCrashFault,
    ResilienceConfigError,
    ResilienceError,
)
from repro.resilience.checkpoint import Checkpoint, CheckpointManager
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.manager import ResilienceManager, ResiliencePolicy
from repro.resilience.retry import DeliveryOutcome, RetryPolicy, SequencedChannel

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "DeliveryOutcome",
    "FaultInjector",
    "FaultPlan",
    "NodeCrashFault",
    "ResilienceConfigError",
    "ResilienceError",
    "ResilienceManager",
    "ResiliencePolicy",
    "RetryPolicy",
    "SequencedChannel",
]
