"""Collective operations for the simulated MPI layer.

Collectives are implemented as rendezvous: every rank contributes its
value and entry time; the last arriver computes the results (folding in
rank order, so floating-point results are deterministic) and the
completion time ``max(entry_times) + cost``; every rank then merges the
completion time into its clock.

Costs use hierarchical tree formulas: a tree across the ranks of one
node at intra-node message cost plus a tree across nodes at network
cost — the natural shape of a tuned multicore-cluster collective.
"""

from __future__ import annotations

import math
import operator
import threading
from typing import Callable

import numpy as np

from repro.machine.cluster import Cluster
from repro.mpi.datatypes import copy_payload, payload_nbytes

_OPS: dict[str, Callable] = {
    "sum": operator.add,
    "prod": operator.mul,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) or isinstance(b, np.ndarray) else max(a, b),
}


def resolve_op(op: str | Callable) -> Callable:
    """Map an op name ('sum', 'prod', 'min', 'max') or callable to a
    binary function."""
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; expected one of {sorted(_OPS)}") from None


def fold(values: list, op: str | Callable):
    """Left-fold ``values`` (in rank order) with ``op``."""
    if not values:
        raise ValueError("cannot reduce zero values")
    fn = resolve_op(op)
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc


class CollectiveMismatchError(RuntimeError):
    """Ranks called different collective operations concurrently."""


class CollectiveEngine:
    """Shared rendezvous state for one job's collectives."""

    def __init__(self, size: int, cluster: Cluster) -> None:
        self.size = size
        self.cluster = cluster
        self._cond = threading.Condition()
        self._gen = 0
        self._contrib: dict[int, tuple[object, float]] = {}
        self._kinds: set[str] = set()
        self._results: dict[int, tuple[list, float]] = {}
        self._pending: dict[int, int] = {}
        self._aborted = False

    def abort(self) -> None:
        """Release ranks blocked in a rendezvous (job failure)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # Cost model helpers
    # ------------------------------------------------------------------
    def _layout(self) -> tuple[int, int]:
        """(nodes involved, max ranks on one node) for this job."""
        cpn = self.cluster.cores_per_node
        nodes = math.ceil(self.size / cpn)
        ranks_per_node = min(self.size, cpn)
        return nodes, ranks_per_node

    @staticmethod
    def _depth(p: int) -> int:
        return max(0, math.ceil(math.log2(p))) if p > 1 else 0

    def _tree_cost(self, nbytes: int) -> float:
        """One tree sweep (reduce or bcast) over the whole job."""
        net = self.cluster.network
        cfg = self.cluster.config
        nodes, rpn = self._layout()
        intra = self._depth(rpn) * (
            net.message_time(nbytes, intra_node=True)
            + cfg.effective_msg_overhead(True)
        )
        inter = self._depth(nodes) * (
            net.message_time(nbytes, intra_node=False) + cfg.mpi_msg_overhead
        )
        return intra + inter

    def _cost(self, kind: str, nbytes: int) -> float:
        net = self.cluster.network
        nodes, rpn = self._layout()
        if kind == "barrier":
            return net.barrier_time(nodes) + net.barrier_time(rpn)
        if kind in ("bcast", "reduce", "gather", "scatter", "scan"):
            return self._tree_cost(nbytes)
        if kind == "allreduce":
            return 2.0 * self._tree_cost(nbytes)
        if kind == "allgather":
            if self.size <= 1:
                return 0.0
            intra = nodes == 1
            step = net.message_time(nbytes, intra) + self.cluster.config.effective_msg_overhead(intra)
            return (self.size - 1) * step
        raise ValueError(f"unknown collective kind {kind!r}")

    # ------------------------------------------------------------------
    # Rendezvous core
    # ------------------------------------------------------------------
    def _exchange(self, comm, kind: str, value: object, finalize: Callable) -> object:
        """Contribute ``value``; when everyone arrived, ``finalize``
        builds per-rank results and the completion time; return this
        rank's result after merging the completion time."""
        rank = comm.rank
        with self._cond:
            gen = self._gen
            if rank in self._contrib:
                raise CollectiveMismatchError(
                    f"rank {rank} entered two collectives concurrently"
                )
            self._contrib[rank] = (value, comm.ctx.now)
            self._kinds.add(kind)
            if len(self._contrib) == self.size:
                if len(self._kinds) != 1:
                    kinds = sorted(self._kinds)
                    self._contrib.clear()
                    self._kinds.clear()
                    raise CollectiveMismatchError(
                        f"ranks called mismatched collectives: {kinds}"
                    )
                values = [self._contrib[r][0] for r in range(self.size)]
                entries = [self._contrib[r][1] for r in range(self.size)]
                results, completion = finalize(values, entries)
                self._results[gen] = (results, completion)
                self._pending[gen] = self.size
                self._contrib.clear()
                self._kinds.clear()
                self._gen += 1
                self._cond.notify_all()
            else:
                while gen not in self._results:
                    if self._aborted:
                        from repro.mpi.comm import JobAbortedError

                        raise JobAbortedError(
                            f"rank {rank} released from {kind}: another rank failed"
                        )
                    if not self._cond.wait(timeout=comm._timeout):
                        raise RuntimeError(
                            f"collective {kind!r} timed out at rank {rank} — "
                            f"only {len(self._contrib)}/{self.size} ranks arrived"
                        )
            results, completion = self._results[gen]
            out = results[rank]
            self._pending[gen] -= 1
            if self._pending[gen] == 0:
                del self._results[gen]
                del self._pending[gen]
        comm.ctx.clock.merge(completion)
        self.cluster.trace.record(
            "collective", rank, completion, detail=kind
        )
        return out

    def _simple_finalize(self, kind: str, nbytes_fn: Callable[[list], int], result_fn: Callable[[list], list]) -> Callable:
        def finalize(values: list, entries: list) -> tuple[list, float]:
            cost = self._cost(kind, nbytes_fn(values))
            return result_fn(values), max(entries) + cost
        return finalize

    # ------------------------------------------------------------------
    # Public collectives
    # ------------------------------------------------------------------
    def barrier(self, comm) -> None:
        self._exchange(
            comm,
            "barrier",
            None,
            self._simple_finalize("barrier", lambda v: 0, lambda v: [None] * self.size),
        )

    def bcast(self, comm, obj: object, root: int) -> object:
        self._check_root(root)
        send = obj if comm.rank == root else None

        def result_fn(values: list) -> list:
            payload = values[root]
            return [payload if r == root else copy_payload(payload) for r in range(self.size)]

        return self._exchange(
            comm,
            "bcast",
            send,
            self._simple_finalize("bcast", lambda v: payload_nbytes(v[root]), result_fn),
        )

    def reduce(self, comm, value: object, op: str | Callable, root: int) -> object:
        self._check_root(root)

        def result_fn(values: list) -> list:
            total = fold(values, op)
            return [total if r == root else None for r in range(self.size)]

        return self._exchange(
            comm,
            "reduce",
            value,
            self._simple_finalize("reduce", lambda v: payload_nbytes(v[0]), result_fn),
        )

    def allreduce(self, comm, value: object, op: str | Callable) -> object:
        def result_fn(values: list) -> list:
            total = fold(values, op)
            return [copy_payload(total) for _ in range(self.size)]

        return self._exchange(
            comm,
            "allreduce",
            value,
            self._simple_finalize("allreduce", lambda v: payload_nbytes(v[0]), result_fn),
        )

    def gather(self, comm, value: object, root: int) -> list | None:
        self._check_root(root)

        def result_fn(values: list) -> list:
            return [list(values) if r == root else None for r in range(self.size)]

        return self._exchange(
            comm,
            "gather",
            value,
            self._simple_finalize("gather", lambda v: max(payload_nbytes(x) for x in v), result_fn),
        )

    def allgather(self, comm, value: object) -> list:
        def result_fn(values: list) -> list:
            return [copy_payload(values) for _ in range(self.size)]

        return self._exchange(
            comm,
            "allgather",
            value,
            self._simple_finalize("allgather", lambda v: max(payload_nbytes(x) for x in v), result_fn),
        )

    def scatter(self, comm, values: list | None, root: int) -> object:
        self._check_root(root)
        if comm.rank == root:
            if values is None or len(values) != self.size:
                raise ValueError(
                    f"scatter root must supply exactly {self.size} values"
                )

        def result_fn(contribs: list) -> list:
            vals = contribs[root]
            return [copy_payload(v) for v in vals]

        return self._exchange(
            comm,
            "scatter",
            values,
            self._simple_finalize(
                "scatter",
                lambda v: max(payload_nbytes(x) for x in v[root]),
                result_fn,
            ),
        )

    def scan(self, comm, value: object, op: str | Callable) -> object:
        def result_fn(values: list) -> list:
            out = []
            fn = resolve_op(op)
            acc = None
            for v in values:
                acc = v if acc is None else fn(acc, v)
                out.append(copy_payload(acc))
            return out

        return self._exchange(
            comm,
            "scan",
            value,
            self._simple_finalize("scan", lambda v: payload_nbytes(v[0]), result_fn),
        )

    def alltoall(self, comm, values: list) -> list:
        if len(values) != self.size:
            raise ValueError(
                f"alltoall needs exactly {self.size} values per rank, got {len(values)}"
            )

        def finalize(contribs: list, entries: list) -> tuple[list, float]:
            # Personalised exchange.  A real MPI picks its algorithm by
            # payload: pairwise exchange for large messages (serialised
            # injection per rank), Bruck's log-P algorithm for small
            # ones (each of ceil(log2 P) rounds ships about half of a
            # rank's total payload).  Charge the cheaper of the two;
            # completion synchronises at the slowest rank.
            net = self.cluster.network
            cfg = self.cluster.config
            worst = 0.0
            total_bytes = 0
            log_rounds = self._depth(self.size)
            for i in range(self.size):
                t_pairwise = 0.0
                rank_bytes = 0
                for j in range(self.size):
                    if i == j:
                        continue
                    nb = payload_nbytes(contribs[i][j])
                    total_bytes += nb
                    rank_bytes += nb
                    intra = self.cluster.same_node(i, j)
                    t_pairwise += net.message_time(nb, intra) + cfg.effective_msg_overhead(intra)
                t_bruck = log_rounds * (
                    net.message_time(rank_bytes // 2, intra_node=False)
                    + cfg.mpi_msg_overhead
                )
                worst = max(worst, min(t_pairwise, t_bruck))
            results = [
                [
                    contribs[i][j] if i == j else copy_payload(contribs[i][j])
                    for i in range(self.size)
                ]
                for j in range(self.size)
            ]
            self.cluster.trace.record(
                "alltoall", 0, max(entries) + worst,
                messages=self.size * (self.size - 1), nbytes=total_bytes,
            )
            return results, max(entries) + worst

        return self._exchange(comm, "alltoall", values, finalize)

    # ------------------------------------------------------------------
    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range [0, {self.size})")
