"""Payload size accounting for the simulated MPI layer.

The cost model needs the wire size of every message.  For numpy arrays
this is exact (``arr.nbytes``); for plain Python objects we use a small
structural estimator and fall back to pickling for anything exotic, so
the estimate is deterministic and reasonable without requiring apps to
declare datatypes.
"""

from __future__ import annotations

import pickle

import numpy as np

_SCALAR_BYTES = 8
_CONTAINER_HEADER = 16


def payload_nbytes(obj: object) -> int:
    """Estimated wire size of ``obj`` in bytes."""
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (np.generic,)):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, bool) or obj is None:
        return 1
    if isinstance(obj, (int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(obj, (tuple, list, set, frozenset)):
        return _CONTAINER_HEADER + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return _CONTAINER_HEADER + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    # Deterministic fallback for arbitrary objects.
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        import sys

        return sys.getsizeof(obj)


def copy_payload(obj: object) -> object:
    """Defensive copy of a message payload.

    Real MPI copies data out of the send buffer; aliasing a live numpy
    array between two simulated ranks would be a correctness bug, so
    arrays are copied eagerly.  Immutable scalars/strings pass through;
    containers are copied recursively.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, (bytes, str, int, float, complex, bool)) or obj is None:
        return obj
    if isinstance(obj, np.generic):
        return obj
    if isinstance(obj, tuple):
        return tuple(copy_payload(x) for x in obj)
    if isinstance(obj, list):
        return [copy_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: copy_payload(v) for k, v in obj.items()}
    if isinstance(obj, (set, frozenset)):
        return type(obj)(copy_payload(x) for x in obj)
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
