"""SPMD launcher for the simulated MPI layer.

``run_mpi(program, cluster)`` plays the role of ``mpiexec``: it starts
one Python thread per rank (one rank per core, node-major layout, as on
the paper's Franklin runs), hands each a :class:`Communicator`, and
collects results.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.machine.cluster import Cluster
from repro.mpi.collectives import CollectiveEngine
from repro.mpi.comm import Communicator, MailboxSystem
from repro.mpi.process import RankContext


class MpiDeadlockError(RuntimeError):
    """The job did not finish within the real-time budget."""


@dataclass
class MpiResult:
    """Outcome of one SPMD job."""

    results: list
    """Per-rank return values of the program."""

    elapsed: float
    """Simulated makespan: the maximum rank clock at exit."""

    rank_times: list[float] = field(default_factory=list)
    """Per-rank simulated finishing times."""


def run_mpi(
    program: Callable,
    cluster: Cluster,
    *args: object,
    ranks: int | None = None,
    timeout: float = 120.0,
    **kwargs: object,
) -> MpiResult:
    """Run ``program(comm, *args, **kwargs)`` as an SPMD job.

    Parameters
    ----------
    program:
        The rank program.  Its first argument is the rank's
        :class:`~repro.mpi.comm.Communicator`.
    cluster:
        The simulated machine.  By default the job uses every core
        (``ranks = cluster.total_cores``).
    ranks:
        Optional smaller rank count (ranks are packed node-major).
    timeout:
        Real-time seconds after which the job is declared deadlocked.

    Returns
    -------
    MpiResult
        Per-rank return values and the simulated makespan.
    """
    size = cluster.total_cores if ranks is None else ranks
    if not 1 <= size <= cluster.total_cores:
        raise ValueError(
            f"ranks must be in [1, {cluster.total_cores}], got {size}"
        )

    mailboxes = MailboxSystem(size)
    engine = CollectiveEngine(size, cluster)
    comms: list[Communicator] = []
    for rank in range(size):
        ctx = RankContext(rank, size, cluster)
        comm = Communicator(ctx, mailboxes, cluster, timeout=timeout)
        comm.collectives = engine
        comms.append(comm)

    results: list = [None] * size
    errors: list = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = program(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            # Release peers blocked on this rank so the job fails fast
            # instead of waiting out the real-time timeout.
            mailboxes.abort()
            engine.abort()

    threads = [
        threading.Thread(target=runner, args=(rank,), daemon=True, name=f"mpi-rank-{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            raise MpiDeadlockError(
                f"MPI job did not finish within {timeout}s of real time; "
                f"thread {t.name} still running (deadlock?)"
            )
    # Report the root-cause failure, not the secondary JobAborted
    # releases of its peers.
    from repro.mpi.comm import JobAbortedError

    primary = None
    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, JobAbortedError):
            primary = (rank, err)
            break
    if primary is None:
        for rank, err in enumerate(errors):
            if err is not None:
                primary = (rank, err)
                break
    if primary is not None:
        rank, err = primary
        raise RuntimeError(f"rank {rank} failed: {err!r}") from err

    rank_times = [c.ctx.now for c in comms]
    return MpiResult(results=results, elapsed=max(rank_times), rank_times=rank_times)
