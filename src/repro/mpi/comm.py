"""Point-to-point messaging and communicator for the simulated MPI.

One :class:`Communicator` per rank, all sharing a :class:`MailboxSystem`
created by the launcher.  Sends are eager/buffered (payloads are copied
out, the sender does not block), receives block the calling thread until
a matching message exists.  Matching is FIFO per (source, tag).

Simulated-time rules (conservative virtual time):

* ``send``: the sender charges the per-message CPU overhead, then the
  message's *arrival* is stamped ``sender_clock + wire_time``;
* ``recv``: the receiver charges its own per-message CPU overhead and
  then merges the arrival stamp into its clock.

Inter-node wire time is inflated by the NIC-contention factor of the
sender's node (MPI ranks inject traffic without coordination; the PPM
runtime's scheduled stream does not pay this — paper section 3.3).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.machine.cluster import Cluster
from repro.mpi.datatypes import copy_payload, payload_nbytes
from repro.mpi.process import RankContext

ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 60.0  # real seconds before declaring deadlock


class MpiTimeoutError(RuntimeError):
    """A blocking operation waited longer than the real-time timeout,
    which in a deterministic simulation means deadlock."""


class JobAbortedError(RuntimeError):
    """Another rank of this job failed; blocked operations are
    released with this exception instead of waiting for a timeout."""


class _Message:
    __slots__ = ("source", "tag", "payload", "nbytes", "arrival", "seq")

    def __init__(self, source: int, tag: int, payload: object, nbytes: int, arrival: float, seq: int) -> None:
        self.source = source
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.arrival = arrival
        self.seq = seq


class MailboxSystem:
    """Shared in-flight message store for all ranks of one job."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._cond = [threading.Condition() for _ in range(size)]
        self._queues: list[dict[tuple[int, int], deque[_Message]]] = [
            {} for _ in range(size)
        ]
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._aborted = False

    def abort(self) -> None:
        """Release every blocked receiver with :class:`JobAbortedError`
        (called by the launcher when some rank fails)."""
        self._aborted = True
        for cond in self._cond:
            with cond:
                cond.notify_all()

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def post(self, dest: int, msg_source: int, tag: int, payload: object, nbytes: int, arrival: float) -> None:
        seq = self._next_seq()
        cond = self._cond[dest]
        with cond:
            key = (msg_source, tag)
            self._queues[dest].setdefault(key, deque()).append(
                _Message(msg_source, tag, payload, nbytes, arrival, seq)
            )
            cond.notify_all()

    def _match(self, dest: int, source: int, tag: int) -> _Message | None:
        """Pop the best matching message, or None.  Must hold the lock."""
        queues = self._queues[dest]
        if source != ANY_SOURCE and tag != ANY_TAG:
            q = queues.get((source, tag))
            if q:
                return q.popleft()
            return None
        # Wildcard: choose the candidate with the smallest (arrival,
        # seq) for reproducibility given identical posting histories.
        best_key: tuple[int, int] | None = None
        best: _Message | None = None
        for key, q in queues.items():
            if not q:
                continue
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            head = q[0]
            if best is None or (head.arrival, head.seq) < (best.arrival, best.seq):
                best, best_key = head, key
        if best is not None and best_key is not None:
            queues[best_key].popleft()
        return best

    def take(self, dest: int, source: int, tag: int, timeout: float) -> _Message:
        cond = self._cond[dest]
        with cond:
            msg = self._match(dest, source, tag)
            while msg is None:
                if self._aborted:
                    raise JobAbortedError(
                        f"rank {dest} released from recv: another rank failed"
                    )
                if not cond.wait(timeout=timeout):
                    raise MpiTimeoutError(
                        f"rank {dest} recv(source={source}, tag={tag}) timed out "
                        f"after {timeout}s of real time — likely deadlock"
                    )
                msg = self._match(dest, source, tag)
            return msg

    def peek(self, dest: int, source: int, tag: int) -> bool:
        cond = self._cond[dest]
        with cond:
            queues = self._queues[dest]
            for key, q in queues.items():
                if not q:
                    continue
                if source != ANY_SOURCE and key[0] != source:
                    continue
                if tag != ANY_TAG and key[1] != tag:
                    continue
                return True
            return False


class Request:
    """Handle for a non-blocking operation; ``wait()`` completes it."""

    def __init__(self, complete: Callable[[], object]) -> None:
        self._complete = complete
        self._done = False
        self._value: object = None

    def wait(self) -> object:
        """Block until the operation completes; returns the received
        payload for ``irecv`` requests, ``None`` for ``isend``."""
        if not self._done:
            self._value = self._complete()
            self._done = True
        return self._value

    def test(self) -> bool:
        """True when the operation already completed via :meth:`wait`."""
        return self._done


class Communicator:
    """One rank's endpoint: identity plus messaging operations.

    Collective operations live in
    :class:`~repro.mpi.collectives.CollectiveEngine` and are bound to
    the communicator by the launcher (``comm.barrier()`` etc.).
    """

    def __init__(
        self,
        ctx: RankContext,
        mailboxes: MailboxSystem,
        cluster: Cluster,
        *,
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> None:
        self.ctx = ctx
        self._mail = mailboxes
        self._cluster = cluster
        self._timeout = timeout
        self.collectives = None  # bound by the launcher

    # -- identity ------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.ctx.rank

    @property
    def size(self) -> int:
        return self.ctx.size

    @property
    def config(self):
        return self._cluster.config

    @property
    def now(self) -> float:
        return self.ctx.now

    def work(self, flops: float) -> None:
        """Charge computation to this rank (see :meth:`RankContext.work`)."""
        self.ctx.work(flops)

    def mem_work(self, accesses: float) -> None:
        """Charge irregular memory accesses to this rank."""
        self.ctx.mem_work(accesses)

    # -- point-to-point --------------------------------------------------
    def _wire_time(self, nbytes: int, dest: int) -> tuple[float, bool]:
        intra = self._cluster.same_node(self.rank, dest)
        net = self._cluster.network
        t = net.message_time(nbytes, intra)
        if not intra:
            # Uncoordinated injection from this node's ranks.
            t *= net.contention_factor(self._cluster.cores_per_node)
        return t, intra

    def send(self, obj: object, dest: int, tag: int = 0) -> None:
        """Buffered send: copies ``obj`` and returns immediately."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range [0, {self.size})")
        nbytes = payload_nbytes(obj)
        wire, intra = self._wire_time(nbytes, dest)
        self.ctx.clock.advance(self._cluster.network.message_cpu_overhead(intra))
        arrival = self.ctx.now + wire
        self._mail.post(dest, self.rank, tag, copy_payload(obj), nbytes, arrival)
        self._cluster.trace.record(
            "msg", self.rank, arrival, messages=1, nbytes=nbytes,
            detail=f"send->{dest} tag={tag}",
        )

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> object:
        """Blocking receive; returns the payload."""
        msg = self._mail.take(self.rank, source, tag, self._timeout)
        intra = self._cluster.same_node(self.rank, msg.source)
        self.ctx.clock.advance(self._cluster.network.message_cpu_overhead(intra))
        self.ctx.clock.merge(msg.arrival)
        return msg.payload

    def isend(self, obj: object, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (eagerly buffered, hence already complete)."""
        self.send(obj, dest, tag)
        req = Request(lambda: None)
        req.wait()
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completion happens at ``wait()``."""
        return Request(lambda: self.recv(source, tag))

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True when a matching message is already available."""
        return self._mail.peek(self.rank, source, tag)

    def sendrecv(self, obj: object, dest: int, source: int, sendtag: int = 0, recvtag: int = ANY_TAG) -> object:
        """Combined exchange, deadlock-free by eager buffering."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    # -- collectives (delegated) ----------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self.collectives.barrier(self)

    def bcast(self, obj: object, root: int = 0) -> object:
        """Broadcast ``obj`` from ``root`` to every rank."""
        return self.collectives.bcast(self, obj, root)

    def reduce(self, value: object, op: str | Callable = "sum", root: int = 0) -> object:
        """Reduce to ``root`` (returns None elsewhere)."""
        return self.collectives.reduce(self, value, op, root)

    def allreduce(self, value: object, op: str | Callable = "sum") -> object:
        """Reduce and distribute the result to every rank."""
        return self.collectives.allreduce(self, value, op)

    def gather(self, value: object, root: int = 0) -> list | None:
        """Gather one value per rank to ``root``."""
        return self.collectives.gather(self, value, root)

    def allgather(self, value: object) -> list:
        """Gather one value per rank to every rank."""
        return self.collectives.allgather(self, value)

    def scatter(self, values: list | None, root: int = 0) -> object:
        """Scatter a list of ``size`` values from ``root``."""
        return self.collectives.scatter(self, values, root)

    def alltoall(self, values: list) -> list:
        """Personalised all-to-all: ``values[j]`` goes to rank ``j``."""
        return self.collectives.alltoall(self, values)

    def scan(self, value: object, op: str | Callable = "sum") -> object:
        """Inclusive prefix reduction over ranks."""
        return self.collectives.scan(self, value, op)
