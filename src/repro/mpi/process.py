"""Per-rank execution context for the simulated MPI layer."""

from __future__ import annotations

from repro.machine.clock import LogicalClock
from repro.machine.cluster import Cluster


class RankContext:
    """Identity, clock and cost-charging interface of one MPI rank.

    Application code receives a :class:`~repro.mpi.comm.Communicator`
    whose ``.ctx`` is this object; kernels charge their computation via
    :meth:`work` so that simulated time reflects the target machine
    rather than the Python interpreter.
    """

    def __init__(self, rank: int, size: int, cluster: Cluster) -> None:
        self.rank = rank
        self.size = size
        self.cluster = cluster
        self.node_id = cluster.rank_to_node(rank)
        self.core_id = cluster.rank_to_core(rank)
        self.clock = LogicalClock()

    @property
    def config(self):
        """The cluster's :class:`~repro.config.MachineConfig`."""
        return self.cluster.config

    @property
    def now(self) -> float:
        """This rank's current simulated time."""
        return self.clock.now

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------
    def work(self, flops: float) -> None:
        """Charge ``flops`` floating-point operations of computation."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self.clock.advance(flops * self.config.flop_time)

    def mem_work(self, accesses: float) -> None:
        """Charge ``accesses`` irregular local memory accesses."""
        if accesses < 0:
            raise ValueError(f"accesses must be non-negative, got {accesses}")
        self.clock.advance(accesses * self.config.mem_access_time)

    def idle_until(self, t: float) -> None:
        """Advance the clock to ``t`` if it is behind (synchronisation)."""
        self.clock.merge(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankContext(rank={self.rank}/{self.size}, node={self.node_id}, t={self.now:.6g})"
