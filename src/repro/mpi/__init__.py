"""MPI-like message-passing library on the simulated cluster.

The paper's baselines are hand-written MPI programs and its PPM runtime
sits "on top of an existing network communication software layer (e.g.
MPI)".  This package provides that layer: blocking/non-blocking
point-to-point messaging plus the usual collectives, with one real
Python thread per rank and simulated-time accounting through each
rank's logical clock.

Costs are charged where a real MPI implementation pays them:

* per-message CPU overhead on both endpoints (intra-node messages too,
  unless the SmartMap ablation is on);
* alpha/beta wire time (inter-node) or memory-copy time (intra-node);
* NIC contention: MPI ranks inject traffic without coordination, so
  inter-node wire time is inflated by the configured contention factor
  for the node's core count.

Determinism: message matching is FIFO per (source, tag) and completion
times follow the conservative virtual-time rule
``completion = max(receiver_clock, arrival) + overhead``, so results
and simulated times are independent of real thread scheduling as long
as programs avoid ``ANY_SOURCE`` races (all bundled apps do).
"""

from repro.mpi.comm import ANY_SOURCE, ANY_TAG, Communicator, Request
from repro.mpi.datatypes import payload_nbytes
from repro.mpi.launcher import MpiDeadlockError, run_mpi
from repro.mpi.process import RankContext

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiDeadlockError",
    "RankContext",
    "Request",
    "payload_nbytes",
    "run_mpi",
]
