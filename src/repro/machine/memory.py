"""Per-node physical shared memory.

Each simulated node owns one :class:`NodeMemory`: a dictionary of named
numpy arrays standing in for the node's physical shared memory.  Both
PPM node-shared variables and each node's partition of global shared
variables live here, which mirrors the paper's statement that "both PPM
local variables and node-level shared variables are stored in the
physical shared memory of the node".
"""

from __future__ import annotations

from typing import Iterator

import numpy as np


class NodeMemory:
    """Named numpy-backed storage segments for one node."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._segments: dict[str, np.ndarray] = {}

    def allocate(self, name: str, shape: tuple[int, ...] | int, dtype: np.dtype | str = np.float64, fill: float | int | None = 0) -> np.ndarray:
        """Allocate a named segment; error if the name is taken."""
        if name in self._segments:
            raise KeyError(f"segment {name!r} already allocated on node {self.node_id}")
        if fill is None:
            arr = np.empty(shape, dtype=dtype)
        else:
            arr = np.full(shape, fill, dtype=dtype)
        self._segments[name] = arr
        return arr

    def adopt(self, name: str, array: np.ndarray) -> np.ndarray:
        """Register an existing array as a segment (no copy)."""
        if name in self._segments:
            raise KeyError(f"segment {name!r} already allocated on node {self.node_id}")
        self._segments[name] = array
        return array

    def rebind(self, name: str, array: np.ndarray) -> np.ndarray:
        """Replace an existing segment's backing array (no copy).

        Used by the copy-on-commit protocol: when a live snapshot view
        pins a shared variable's buffer at commit time, the variable
        swaps in a fresh buffer and rebinds the node's segment to it.
        """
        if name not in self._segments:
            raise KeyError(f"segment {name!r} not allocated on node {self.node_id}")
        self._segments[name] = array
        return array

    def clear(self) -> None:
        """Release every segment at once — the node's memory image
        after a restart.  Crash recovery uses this between driver
        incarnations so the replay can re-declare its shared
        variables (:mod:`repro.resilience.manager`)."""
        self._segments.clear()

    def free(self, name: str) -> None:
        """Release a segment; error if unknown."""
        try:
            del self._segments[name]
        except KeyError:
            raise KeyError(f"segment {name!r} not allocated on node {self.node_id}") from None

    def get(self, name: str) -> np.ndarray:
        """Fetch a segment by name; error if unknown."""
        try:
            return self._segments[name]
        except KeyError:
            raise KeyError(f"segment {name!r} not allocated on node {self.node_id}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._segments

    def __iter__(self) -> Iterator[str]:
        return iter(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        """Sum of allocated segment sizes in bytes."""
        return sum(a.nbytes for a in self._segments.values())
