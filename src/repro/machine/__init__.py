"""Simulated cluster substrate.

This package stands in for the paper's physical platform (Franklin, a
Cray XT4).  It provides:

* :class:`~repro.machine.cluster.Cluster` — nodes and cores;
* :class:`~repro.machine.clock.LogicalClock` — per-entity simulated time;
* :class:`~repro.machine.network.NetworkModel` — message and collective
  cost formulas (alpha/beta, intra-node, bundling, NIC contention);
* :class:`~repro.machine.memory.NodeMemory` — per-node shared storage;
* :class:`~repro.machine.trace.Trace` — event recording and statistics.
"""

from repro.machine.clock import LogicalClock
from repro.machine.cluster import Cluster, Node
from repro.machine.memory import NodeMemory
from repro.machine.network import BundleCost, NetworkModel
from repro.machine.trace import Trace, TraceEvent

__all__ = [
    "BundleCost",
    "Cluster",
    "LogicalClock",
    "NetworkModel",
    "Node",
    "NodeMemory",
    "Trace",
    "TraceEvent",
]
