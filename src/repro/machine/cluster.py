"""Cluster topology: nodes and cores of the simulated machine."""

from __future__ import annotations

from typing import Iterator

from repro.config import MachineConfig
from repro.machine.clock import LogicalClock
from repro.machine.memory import NodeMemory
from repro.machine.network import NetworkModel
from repro.machine.trace import Trace


class Node:
    """One simulated node: an id, per-core clocks, and shared memory."""

    def __init__(self, node_id: int, cores: int) -> None:
        if cores < 1:
            raise ValueError(f"node needs at least one core, got {cores}")
        self.node_id = node_id
        self.cores = cores
        self.memory = NodeMemory(node_id)
        self.clock = LogicalClock()
        self.core_clocks = [LogicalClock() for _ in range(cores)]

    def sync_cores(self) -> float:
        """Node-level barrier: all core clocks and the node clock jump
        to the maximum core time.  Returns that time."""
        t = max(self.clock.now, max(c.now for c in self.core_clocks))
        self.clock.merge(t)
        for c in self.core_clocks:
            c.merge(t)
        return t

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node(id={self.node_id}, cores={self.cores})"


class Cluster:
    """The simulated machine: ``n_nodes`` nodes of ``cores_per_node``
    cores, one network model, and a shared event trace."""

    def __init__(self, config: MachineConfig, *, trace: Trace | None = None) -> None:
        self.config = config
        self.network = NetworkModel(config)
        self.trace = trace if trace is not None else Trace()
        self.nodes = [Node(i, config.cores_per_node) for i in range(config.n_nodes)]

    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    @property
    def cores_per_node(self) -> int:
        return self.config.cores_per_node

    @property
    def total_cores(self) -> int:
        return self.config.total_cores

    def node(self, node_id: int) -> Node:
        """Fetch a node by id with range checking."""
        if not 0 <= node_id < len(self.nodes):
            raise IndexError(f"node id {node_id} out of range [0, {len(self.nodes)})")
        return self.nodes[node_id]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    # ------------------------------------------------------------------
    # Rank <-> (node, core) mapping used by the MPI layer: ranks are
    # laid out node-major, matching how MPI jobs are launched on
    # multicore clusters (ranks 0..C-1 on node 0, etc.).
    # ------------------------------------------------------------------
    def rank_to_node(self, rank: int) -> int:
        """Node id hosting MPI rank ``rank``."""
        if not 0 <= rank < self.total_cores:
            raise IndexError(f"rank {rank} out of range [0, {self.total_cores})")
        return rank // self.cores_per_node

    def rank_to_core(self, rank: int) -> int:
        """Core index (within its node) of MPI rank ``rank``."""
        if not 0 <= rank < self.total_cores:
            raise IndexError(f"rank {rank} out of range [0, {self.total_cores})")
        return rank % self.cores_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True when the two ranks share a physical node."""
        return self.rank_to_node(rank_a) == self.rank_to_node(rank_b)

    @property
    def elapsed(self) -> float:
        """Makespan so far: the maximum node clock."""
        return max(n.clock.now for n in self.nodes)

    def reset_clocks(self) -> None:
        """Zero every clock (between experiment repetitions)."""
        for n in self.nodes:
            n.clock.reset()
            for c in n.core_clocks:
                c.reset()
