"""Event tracing and aggregate statistics for simulated runs.

Benchmarks and EXPERIMENTS.md report not just times but *why* — message
counts, bytes moved, phase counts — which is how we check that e.g. the
MPI Barnes-Hut baseline really ships whole trees while PPM ships only
the touched records.  Recording is cheap (tuples in a list) and can be
disabled wholesale for large sweeps.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is a short category string ("msg", "phase", "collective",
    "bundle", ...); ``who`` identifies the actor (node or rank id);
    ``t`` is the simulated completion time; ``messages``/``nbytes``
    carry communication volume; ``detail`` is free-form.
    """

    kind: str
    who: int
    t: float
    messages: int = 0
    nbytes: int = 0
    detail: str = ""


@dataclass
class Trace:
    """Append-only event log with aggregate counters."""

    enabled: bool = True
    events: list[TraceEvent] = field(default_factory=list)
    _messages: Counter = field(default_factory=Counter)
    _bytes: Counter = field(default_factory=Counter)

    def record(
        self,
        kind: str,
        who: int,
        t: float,
        *,
        messages: int = 0,
        nbytes: int = 0,
        detail: str = "",
    ) -> None:
        """Record one event (no-op when disabled, but counters still
        accumulate so statistics stay available for big sweeps)."""
        self._messages[kind] += messages
        self._bytes[kind] += nbytes
        if self.enabled:
            self.events.append(
                TraceEvent(kind=kind, who=who, t=t, messages=messages, nbytes=nbytes, detail=detail)
            )

    # -- statistics ----------------------------------------------------
    def total_messages(self, kind: str | None = None) -> int:
        """Total messages recorded, optionally for one event kind."""
        if kind is None:
            return sum(self._messages.values())
        return self._messages[kind]

    def total_bytes(self, kind: str | None = None) -> int:
        """Total payload bytes recorded, optionally for one kind."""
        if kind is None:
            return sum(self._bytes.values())
        return self._bytes[kind]

    def by_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate events of one kind (requires ``enabled``)."""
        return (e for e in self.events if e.kind == kind)

    def clear(self) -> None:
        """Drop all events and counters."""
        self.events.clear()
        self._messages.clear()
        self._bytes.clear()

    def __len__(self) -> int:
        return len(self.events)
