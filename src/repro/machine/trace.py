"""Machine-level aggregate tracing, built on the observability bus.

Benchmarks and EXPERIMENTS.md report not just times but *why* — message
counts, bytes moved, phase counts — which is how we check that e.g. the
MPI Barnes-Hut baseline really ships whole trees while PPM ships only
the touched records.  :class:`Trace` is the cluster's always-available
coarse log: one :class:`TraceEvent` per runtime-level occurrence, plus
per-kind message/byte counters that keep accumulating even when event
storage is disabled for large sweeps.

Since the observability layer (:mod:`repro.obs`) landed, ``Trace`` is a
thin specialisation of :class:`repro.obs.events.EventBus` — the same
append/subscribe substrate that powers the structured
:class:`~repro.obs.events.PhaseTrace`.  The difference is granularity:
``Trace`` carries untyped per-kind aggregates for benchmark bookkeeping,
while ``PhaseTrace`` (attached per run via ``run_ppm(..., trace=...)``)
records typed, per-phase events for reports and timeline export.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator

from repro.obs.events import EventBus


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is a short category string ("msg", "phase", "collective",
    "bundle", ...); ``who`` identifies the actor (node or rank id);
    ``t`` is the simulated completion time; ``messages``/``nbytes``
    carry communication volume; ``detail`` is free-form.
    """

    kind: str
    who: int
    t: float
    messages: int = 0
    nbytes: int = 0
    detail: str = ""


class Trace(EventBus):
    """Append-only event log with aggregate counters.

    ``enabled=False`` suppresses event storage (the list would grow
    unboundedly over a sweep) while the per-kind counters keep
    accumulating, so ``total_messages``/``total_bytes`` statistics stay
    available either way.
    """

    __slots__ = ("enabled", "_messages", "_bytes")

    def __init__(self, enabled: bool = True) -> None:
        super().__init__()
        self.enabled = enabled
        self._messages: Counter = Counter()
        self._bytes: Counter = Counter()

    def record(
        self,
        kind: str,
        who: int,
        t: float,
        *,
        messages: int = 0,
        nbytes: int = 0,
        detail: str = "",
    ) -> None:
        """Record one event (no event is stored when disabled, but
        counters still accumulate so statistics stay available)."""
        self._messages[kind] += messages
        self._bytes[kind] += nbytes
        if self.enabled:
            self.emit(
                TraceEvent(kind=kind, who=who, t=t, messages=messages, nbytes=nbytes, detail=detail)
            )

    # -- statistics ----------------------------------------------------
    def total_messages(self, kind: str | None = None) -> int:
        """Total messages recorded, optionally for one event kind."""
        if kind is None:
            return sum(self._messages.values())
        return self._messages[kind]

    def total_bytes(self, kind: str | None = None) -> int:
        """Total payload bytes recorded, optionally for one kind."""
        if kind is None:
            return sum(self._bytes.values())
        return self._bytes[kind]

    def by_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate events of one kind (requires ``enabled``)."""
        return (e for e in self.events if e.kind == kind)

    def clear(self) -> None:
        """Drop all events and counters."""
        super().clear()
        self._messages.clear()
        self._bytes.clear()
