"""Logical clocks for simulated-time accounting.

Every simulated entity (an MPI rank, a PPM node, a core) owns a
:class:`LogicalClock`.  Clocks only move forward; synchronisation
points advance a clock to the maximum of its own time and the peer
event time, which is the standard conservative virtual-time rule.
"""

from __future__ import annotations


class LogicalClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    start:
        Initial time in seconds.  Defaults to zero.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; simulated work cannot take
        negative time.
        """
        if dt < 0.0:
            raise ValueError(f"cannot advance clock by negative dt {dt}")
        self._now += dt
        return self._now

    def merge(self, other_time: float) -> float:
        """Synchronise with an event that completed at ``other_time``.

        The clock jumps forward to ``other_time`` if it is behind it;
        otherwise it is unchanged.  Returns the new time.
        """
        if other_time > self._now:
            self._now = float(other_time)
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Reset the clock (used between independent experiment runs)."""
        if to < 0.0:
            raise ValueError(f"clock cannot be reset to negative time {to}")
        self._now = float(to)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(now={self._now:.9f})"
