"""Network cost model for the simulated cluster.

All communication time in the repository flows through this module so
that the PPM runtime, the MPI library and the benchmarks charge costs
consistently.  The model is a classic alpha/beta (latency/bandwidth)
switch-level model with three paper-motivated refinements:

1. **Intra-node messages** have their own (cheaper) alpha/beta but
   still pay a per-message CPU overhead — the effect the paper's
   section 4.5 calls out for MPI ranks sharing a node.
2. **Bundling**: the PPM runtime coalesces fine-grained accesses into
   messages of at most ``bundle_max_bytes``; :meth:`NetworkModel.bundle`
   computes message counts, wire time and CPU time for a coalesced
   transfer, and :meth:`NetworkModel.unbundled` the one-message-per-
   element disaster used by the bundling ablation.
3. **NIC contention**: when several cores of one node inject traffic
   without coordination, the node's effective injection time inflates
   by ``1 + (R - 1) * nic_contention_coeff`` (paper section 3.3:
   "reduce contention of multiple cores competing for network
   resources").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import MachineConfig
from repro.obs.events import BarrierWait


@dataclass(frozen=True)
class BundleCost:
    """Cost breakdown of a (possibly multi-message) transfer.

    Attributes
    ----------
    messages:
        Number of wire messages.
    payload_bytes:
        Total payload bytes (elements plus addressing metadata).
    wire_time:
        Latency + bandwidth seconds on the network or memory bus.
    cpu_time:
        Per-message software seconds charged to the initiating side.
    """

    messages: int
    payload_bytes: int
    wire_time: float
    cpu_time: float

    @property
    def total_time(self) -> float:
        """Wire plus CPU seconds (no overlap)."""
        return self.wire_time + self.cpu_time

    def __add__(self, other: "BundleCost") -> "BundleCost":
        return BundleCost(
            messages=self.messages + other.messages,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            wire_time=self.wire_time + other.wire_time,
            cpu_time=self.cpu_time + other.cpu_time,
        )


ZERO_COST = BundleCost(messages=0, payload_bytes=0, wire_time=0.0, cpu_time=0.0)


class NetworkModel:
    """Message cost formulas parameterised by a :class:`MachineConfig`.

    ``tracer`` is the observability hook: a traced PPM runtime
    attaches its :class:`~repro.obs.events.PhaseTrace` here so the
    phase-closing synchronisation formulas report
    :class:`~repro.obs.events.BarrierWait` events.  ``None`` (the
    default) keeps every formula pure.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.tracer = None

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def message_time(self, nbytes: int, intra_node: bool) -> float:
        """Wire time of one message of ``nbytes`` payload bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        cfg = self.config
        if intra_node:
            return cfg.intra_alpha + nbytes * cfg.intra_beta
        return cfg.net_alpha + nbytes * cfg.net_beta

    def message_cpu_overhead(self, intra_node: bool) -> float:
        """Per-message CPU overhead on one endpoint."""
        return self.config.effective_msg_overhead(intra_node)

    def pt2pt_cost(self, nbytes: int, intra_node: bool) -> BundleCost:
        """Full cost of a single point-to-point message (one endpoint's
        CPU share; callers charge the other endpoint symmetrically)."""
        return BundleCost(
            messages=1,
            payload_bytes=nbytes,
            wire_time=self.message_time(nbytes, intra_node),
            cpu_time=self.message_cpu_overhead(intra_node),
        )

    # ------------------------------------------------------------------
    # Bundled fine-grained transfers (the PPM runtime's key trick)
    # ------------------------------------------------------------------
    def bundle(
        self,
        n_elements: int,
        intra_node: bool,
        *,
        element_bytes: int | None = None,
        with_index: bool = True,
    ) -> BundleCost:
        """Cost of shipping ``n_elements`` fine-grained items coalesced
        into bundles of at most ``bundle_max_bytes``.

        When ``with_index`` is true every element carries addressing
        metadata (``index_bytes``), as in a scattered read-request or a
        scattered write bundle; dense block transfers pass
        ``with_index=False``.
        """
        if n_elements < 0:
            raise ValueError(f"n_elements must be non-negative, got {n_elements}")
        if n_elements == 0:
            return ZERO_COST
        cfg = self.config
        per_elem = element_bytes if element_bytes is not None else cfg.element_bytes
        if with_index:
            per_elem += cfg.index_bytes
        payload = n_elements * per_elem
        if cfg.bundling:
            messages = max(1, math.ceil(payload / cfg.bundle_max_bytes))
        else:
            messages = n_elements  # one message per element (ablation)
        if intra_node:
            wire = messages * cfg.intra_alpha + payload * cfg.intra_beta
        else:
            wire = messages * cfg.net_alpha + payload * cfg.net_beta
        cpu = messages * self.message_cpu_overhead(intra_node)
        return BundleCost(
            messages=messages, payload_bytes=payload, wire_time=wire, cpu_time=cpu
        )

    def gather_round_trip(
        self,
        n_elements: int,
        intra_node: bool,
        *,
        element_bytes: int | None = None,
        rounds: int = 1,
    ) -> BundleCost:
        """Cost of a remote-read round trip for ``n_elements`` items:
        an index-carrying request bundle plus a dense reply bundle.

        ``rounds > 1`` models data-driven access chains (e.g. a tree
        traversal, where each fetch depends on the previous one): the
        elements are split into ``rounds`` serialised sub-fetches, so
        latency is paid per round while total bandwidth is unchanged.
        """
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if n_elements == 0:
            return ZERO_COST
        rounds = min(rounds, n_elements)
        total = ZERO_COST
        base = n_elements // rounds
        extra = n_elements % rounds
        for r in range(rounds):
            chunk = base + (1 if r < extra else 0)
            if chunk == 0:
                continue
            request = self.bundle(chunk, intra_node, element_bytes=0, with_index=True)
            reply = self.bundle(
                chunk, intra_node, element_bytes=element_bytes, with_index=False
            )
            total = total + request + reply
        return total

    # ------------------------------------------------------------------
    # NIC contention
    # ------------------------------------------------------------------
    def contention_factor(self, concurrent_streams: int) -> float:
        """Inflation of a node's injection time when ``concurrent_streams``
        cores inject uncoordinated traffic simultaneously.

        Returns 1.0 when the PPM runtime's NIC scheduling is active
        (traffic is serialised into one coordinated stream) or when at
        most one stream exists.
        """
        if concurrent_streams < 0:
            raise ValueError("concurrent_streams must be non-negative")
        if concurrent_streams <= 1:
            return 1.0
        cfg = self.config
        return 1.0 + (concurrent_streams - 1) * cfg.nic_contention_coeff

    # ------------------------------------------------------------------
    # Collectives (log-tree formulas over P participants)
    # ------------------------------------------------------------------
    @staticmethod
    def _tree_depth(participants: int) -> int:
        if participants < 1:
            raise ValueError("participants must be >= 1")
        return max(1, math.ceil(math.log2(participants))) if participants > 1 else 0

    def barrier_time(self, participants: int, *, intra_node: bool = False) -> float:
        """Time of a barrier across ``participants`` entities.

        ``intra_node`` only labels the scope of the emitted
        :class:`BarrierWait` event when a tracer is attached (a node
        phase synchronises one node's cores, a global phase the
        cluster's nodes); the cost formula is scope-independent.
        """
        t = self._tree_depth(participants) * self.config.barrier_alpha
        tr = self.tracer
        if tr is not None:
            tr.emit(
                BarrierWait(
                    phase=tr.phase,
                    scope="node" if intra_node else "cluster",
                    participants=participants,
                    duration=t,
                    fused=False,
                )
            )
        return t

    def reduce_time(self, participants: int, nbytes: int, intra_node: bool = False) -> float:
        """Time of a binomial-tree reduction of ``nbytes`` payloads."""
        depth = self._tree_depth(participants)
        return depth * self.message_time(nbytes, intra_node)

    def allreduce_time(self, participants: int, nbytes: int, intra_node: bool = False) -> float:
        """Reduce followed by broadcast (2x tree).

        A phase with collectives fuses its reduction into the closing
        barrier tree, so with a tracer attached this reports the
        phase's :class:`BarrierWait` with ``fused=True``.
        """
        t = 2.0 * self.reduce_time(participants, nbytes, intra_node)
        tr = self.tracer
        if tr is not None:
            tr.emit(
                BarrierWait(
                    phase=tr.phase,
                    scope="node" if intra_node else "cluster",
                    participants=participants,
                    duration=t,
                    fused=True,
                )
            )
        return t

    def bcast_time(self, participants: int, nbytes: int, intra_node: bool = False) -> float:
        """Binomial-tree broadcast."""
        return self.reduce_time(participants, nbytes, intra_node)

    def allgather_time(self, participants: int, nbytes_each: int, intra_node: bool = False) -> float:
        """Ring allgather: every entity ends up with ``participants *
        nbytes_each`` bytes; ``participants - 1`` ring steps."""
        if participants <= 1:
            return 0.0
        step = self.message_time(nbytes_each, intra_node)
        return (participants - 1) * step

    def alltoall_time(self, participants: int, nbytes_each_pair: int, intra_node: bool = False) -> float:
        """Pairwise-exchange all-to-all (``participants - 1`` rounds)."""
        if participants <= 1:
            return 0.0
        step = self.message_time(nbytes_each_pair, intra_node)
        return (participants - 1) * step
