"""Phase timing composition: cores, communication, overlap.

The runtime maps VPs onto cores as contiguous loop chunks
(:func:`repro.core.vp.core_of`); a phase's node-level compute time is
therefore the maximum per-core sum of VP costs.  Communication time
comes from the bundled traffic; the runtime hides a configurable
fraction of it under the computation (paper section 3.3: "scheduling
communication needs and computation tasks to enable (automatic)
overlap of computation and communication").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MachineConfig
from repro.core.bundling import NodeTraffic
from repro.machine.network import ZERO_COST, BundleCost, NetworkModel
from repro.obs.events import MessageRecv, MessageSend


@dataclass(frozen=True)
class PhaseTiming:
    """Timing breakdown of one phase on one node."""

    compute: float
    commit_cpu: float
    comm: float
    overlapped: float

    @property
    def busy(self) -> float:
        """Seconds the node is busy with this phase (before barrier)."""
        return self.compute + self.commit_cpu + self.comm - self.overlapped


def lpt_core_map(
    vp_costs: list[tuple[int, float]], cores: int
) -> dict[int, int] | None:
    """Greedy longest-processing-time-first VP→core packing.

    ``vp_costs`` pairs each VP's node rank with its measured cost from
    the previous phase; the result maps node rank → core id.  Returns
    ``None`` when no VP has history yet (callers keep the static
    contiguous chunks).  Deterministic: ties break on VP rank, then
    core id — both the inline engine and the process backend derive a
    phase's core map through this one function, so load-balanced runs
    stay bitwise identical across executors.
    """
    if not any(cost for _, cost in vp_costs):
        return None
    order = sorted(vp_costs, key=lambda rc: (-rc[1], rc[0]))
    loads = [0.0] * cores
    assignment: dict[int, float] = {}
    for rank, cost in order:
        core = min(range(cores), key=lambda c: (loads[c], c))
        assignment[rank] = core
        loads[core] += cost
    return assignment


def node_compute_time(core_costs: dict[int, float]) -> float:
    """Node compute time: the slowest core's accumulated VP cost."""
    if not core_costs:
        return 0.0
    return max(core_costs.values())


def node_comm_cost(
    network: NetworkModel,
    traffic: NodeTraffic,
    *,
    latency_rounds: int = 1,
    tracer=None,
) -> BundleCost:
    """Bundled communication cost of one node's phase traffic.

    The runtime issues the bundles for all peers concurrently, so
    network *latency* is paid once per serialised fetch round (a
    request/reply pair, times ``latency_rounds`` for data-driven
    chains), while *bandwidth* is serialised through the node's NIC
    (total bytes times beta) and per-message CPU overhead accumulates
    over every bundle.

    With ``tracer`` set, every wire transfer emits a
    :class:`~repro.obs.events.MessageSend`/`MessageRecv` pair (read
    requests and write bundles travel node→owner, read replies
    owner→node).  The runtime passes the tracer only on each node's
    primary cost call, never on the per-peer owner-overhead
    recomputations, so each transfer is reported exactly once.
    """
    cfg = network.config
    msgs = 0
    nbytes = 0
    has_reads = False
    has_writes = False

    def record(src: int, dst: int, variable: str, purpose: str, cost: BundleCost) -> None:
        tracer.emit(
            MessageSend(
                phase=tracer.phase,
                src=src,
                dst=dst,
                variable=variable,
                purpose=purpose,
                messages=cost.messages,
                nbytes=cost.payload_bytes,
            )
        )
        tracer.emit(
            MessageRecv(
                phase=tracer.phase,
                src=src,
                dst=dst,
                variable=variable,
                purpose=purpose,
                messages=cost.messages,
                nbytes=cost.payload_bytes,
            )
        )

    for p in traffic.peers:
        if p.read_elems:
            has_reads = True
            req = network.bundle(p.read_elems, False, element_bytes=0, with_index=True)
            rep = network.bundle(
                p.read_elems, False, element_bytes=p.shared.itemsize, with_index=False
            )
            msgs += req.messages + rep.messages
            nbytes += req.payload_bytes + rep.payload_bytes
            if tracer is not None:
                record(traffic.node_id, p.owner, p.shared.name, "read_request", req)
                record(p.owner, traffic.node_id, p.shared.name, "read_reply", rep)
        if p.write_elems:
            has_writes = True
            wb = network.bundle(
                p.write_elems, False, element_bytes=p.shared.itemsize, with_index=True
            )
            msgs += wb.messages
            nbytes += wb.payload_bytes
            if tracer is not None:
                record(traffic.node_id, p.owner, p.shared.name, "write_bundle", wb)
    if msgs == 0:
        return ZERO_COST
    latency_hops = 0
    if has_reads:
        latency_hops += 2 * latency_rounds  # request + reply per round
    if has_writes:
        latency_hops += 1
    wire = nbytes * cfg.net_beta + latency_hops * cfg.net_alpha
    cpu = msgs * cfg.mpi_msg_overhead
    return BundleCost(messages=msgs, payload_bytes=nbytes, wire_time=wire, cpu_time=cpu)


def peer_owner_messages(network: NetworkModel, p) -> int:
    """Message count of one peer entry's traffic, as the owner sees it.

    Identical to the ``messages`` field of :func:`node_comm_cost` on a
    single-peer ``NodeTraffic`` (latency rounds never change message
    counts), but without building the throwaway traffic object or
    computing wire/cpu times the caller discards.  The runtime charges
    the owner ``messages * mpi_msg_overhead`` per peer, and memoises
    this per ``(read_elems, write_elems, itemsize)`` within a phase.
    """
    msgs = 0
    if p.read_elems:
        msgs += network.bundle(
            p.read_elems, False, element_bytes=0, with_index=True
        ).messages
        msgs += network.bundle(
            p.read_elems, False, element_bytes=p.shared.itemsize, with_index=False
        ).messages
    if p.write_elems:
        msgs += network.bundle(
            p.write_elems, False, element_bytes=p.shared.itemsize, with_index=True
        ).messages
    return msgs


def compose_phase_timing(
    config: MachineConfig,
    network: NetworkModel,
    *,
    compute: float,
    commit_cpu: float,
    comm_cost: BundleCost,
    extra_comm_cpu: float = 0.0,
    certified: bool = False,
) -> PhaseTiming:
    """Combine compute, commit and communication into a node's phase
    timing, applying NIC scheduling/contention and overlap.

    ``certified`` marks a phase carrying a static conflict-freedom
    certificate (:mod:`repro.analysis.certify`): its remote traffic
    touches rows proven disjoint across VPs, so the scheduler may hide
    ``config.certified_overlap_fraction`` of it under compute instead
    of the default ``overlap_fraction``.  With the default
    ``certified_overlap_fraction=None`` the flag changes nothing, so
    certified and uncertified runs stay time-identical.
    """
    if config.nic_scheduling:
        factor = 1.0
    else:
        factor = network.contention_factor(config.cores_per_node)
    comm = comm_cost.wire_time * factor + comm_cost.cpu_time + extra_comm_cpu
    fraction = config.overlap_fraction
    if certified and config.certified_overlap_fraction is not None:
        fraction = config.certified_overlap_fraction
    if fraction > 0.0:
        overlapped = min(comm, fraction * compute)
    else:
        overlapped = 0.0
    return PhaseTiming(
        compute=compute, commit_cpu=commit_cpu, comm=comm, overlapped=overlapped
    )
