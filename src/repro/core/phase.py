"""Per-phase access recording and the batched commit engine.

While the VPs of a phase execute, every shared-variable access is
recorded here; the commit protocol (in
:mod:`repro.core.runtime`) then applies buffered writes, resolves
collectives, and feeds the recorded traffic to the bundling and timing
models.  Recording computes no costs — that stays in the scheduler —
but the commit itself is the runtime's hottest bulk operation, so
:meth:`PhaseRecorder.apply_writes` turns the per-access
:class:`~repro.core.shared.WriteEvent` stream into a handful of
vectorized numpy operations (see "Commit engine" below) instead of
replaying every buffered access one Python call at a time.

Commit engine
-------------

Buffered operations sort once by ``(global VP rank, program order)``
— the documented PPM conflict rule — and then partition by target
array ``(shared, instance)``.  Operations on *different* targets never
interact, so the partition preserves semantics exactly.  Within one
target the ordered stream splits into maximal runs of one
``(kind, op)``:

* a run of plain writes concatenates row/value arrays in rank order
  and resolves conflicts with a single ``np.lexsort`` (last writer per
  row wins — bitwise what sequential replay produces);
* a run of same-operator accumulates concatenates and applies one
  ``np.ufunc.at`` (unbuffered, in index order — bitwise identical to
  per-op application, including floating-point accumulation order);
* anything the batcher cannot prove exact (partial-row tuple indices,
  exotic value shapes) replays per-op via
  :meth:`~repro.core.shared.WriteEvent.replay`, the legacy path.
"""

from __future__ import annotations

import operator
from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

from repro.core.collectives import CollectiveSlot
from repro.core.shared import ACCUMULATE_UFUNCS, RowSpec, WriteEvent
from repro.obs.events import VpScheduled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.shared import GlobalShared, NodeShared

_RANK_KEY = operator.attrgetter("rank")


def _flush_write_run(target: np.ndarray, run: list[WriteEvent]) -> None:
    """Apply a run of plain writes with one fancy assignment.

    Rows and values concatenate in ``(rank, seq)`` order; the lexsort
    (stable, position-tiebroken) picks the *last* write per row, which
    is exactly the element the sequential replay would leave behind.
    Falls back to per-op replay when a value cannot be broadcast to its
    row block.
    """
    trailing = target.shape[1:]
    dtype = target.dtype
    try:
        rows_parts = []
        val_parts = []
        for ev in run:
            r = ev.rows.materialize()
            v = np.broadcast_to(np.asarray(ev.value, dtype=dtype), (r.size,) + trailing)
            rows_parts.append(r)
            val_parts.append(v)
        rows = np.concatenate(rows_parts)
        vals = np.concatenate(val_parts)
    except (ValueError, TypeError):
        for ev in run:
            ev.replay(target)
        return
    order = np.lexsort((np.arange(rows.size), rows))
    rows = rows[order]
    last = np.ones(rows.size, dtype=bool)
    last[:-1] = rows[1:] != rows[:-1]
    target[rows[last]] = vals[order[last]]


def _flush_accumulate_run(target: np.ndarray, run: list[WriteEvent], op: str) -> None:
    """Apply a run of same-operator accumulates with one ``ufunc.at``.

    ``ufunc.at`` is unbuffered and walks the index array in order, so
    concatenating the per-op rows/values in ``(rank, seq)`` order
    reproduces the sequential per-op application bit for bit (the
    floating-point combination order is unchanged).
    """
    trailing = target.shape[1:]
    try:
        rows_parts = []
        val_parts = []
        for ev in run:
            r = ev.rows.materialize()
            v = np.broadcast_to(np.asarray(ev.value), (r.size,) + trailing)
            rows_parts.append(r)
            val_parts.append(v)
        rows = np.concatenate(rows_parts)
        vals = np.concatenate(val_parts)
    except (ValueError, TypeError):
        for ev in run:
            ev.replay(target)
        return
    ACCUMULATE_UFUNCS[op].at(target, rows, vals)


class _RunPlan:
    """Cached products of one maximal same-``(kind, op)`` batchable run
    — everything :func:`_flush_write_run` / :func:`_flush_accumulate_run`
    derive from the *index* side of the run, which iterative kernels
    repeat bit-for-bit every round while only the values change."""

    __slots__ = ("op", "sizes", "rows_last", "take", "rows")


class _TargetPlan:
    """Replay recipe for one target's full rank-ordered commit stream:
    run segmentation plus one :class:`_RunPlan` per batchable run.

    ``keys`` holds per-event ``(kind, op, RowSpec, rows_exact)``
    tuples; the row specs are strong references, so validating an
    incoming stream by ``is``-identity is exact — a spec object can
    never be recycled while the plan holds it."""

    __slots__ = ("keys", "segments")


def _plan_matches(plan: _TargetPlan, evs: list[WriteEvent]) -> bool:
    keys = plan.keys
    if len(evs) != len(keys):
        return False
    for ev, (kind, op, rows, exact) in zip(evs, keys):
        if (
            ev.kind != kind
            or ev.op != op
            or ev.rows is not rows
            or ev.rows_exact != exact
        ):
            return False
    return True


def _build_target_plan(evs: list[WriteEvent]) -> _TargetPlan:
    """Segment one target's stream exactly as
    :func:`_apply_target_stream` would, pre-computing each batchable
    run's concatenated rows and (for writes) the lexsort products."""
    plan = _TargetPlan()
    plan.keys = [(ev.kind, ev.op, ev.rows, ev.rows_exact) for ev in evs]
    segments: list[tuple] = []
    n = len(evs)
    i = 0
    while i < n:
        first = evs[i]
        j = i + 1
        batchable = first.rows_exact and first.rows.array is not None
        while j < n and evs[j].kind == first.kind and evs[j].op == first.op:
            ev = evs[j]
            batchable = batchable and ev.rows_exact and ev.rows.array is not None
            j += 1
        if j - i == 1 or not batchable:
            segments.append(("replay", i, j, None))
        else:
            run = _RunPlan()
            run.op = first.op
            parts = [ev.rows.materialize() for ev in evs[i:j]]
            run.sizes = [r.size for r in parts]
            rows = np.concatenate(parts)
            if first.kind == "write":
                order = np.lexsort((np.arange(rows.size), rows))
                srows = rows[order]
                last = np.ones(srows.size, dtype=bool)
                last[:-1] = srows[1:] != srows[:-1]
                run.rows_last = srows[last]
                run.take = order[last]
                run.rows = None
            else:
                run.rows = rows
                run.rows_last = None
                run.take = None
            segments.append((first.kind, i, j, run))
        i = j
    plan.segments = segments
    return plan


def _apply_plan(target: np.ndarray, evs: list[WriteEvent], plan: _TargetPlan) -> None:
    """Replay one target's stream through its cached plan — bitwise
    what :func:`_apply_target_stream` computes, with the per-round work
    reduced to value broadcasting and one fancy assignment (or
    ``ufunc.at``) per run."""
    trailing = target.shape[1:]
    dtype = target.dtype
    for kind, i, j, run in plan.segments:
        if kind == "replay":
            for ev in evs[i:j]:
                ev.replay(target)
        elif kind == "write":
            try:
                vals = np.concatenate([
                    np.broadcast_to(
                        np.asarray(ev.value, dtype=dtype), (sz,) + trailing
                    )
                    for ev, sz in zip(evs[i:j], run.sizes)
                ])
            except (ValueError, TypeError):
                for ev in evs[i:j]:
                    ev.replay(target)
                continue
            target[run.rows_last] = vals[run.take]
        else:
            try:
                vals = np.concatenate([
                    np.broadcast_to(np.asarray(ev.value), (sz,) + trailing)
                    for ev, sz in zip(evs[i:j], run.sizes)
                ])
            except (ValueError, TypeError):
                for ev in evs[i:j]:
                    ev.replay(target)
                continue
            ACCUMULATE_UFUNCS[run.op].at(target, run.rows, vals)


class CommitPlanCache:
    """Cross-round cache of :class:`_TargetPlan` replay recipes.

    The vectorized commit engine re-derives the same lexsorted index
    buffers every round of an iterative solver; this cache keys each
    target's compiled access pattern by ``(shared name, instance)``,
    validates it against the incoming stream by row-spec identity, and
    replays on a hit.  Used by the inline runtime
    (``PpmRuntime.commit_plans``) and by the worker-side zero-merge
    committer of the process backend; a mismatched round simply
    rebuilds (counted in :attr:`misses`), so the cache can never change
    committed bits — only skip redundant index work.
    """

    __slots__ = ("_plans", "hits", "misses")

    def __init__(self) -> None:
        self._plans: dict[tuple, _TargetPlan] = {}
        self.hits = 0
        self.misses = 0

    def apply(self, target: np.ndarray, evs: list[WriteEvent]) -> None:
        """Apply one target's rank-ordered stream, via the cached plan
        when it still matches."""
        key = (evs[0].shared.name, evs[0].instance)
        plan = self._plans.get(key)
        if plan is not None and _plan_matches(plan, evs):
            self.hits += 1
        else:
            plan = _build_target_plan(evs)
            self._plans[key] = plan
            self.misses += 1
        _apply_plan(target, evs, plan)

    def stats(self) -> tuple[int, int]:
        return self.hits, self.misses


def _apply_target_stream(target: np.ndarray, evs: list[WriteEvent]) -> None:
    """Apply one target's rank-ordered operation stream in maximal
    same-``(kind, op)`` runs.

    Only runs whose every operation carries a materialised index array
    batch — those are the fetches fancy replay would scatter one op at
    a time.  Range/slice specs replay instead: a contiguous slice
    assignment is already a single C-level block copy, and profiling
    shows concatenating such runs costs more than replaying them.
    """
    n = len(evs)
    i = 0
    while i < n:
        first = evs[i]
        j = i + 1
        batchable = first.rows_exact and first.rows.array is not None
        while j < n and evs[j].kind == first.kind and evs[j].op == first.op:
            ev = evs[j]
            batchable = batchable and ev.rows_exact and ev.rows.array is not None
            j += 1
        if j - i == 1 or not batchable:
            for ev in evs[i:j]:
                ev.replay(target)
        elif first.kind == "write":
            _flush_write_run(target, evs[i:j])
        else:
            _flush_accumulate_run(target, evs[i:j], first.op)
        i = j


class PhaseRecorder:
    """Mutable record of one phase's shared-memory activity.

    ``tracer``/``phase_index`` connect the recorder to the
    observability bus (:mod:`repro.obs`): when a tracer is attached,
    every VP resume reports a
    :class:`~repro.obs.events.VpScheduled` event.
    """

    def __init__(
        self,
        kind: str,
        latency_rounds: int = 1,
        *,
        tracer=None,
        phase_index: int = -1,
    ) -> None:
        self.kind = kind
        self.latency_rounds = latency_rounds
        self.tracer = tracer
        self.phase_index = phase_index
        # (node id, shared) -> [list[RowSpec], exact element count].
        # One flat dict per direction instead of nested per-node maps:
        # recording is per-access, so every removed hash lookup counts.
        # The exact counts matter because row specs overcount when a
        # tuple index touches only part of each row; the aggregator
        # rescales row-derived counts by them.
        self.global_read_recs: dict[tuple, list] = {}
        self.global_write_recs: dict[tuple, list] = {}
        # Buffered operations, one WriteEvent per __setitem__/accumulate.
        self.write_ops: list[WriteEvent] = []
        self._seq = 0
        # node id -> elements written to node-shared instances there.
        self.node_write_elems: dict[int, int] = defaultdict(int)
        # node id -> core id -> accumulated VP cpu seconds.
        self.core_costs: dict[int, dict[int, float]] = defaultdict(lambda: defaultdict(float))
        # Matched collective slots, in call order.
        self.collective_slots: list[CollectiveSlot] = []
        # Node-shared read tallies (node reads record no row specs, so
        # these cannot be derived from the rec maps the way the
        # global-read statistics are).
        self.node_read_ops = 0
        self.node_read_elems = 0

    # ------------------------------------------------------------------
    # Statistics, derived on demand so the per-access hot path pays no
    # bookkeeping beyond the rec-map updates it needs anyway.
    @property
    def read_ops(self) -> int:
        return self.node_read_ops + sum(
            len(r[0]) for r in self.global_read_recs.values()
        )

    @property
    def read_elems(self) -> int:
        return self.node_read_elems + sum(
            r[1] for r in self.global_read_recs.values()
        )

    @property
    def write_elems(self) -> int:
        return sum(r[1] for r in self.global_write_recs.values()) + sum(
            self.node_write_elems.values()
        )

    @property
    def write_events(self) -> list[WriteEvent]:
        """The buffered operations, as the sanitizer consumes them (the
        same objects the commit engine applies)."""
        return [ev for ev in self.write_ops if ev is not None]

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def add_global_read(self, node_id: int, shared: "GlobalShared", rows: RowSpec, n_elem: int) -> None:
        rec = self.global_read_recs.get((node_id, shared))
        if rec is None:
            rec = self.global_read_recs[(node_id, shared)] = [[], 0]
        rec[0].append(rows)
        rec[1] += n_elem

    def add_global_write(
        self,
        node_id: int,
        shared: "GlobalShared",
        rows: RowSpec,
        n_elem: int,
        global_rank: int,
        event: WriteEvent | None = None,
    ) -> None:
        rec = self.global_write_recs.get((node_id, shared))
        if rec is None:
            rec = self.global_write_recs[(node_id, shared)] = [[], 0]
        rec[0].append(rows)
        rec[1] += n_elem
        seq = self.next_seq()
        if event is not None:
            event.seq = seq
            self.write_ops.append(event)

    def add_node_read(self, n_elem: int) -> None:
        self.node_read_ops += 1
        self.node_read_elems += n_elem

    def add_node_write(
        self,
        node_id: int,
        n_elem: int,
        global_rank: int,
        event: WriteEvent | None = None,
    ) -> None:
        self.node_write_elems[node_id] += n_elem
        seq = self.next_seq()
        if event is not None:
            event.seq = seq
            self.write_ops.append(event)

    # ------------------------------------------------------------------
    # Bulk merge entry points for the process execution backend
    # (:mod:`repro.parallel`): worker recorders arrive as per-worker
    # reports in contiguous global-rank shard order, so extending the
    # rec lists / op stream worker by worker reproduces exactly the
    # structures the inline engine records VP by VP.
    def absorb_global_reads(self, entries) -> None:
        """Merge ``(node_id, shared, [RowSpec, ...], n_elem)`` tuples
        into the read rec map, preserving arrival order."""
        recs = self.global_read_recs
        for node_id, shared, specs, n_elem in entries:
            rec = recs.get((node_id, shared))
            if rec is None:
                rec = recs[(node_id, shared)] = [[], 0]
            rec[0].extend(specs)
            rec[1] += n_elem

    def absorb_global_writes(self, entries) -> None:
        """Write-side analogue of :meth:`absorb_global_reads` (rec map
        only; the buffered operations arrive via :meth:`absorb_ops`)."""
        recs = self.global_write_recs
        for node_id, shared, specs, n_elem in entries:
            rec = recs.get((node_id, shared))
            if rec is None:
                rec = recs[(node_id, shared)] = [[], 0]
            rec[0].extend(specs)
            rec[1] += n_elem

    def absorb_ops(self, events) -> None:
        """Append reconstructed :class:`WriteEvent`\\ s in program
        order, assigning commit sequence numbers as recording would."""
        for ev in events:
            ev.seq = self._seq = self._seq + 1
            self.write_ops.append(ev)

    def add_vp_cost(
        self, node_id: int, core_id: int, cost: float, *, vp: int = -1
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                VpScheduled(
                    phase=self.phase_index,
                    node=node_id,
                    core=core_id,
                    vp=vp,
                    cost=cost,
                )
            )
        if cost:
            self.core_costs[node_id][core_id] += cost

    def collective_slot(self, index: int, kind: str, op) -> CollectiveSlot:
        """Fetch or create the matched slot for the ``index``-th
        collective call of a VP in this phase."""
        while len(self.collective_slots) <= index:
            self.collective_slots.append(CollectiveSlot(kind, op))
        slot = self.collective_slots[index]
        slot.check_compatible(kind, op)
        return slot

    # ------------------------------------------------------------------
    def apply_writes(
        self,
        *,
        engine: str = "vectorized",
        plans: CommitPlanCache | None = None,
        prune: frozenset = frozenset(),
    ) -> None:
        """Commit all buffered writes.

        Operations apply in increasing (global VP rank, program order),
        so conflicting plain writes resolve deterministically with the
        highest-ranked writer winning — the documented PPM conflict
        rule of this reproduction.  ``engine`` selects the batched
        vectorized commit (default) or the legacy one-op-at-a-time
        replay (reference semantics; the property tests assert the two
        are bitwise identical).  ``plans`` optionally supplies a
        :class:`CommitPlanCache` so iterative kernels pay index
        compilation once per access pattern instead of every round.
        ``prune`` names shared variables whose liveness certificate
        allows the commit to skip copy-on-commit and apply in place
        (``run_ppm(..., snapshot="pruned")``).
        """
        if not self.write_ops:
            return
        # write_ops is appended in seq order, so a stable sort on rank
        # alone yields (rank, seq) order.
        ops = sorted(self.write_ops, key=_RANK_KEY)
        groups: dict[tuple[int, int | None], list[WriteEvent]] = {}
        for ev in ops:
            groups.setdefault((id(ev.shared), ev.instance), []).append(ev)
        for evs in groups.values():
            target = evs[0].shared._commit_target(
                evs[0].instance, prune=evs[0].shared.name in prune
            )
            if engine == "legacy":
                for ev in evs:
                    ev.replay(target)
            elif plans is not None:
                plans.apply(target, evs)
            else:
                _apply_target_stream(target, evs)

    def resolve_collectives(self) -> int:
        """Resolve all collective slots; returns total contributions."""
        return sum(slot.resolve() for slot in self.collective_slots)
