"""Per-phase access recording.

While the VPs of a phase execute, every shared-variable access is
recorded here; the commit protocol (in
:mod:`repro.core.runtime`) then applies buffered writes, resolves
collectives, and feeds the recorded traffic to the bundling and timing
models.  Nothing in this module computes costs — it only remembers what
happened, which keeps the semantics/performance split clean.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from repro.core.collectives import CollectiveSlot
from repro.core.shared import RowSpec, WriteEvent
from repro.obs.events import VpScheduled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.shared import GlobalShared, NodeShared


class PhaseRecorder:
    """Mutable record of one phase's shared-memory activity.

    ``tracer``/``phase_index`` connect the recorder to the
    observability bus (:mod:`repro.obs`): when a tracer is attached,
    every VP resume reports a
    :class:`~repro.obs.events.VpScheduled` event.
    """

    def __init__(
        self,
        kind: str,
        latency_rounds: int = 1,
        *,
        tracer=None,
        phase_index: int = -1,
    ) -> None:
        self.kind = kind
        self.latency_rounds = latency_rounds
        self.tracer = tracer
        self.phase_index = phase_index
        # node id -> shared -> list[RowSpec]
        self.global_reads: dict[int, dict["GlobalShared", list[RowSpec]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self.global_writes: dict[int, dict["GlobalShared", list[RowSpec]]] = defaultdict(
            lambda: defaultdict(list)
        )
        # Exact element counts per (node, shared) — row specs overcount
        # when a tuple index touches only part of each row, so the
        # aggregator rescales row-derived counts by these.
        self.global_read_elems: dict[int, dict["GlobalShared", int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.global_write_elems: dict[int, dict["GlobalShared", int]] = defaultdict(
            lambda: defaultdict(int)
        )
        # Buffered write applications: (global_rank, seq, apply_fn).
        self.write_ops: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        # Sanitizer write events (empty unless the sanitizer is on).
        self.write_events: list[WriteEvent] = []
        # node id -> elements written to node-shared instances there.
        self.node_write_elems: dict[int, int] = defaultdict(int)
        # node id -> core id -> accumulated VP cpu seconds.
        self.core_costs: dict[int, dict[int, float]] = defaultdict(lambda: defaultdict(float))
        # Matched collective slots, in call order.
        self.collective_slots: list[CollectiveSlot] = []
        # Statistics.
        self.read_ops = 0
        self.read_elems = 0
        self.write_elems = 0

    # ------------------------------------------------------------------
    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def add_global_read(self, node_id: int, shared: "GlobalShared", rows: RowSpec, n_elem: int) -> None:
        self.global_reads[node_id][shared].append(rows)
        self.global_read_elems[node_id][shared] += n_elem
        self.read_ops += 1
        self.read_elems += n_elem

    def add_global_write(
        self,
        node_id: int,
        shared: "GlobalShared",
        rows: RowSpec,
        n_elem: int,
        global_rank: int,
        apply_fn: Callable[[], None],
        event: WriteEvent | None = None,
    ) -> None:
        self.global_writes[node_id][shared].append(rows)
        self.global_write_elems[node_id][shared] += n_elem
        seq = self.next_seq()
        self.write_ops.append((global_rank, seq, apply_fn))
        if event is not None:
            event.seq = seq
            self.write_events.append(event)
        self.write_elems += n_elem

    def add_node_read(self, n_elem: int) -> None:
        self.read_ops += 1
        self.read_elems += n_elem

    def add_node_write(
        self,
        node_id: int,
        n_elem: int,
        global_rank: int,
        apply_fn: Callable[[], None],
        event: WriteEvent | None = None,
    ) -> None:
        self.node_write_elems[node_id] += n_elem
        seq = self.next_seq()
        self.write_ops.append((global_rank, seq, apply_fn))
        if event is not None:
            event.seq = seq
            self.write_events.append(event)
        self.write_elems += n_elem

    def add_vp_cost(
        self, node_id: int, core_id: int, cost: float, *, vp: int = -1
    ) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                VpScheduled(
                    phase=self.phase_index,
                    node=node_id,
                    core=core_id,
                    vp=vp,
                    cost=cost,
                )
            )
        if cost:
            self.core_costs[node_id][core_id] += cost

    def collective_slot(self, index: int, kind: str, op) -> CollectiveSlot:
        """Fetch or create the matched slot for the ``index``-th
        collective call of a VP in this phase."""
        while len(self.collective_slots) <= index:
            self.collective_slots.append(CollectiveSlot(kind, op))
        slot = self.collective_slots[index]
        slot.check_compatible(kind, op)
        return slot

    # ------------------------------------------------------------------
    def apply_writes(self) -> None:
        """Commit all buffered writes.

        Writes are applied in increasing (global VP rank, program
        order), so conflicting plain writes resolve deterministically
        with the highest-ranked writer winning — the documented PPM
        conflict rule of this reproduction.
        """
        for _rank, _seq, apply_fn in sorted(self.write_ops, key=lambda t: (t[0], t[1])):
            apply_fn()

    def resolve_collectives(self) -> int:
        """Resolve all collective slots; returns total contributions."""
        return sum(slot.resolve() for slot in self.collective_slots)
