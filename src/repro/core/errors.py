"""Exception hierarchy for the PPM runtime."""

from __future__ import annotations


class PpmError(Exception):
    """Base class for all PPM runtime errors."""


class SharedAccessError(PpmError):
    """A shared variable was accessed where the model forbids it —
    outside any phase from VP code, or written (global-shared) inside a
    node phase."""


class PhaseUsageError(PpmError):
    """Ill-formed phase structure: VPs of one node declared different
    phase kinds for the same round, or a phase declaration is invalid."""


class VpProgramError(PpmError):
    """An exception escaped application VP code; carries the node, VP
    rank and phase index for diagnosis."""

    def __init__(self, message: str, *, node: int, vp_rank: int, phase_index: int) -> None:
        super().__init__(
            f"{message} (node {node}, VP node-rank {vp_rank}, phase {phase_index})"
        )
        self.node = node
        self.vp_rank = vp_rank
        self.phase_index = phase_index

    def __reduce__(self):
        return (
            _revive_vp_error,
            (self.args[0], self.node, self.vp_rank, self.phase_index),
        )


class CollectiveUsageError(PpmError):
    """A phase collective handle was read before its phase committed."""


class ConfigError(PpmError, ValueError):
    """A :class:`~repro.config.MachineConfig` field is invalid —
    negative rates, non-finite values, non-positive byte sizes or an
    inconsistent topology.  Subclasses :class:`ValueError` so callers
    that predate the dedicated type keep working."""


class ResilienceError(PpmError):
    """Base class of errors raised by :mod:`repro.resilience`."""


class ResilienceConfigError(ResilienceError, ValueError):
    """A fault plan, retry policy or checkpoint policy is invalid.

    ``code`` carries the diagnostic rule id (``PPM301``..``PPM305``,
    see docs/DIAGNOSTICS.md) so messages can be traced back to the
    reference the same way lint/sanitizer findings are."""

    def __init__(self, message: str, *, code: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class NodeCrashFault(ResilienceError):
    """An injected node crash fired at a phase boundary.

    Raised by the runtime *before* the phase's writes apply, so the
    committed state observed by recovery is exactly the last
    phase-boundary cut.  ``run_ppm`` catches this and re-executes the
    driver, restoring from the last checkpoint (docs/RESILIENCE.md)."""

    def __init__(self, *, node: int, phase_index: int) -> None:
        super().__init__(
            f"injected crash of node {node} at phase {phase_index}"
        )
        self.node = node
        self.phase_index = phase_index


class ParallelError(PpmError):
    """Base class of errors raised by :mod:`repro.parallel` (the
    multi-process execution backend)."""


class ParallelConfigError(ParallelError, ValueError):
    """The process execution backend was configured in a way it cannot
    honour — an unpicklable kernel, an invalid worker count, or a
    feature combination (threads executor, resilience, ``sanitize=
    "auto"``) the backend does not support.

    ``code`` carries the diagnostic rule id (``PPM501``..``PPM504``,
    see docs/DIAGNOSTICS.md), mirroring how resilience configuration
    errors carry ``PPM3xx`` codes."""

    def __init__(self, message: str, *, code: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ParallelExecutionError(ParallelError):
    """A worker process of the ``"process"`` executor failed in a way
    that cannot be mapped back onto a PPM application error — it died
    unexpectedly, or its reply could not be deserialised.  The remote
    traceback (when one was captured) is part of the message."""


class WorkerDeathError(ParallelExecutionError):
    """A worker process of the ``"process"`` executor died (crashed,
    was killed, or hung past its deadline) and no supervisor was
    configured to recover it.

    The message names the worker id(s), the failure kind, the round
    and the last command on the pipe, so a raw ``EOFError`` /
    ``BrokenPipeError`` from a dead child never surfaces as a bare
    traceback.  ``code`` is ``PPM603`` (docs/DIAGNOSTICS.md); pass
    ``run_ppm(..., supervision=SupervisionPolicy())`` to recover
    instead of raising."""

    def __init__(self, message: str, *, code: str = "PPM603") -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class SupervisionExhaustedError(ParallelExecutionError):
    """The worker supervisor exhausted its respawn budget and its
    policy says ``degrade="error"``.

    ``code`` is ``PPM604`` (docs/DIAGNOSTICS.md).  The other degrade
    modes (``"shrink"``, ``"inline"``) restart the run deterministically
    instead of raising."""

    def __init__(self, message: str, *, code: str = "PPM604") -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


def _revive_vp_error(message, node, vp_rank, phase_index):
    """Rebuild a :class:`VpProgramError` from its shipped fields.

    ``VpProgramError.__init__`` re-formats its message with a location
    suffix, so the default exception pickling (``cls(*args)``) would
    double the suffix; workers of the process backend ship the fields
    instead and this helper reassembles the exception exactly."""
    err = VpProgramError.__new__(VpProgramError)
    Exception.__init__(err, message)
    err.node = node
    err.vp_rank = vp_rank
    err.phase_index = phase_index
    return err


class PpmDiagnosticError(PpmError):
    """Base class of errors raised by the diagnostics tooling
    (:mod:`repro.analysis`); carries the structured findings."""

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        #: The :class:`~repro.analysis.diagnostics.Diagnostic` findings
        #: behind this error, in detection order.
        self.diagnostics = tuple(diagnostics)


class PhaseConflictError(PpmDiagnosticError):
    """The phase-conflict sanitizer (strict mode) found a hazardous
    write-write or write-accumulate overlap between distinct VPs; the
    phase aborts before its commit, so no write of it is visible."""


class LintError(PpmDiagnosticError):
    """The static PPM linter was asked to treat its findings as fatal
    and at least one error-severity diagnostic was reported."""
