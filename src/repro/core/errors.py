"""Exception hierarchy for the PPM runtime."""

from __future__ import annotations


class PpmError(Exception):
    """Base class for all PPM runtime errors."""


class SharedAccessError(PpmError):
    """A shared variable was accessed where the model forbids it —
    outside any phase from VP code, or written (global-shared) inside a
    node phase."""


class PhaseUsageError(PpmError):
    """Ill-formed phase structure: VPs of one node declared different
    phase kinds for the same round, or a phase declaration is invalid."""


class VpProgramError(PpmError):
    """An exception escaped application VP code; carries the node, VP
    rank and phase index for diagnosis."""

    def __init__(self, message: str, *, node: int, vp_rank: int, phase_index: int) -> None:
        super().__init__(
            f"{message} (node {node}, VP node-rank {vp_rank}, phase {phase_index})"
        )
        self.node = node
        self.vp_rank = vp_rank
        self.phase_index = phase_index


class CollectiveUsageError(PpmError):
    """A phase collective handle was read before its phase committed."""


class PpmDiagnosticError(PpmError):
    """Base class of errors raised by the diagnostics tooling
    (:mod:`repro.analysis`); carries the structured findings."""

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        #: The :class:`~repro.analysis.diagnostics.Diagnostic` findings
        #: behind this error, in detection order.
        self.diagnostics = tuple(diagnostics)


class PhaseConflictError(PpmDiagnosticError):
    """The phase-conflict sanitizer (strict mode) found a hazardous
    write-write or write-accumulate overlap between distinct VPs; the
    phase aborts before its commit, so no write of it is visible."""


class LintError(PpmDiagnosticError):
    """The static PPM linter was asked to treat its findings as fatal
    and at least one error-severity diagnostic was reported."""
