"""Phase collectives: reduction and parallel prefix over VPs.

The paper lists reduction and parallel prefix among PPM's utility
functions (section 3.1, item 6).  In the phase model their natural
semantics are *phase-bounded*: every participating VP contributes a
value during a phase, the runtime combines the contributions at the
phase barrier, and the result becomes readable afterwards.  The
contribution call returns a :class:`CollectiveHandle` whose ``value``
raises until the phase has committed.

Matching follows call order, like MPI: the *i*-th collective call a VP
makes inside a phase matches the *i*-th call of every other VP in that
phase.  VPs that skip a call simply do not contribute to that slot.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import CollectiveUsageError, PhaseUsageError
from repro.mpi.collectives import resolve_op


class CollectiveHandle:
    """Deferred result of a phase collective."""

    __slots__ = ("_ready", "_value", "kind")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._ready = False
        self._value: object = None

    @property
    def ready(self) -> bool:
        """True once the owning phase has committed."""
        return self._ready

    @property
    def value(self) -> object:
        """The combined result; raises before the phase commit."""
        if not self._ready:
            raise CollectiveUsageError(
                f"{self.kind} result read before its phase committed; "
                "collective results are only available in later phases"
            )
        return self._value

    def _resolve(self, value: object) -> None:
        self._value = value
        self._ready = True


class CollectiveSlot:
    """One matched collective across VPs of a phase."""

    __slots__ = ("kind", "op", "entries")

    def __init__(self, kind: str, op: str | Callable) -> None:
        if kind not in ("reduce", "scan"):
            raise PhaseUsageError(f"unknown collective kind {kind!r}")
        self.kind = kind
        self.op = op
        # (global_rank, value, handle), appended in execution order.
        self.entries: list[tuple[int, object, CollectiveHandle]] = []

    def add(self, global_rank: int, value: object) -> CollectiveHandle:
        handle = CollectiveHandle(self.kind)
        self.entries.append((global_rank, value, handle))
        return handle

    def check_compatible(self, kind: str, op: str | Callable) -> None:
        if kind != self.kind or op is not self.op and op != self.op:
            raise PhaseUsageError(
                f"mismatched phase collectives: slot is {self.kind!r}/{self.op!r}, "
                f"a VP called {kind!r}/{op!r}"
            )

    def resolve(self) -> int:
        """Combine contributions in global-rank order and publish
        results to every handle.  Returns the contributor count."""
        entries = sorted(self.entries, key=lambda e: e[0])
        if not entries:
            return 0
        fn = resolve_op(self.op)
        if self.kind == "reduce":
            acc = entries[0][1]
            for _, v, _h in entries[1:]:
                acc = fn(acc, v)
            for _, _v, handle in entries:
                handle._resolve(acc)
        else:  # scan: inclusive prefix in global-rank order
            acc = None
            for _, v, handle in entries:
                acc = v if acc is None else fn(acc, v)
                handle._resolve(acc)
        return len(entries)
