"""PPM language constructs: phase declarations and the function marker.

A *PPM function* is a Python generator function whose ``yield``
statements open phases::

    @ppm_function
    def kernel(ctx, A, B, out):
        i = ctx.node_rank          # private prologue: no shared access
        yield ctx.global_phase     # opens a global phase
        out[i] = A[i] + B[i]       # phase body: snapshot reads,
                                   # writes commit at the barrier
        yield ctx.node_phase       # opens a node phase
        ...

Code before the first ``yield`` is the VP's private prologue; shared
variables cannot be touched there.  Each ``yield`` must produce a
:class:`PhaseDecl` — normally one of the ``ctx.global_phase`` /
``ctx.node_phase`` properties, or ``ctx.phase(...)`` for phases with
extra runtime hints.  A plain (non-generator) function passed to
``ppm.do`` is treated as a single phase whose kind is given by
``ppm.do(..., phase=...)``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import PhaseUsageError


@dataclass(frozen=True)
class PhaseDecl:
    """Declaration of an upcoming phase.

    Attributes
    ----------
    kind:
        ``"global"`` (cluster-wide barrier and shared-write commit) or
        ``"node"`` (node-level only, as in ``PPM_node_phase``).
    latency_rounds:
        Runtime hint for data-driven access patterns: the number of
        serialised remote-fetch rounds the phase's reads require (e.g.
        a tree traversal needs one round per tree level because each
        fetch depends on the previous one).  Bandwidth cost is
        unchanged; latency is paid per round.  Default 1.
    """

    kind: str
    latency_rounds: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("global", "node"):
            raise PhaseUsageError(
                f"phase kind must be 'global' or 'node', got {self.kind!r}"
            )
        if self.latency_rounds < 1:
            raise PhaseUsageError(
                f"latency_rounds must be >= 1, got {self.latency_rounds}"
            )


GLOBAL_PHASE = PhaseDecl("global")
NODE_PHASE = PhaseDecl("node")


def ppm_function(func: Callable) -> Callable:
    """Mark ``func`` as a PPM function (paper: the ``PPM_function``
    keyword).

    The decorator validates the shape of the function (its first
    parameter must be the VP context) and tags it so ``ppm.do`` can
    distinguish deliberate PPM functions from accidents.  Both
    generator functions (multi-phase) and plain functions
    (single-phase) are accepted.
    """
    sig = inspect.signature(func)
    params = list(sig.parameters)
    if not params:
        raise PhaseUsageError(
            f"PPM function {func.__name__!r} must take the VP context as "
            "its first parameter"
        )
    func.__ppm_function__ = True
    return func


def is_ppm_function(func: Callable) -> bool:
    """True when ``func`` was decorated with :func:`ppm_function`."""
    return getattr(func, "__ppm_function__", False)
