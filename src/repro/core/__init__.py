"""The Parallel Phase Model (PPM) — the paper's primary contribution.

This package embeds the PPM language constructs (paper section 3.1) in
Python and implements the light-weight runtime library (section 3.4):

==============================  =======================================
Paper construct                 This package
==============================  =======================================
``PPM_global_shared T x[n]``    ``ppm.global_shared(name, n, dtype)``
``PPM_node_shared T x[n]``      ``ppm.node_shared(name, n, dtype)``
``PPM_do(K) func(args)``        ``ppm.do(K, func, *args)``
``PPM_function``                a Python generator taking a ``ctx``
``PPM_global_phase { ... }``    ``yield ctx.global_phase`` + body
``PPM_node_phase { ... }``      ``yield ctx.node_phase`` + body
``PPM_node_count`` etc.         ``ppm.node_count`` / ``ctx.node_count``
``PPM_VP_node_rank()``          ``ctx.node_rank``
``PPM_VP_global_rank()``        ``ctx.global_rank``
reduction / parallel prefix     ``ctx.reduce(x, op)`` / ``ctx.scan(x, op)``
==============================  =======================================

Phase semantics follow the paper exactly: reads observe the value a
shared variable had at the beginning of the phase; writes take effect
at the end of the phase; an implicit barrier ends every phase.
"""

from repro.core.constructs import GLOBAL_PHASE, NODE_PHASE, PhaseDecl, ppm_function
from repro.core.errors import (
    LintError,
    PhaseConflictError,
    PhaseUsageError,
    PpmDiagnosticError,
    PpmError,
    SharedAccessError,
    VpProgramError,
)
from repro.core.program import PpmProgram, run_ppm
from repro.core.shared import GlobalShared, NodeShared
from repro.core.vp import VpContext

__all__ = [
    "GLOBAL_PHASE",
    "GlobalShared",
    "LintError",
    "NODE_PHASE",
    "NodeShared",
    "PhaseConflictError",
    "PhaseDecl",
    "PhaseUsageError",
    "PpmDiagnosticError",
    "PpmError",
    "PpmProgram",
    "SharedAccessError",
    "VpContext",
    "VpProgramError",
    "ppm_function",
    "run_ppm",
]
