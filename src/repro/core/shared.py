"""PPM shared variables: global-shared and node-shared arrays.

Two kinds, exactly as in the paper (section 3.1, item 1):

* :class:`GlobalShared` — *one* variable shared across the whole
  cluster through virtual shared memory, block-distributed over the
  nodes along axis 0;
* :class:`NodeShared` — *one instance per node* (the paper: "multiple
  variables of the same name are declared, one for each physical
  node"), living in the node's physical shared memory.

Both support numpy "array syntax ... as in the mathematical
algorithms" (paper section 3: "Implicit communication").  Inside a
phase, reads return the phase-start snapshot and writes are buffered
until the commit at the phase barrier; outside any phase (driver-level
setup code) accesses apply directly and are not timed.

Snapshot reads are **zero-copy**: a basic-index read inside a phase
returns a read-only view of the committed store instead of a copy.
Snapshot semantics are preserved by a copy-on-commit protocol — when a
phase commit is about to overwrite rows that a still-live view aliases,
the store swaps to a fresh buffer first, so the view keeps observing
the phase-start values forever (docs/ARCHITECTURE.md, "Hot path &
wall-clock performance").
"""

from __future__ import annotations

import weakref
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import SharedAccessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PpmRuntime

#: Accumulate operators accepted by ``accumulate`` (applied with the
#: matching ``np.ufunc.at``, so duplicate indices combine correctly).
ACCUMULATE_UFUNCS = {
    "add": np.add,
    "subtract": np.subtract,
    "minimum": np.minimum,
    "maximum": np.maximum,
    "multiply": np.multiply,
}


class RowSpec:
    """Rows (axis-0 indices) touched by one access, in a cheap range
    form (contiguous or strided, nothing materialised) or a
    materialised index-array form."""

    __slots__ = ("start", "stop", "step", "array")

    def __init__(
        self,
        start: int = 0,
        stop: int = 0,
        step: int = 1,
        array: np.ndarray | None = None,
    ) -> None:
        self.start = start
        self.stop = stop
        self.step = step
        self.array = array

    @classmethod
    def from_range(cls, start: int, stop: int) -> "RowSpec":
        return cls(start=start, stop=max(start, stop))

    @classmethod
    def from_slice(cls, start: int, stop: int, step: int) -> "RowSpec":
        """Strided range — kept symbolic so recording a stepped-slice
        access does not materialise an ``np.arange``."""
        if step == 1:
            return cls(start=start, stop=max(start, stop))
        return cls(start=start, stop=stop, step=step)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "RowSpec":
        return cls(array=array)

    @property
    def count(self) -> int:
        if self.array is not None:
            return int(self.array.size)
        if self.step == 1:
            return max(0, self.stop - self.start)
        return len(range(self.start, self.stop, self.step))

    @property
    def is_contiguous(self) -> bool:
        """True for a plain ``[start, stop)`` range (the bundling
        engine's interval fast path)."""
        return self.array is None and self.step == 1

    def materialize(self) -> np.ndarray:
        """Rows as an int64 array."""
        if self.array is not None:
            return self.array
        return np.arange(self.start, self.stop, self.step, dtype=np.int64)

    def bounds(self) -> tuple[int, int]:
        """Half-open ``[lo, hi)`` hull of the rows (``(0, 0)`` when
        empty); used by the copy-on-commit overlap test."""
        if self.array is not None:
            if self.array.size == 0:
                return (0, 0)
            return (int(self.array.min()), int(self.array.max()) + 1)
        if self.step == 1:
            if self.stop <= self.start:
                return (0, 0)
            return (self.start, self.stop)
        r = range(self.start, self.stop, self.step)
        if len(r) == 0:
            return (0, 0)
        lo, hi = (r[0], r[-1]) if self.step > 0 else (r[-1], r[0])
        return (lo, hi + 1)


class WriteEvent:
    """Record of one buffered write or accumulate.

    This is the commit engine's *universal* buffered-operation record:
    every ``__setitem__``/``accumulate`` inside a phase creates one
    (replacing the per-write Python closures of earlier revisions), the
    vectorized commit batches them per target, and the phase-conflict
    sanitizer classifies the very same objects when it is enabled.
    ``instance`` is the node id for node-shared targets, ``None`` for
    global-shared ones.  ``rows_exact`` marks operations whose ``idx``
    addresses exactly the rows in ``rows`` (no partial-row tuple
    index), which is what the vectorized commit path can batch;
    everything else falls back to an exact per-op :meth:`replay`.
    """

    __slots__ = (
        "shared", "instance", "kind", "op", "idx", "value", "rows",
        "rank", "seq", "rows_exact",
    )

    def __init__(
        self,
        shared: object,
        instance: int | None,
        kind: str,
        op: str | None,
        idx: object,
        value: object,
        rows: RowSpec,
        rank: int,
        rows_exact: bool = False,
    ) -> None:
        self.shared = shared
        self.instance = instance
        self.kind = kind  # "write" | "accumulate"
        self.op = op  # accumulate ufunc name, None for plain writes
        self.idx = idx
        self.value = value
        self.rows = rows
        self.rank = rank
        self.seq = 0  # program-order tiebreak, set by the recorder
        self.rows_exact = rows_exact

    def replay(self, target: np.ndarray) -> None:
        """Apply this operation to ``target`` exactly as the original
        access would have (the legacy/fallback commit path)."""
        if self.kind == "write":
            target[self.idx] = self.value
        else:
            ACCUMULATE_UFUNCS[self.op].at(target, self.idx, self.value)

    def footprint(self, shape: tuple[int, ...]) -> np.ndarray:
        """Boolean mask (of ``shape``) of the elements this op touches."""
        mask = np.zeros(shape, dtype=bool)
        mask[self.idx] = True
        return mask


def _index_result_size(idx: tuple, shape: tuple[int, ...]) -> int:
    """Number of elements selected by ``data[idx]``, computed from the
    index and array shapes alone (no indexing, no copy).

    Follows numpy's rules: basic parts (ints, slices, Ellipsis,
    newaxis) contribute their per-axis lengths; all advanced parts
    (integer / boolean arrays) broadcast together and contribute the
    broadcast size once.  Raises for index forms it does not model
    (callers fall back to an exact materialising probe).
    """
    ndim = len(shape)

    def consumes(entry: object) -> int:
        if entry is None:
            return 0
        if isinstance(entry, np.ndarray) and entry.dtype == bool:
            return entry.ndim
        return 1

    # Expand a single Ellipsis into full slices.
    expanded: list[object] = []
    n_consumed = sum(consumes(e) for e in idx if e is not Ellipsis)
    for entry in idx:
        if entry is Ellipsis:
            expanded.extend([slice(None)] * (ndim - n_consumed))
        else:
            expanded.append(entry)

    basic = 1
    adv_shapes: list[tuple[int, ...]] = []
    axis = 0
    for entry in expanded:
        if entry is None:
            continue  # newaxis: result axis of length 1
        if isinstance(entry, (int, np.integer)):
            axis += 1
            continue
        if isinstance(entry, slice):
            basic *= len(range(*entry.indices(shape[axis])))
            axis += 1
            continue
        arr = entry if isinstance(entry, np.ndarray) else np.asarray(entry)
        if arr.dtype == bool:
            if arr.shape != tuple(shape[axis : axis + arr.ndim]):
                raise IndexError(
                    f"boolean index shape {arr.shape} does not match axes "
                    f"{shape[axis:axis + arr.ndim]}"
                )
            adv_shapes.append((int(np.count_nonzero(arr)),))
            axis += arr.ndim
        elif np.issubdtype(arr.dtype, np.integer):
            adv_shapes.append(arr.shape)
            axis += 1
        else:
            raise TypeError(f"unsupported index entry {entry!r}")
    if axis > ndim:
        raise IndexError(f"too many indices for shape {shape}")
    # Unindexed trailing axes pass through whole.
    for ax in range(axis, ndim):
        basic *= shape[ax]
    if adv_shapes:
        basic *= int(np.prod(np.broadcast_shapes(*adv_shapes), dtype=np.int64))
    return int(basic)


def _normalize_rows(idx: object, n0: int) -> RowSpec:
    """Rows along axis 0 referenced by index expression ``idx``."""
    head = idx[0] if isinstance(idx, tuple) else idx
    if isinstance(head, (int, np.integer)):
        i = int(head)
        if i < 0:
            i += n0
        if not 0 <= i < n0:
            raise IndexError(f"row index {head} out of range for axis of length {n0}")
        return RowSpec.from_range(i, i + 1)
    if isinstance(head, slice):
        start, stop, step = head.indices(n0)
        return RowSpec.from_slice(start, stop, step)
    if head is Ellipsis:
        return RowSpec.from_range(0, n0)
    arr = np.asarray(head)
    if arr.dtype == bool:
        if arr.shape[0] != n0:
            raise IndexError(
                f"boolean mask of length {arr.shape[0]} does not match axis of length {n0}"
            )
        return RowSpec.from_array(np.nonzero(arr)[0].astype(np.int64))
    arr = arr.astype(np.int64, copy=False).ravel()
    if arr.size and (arr.min() < -n0 or arr.max() >= n0):
        raise IndexError(f"row indices out of range for axis of length {n0}")
    if arr.size and arr.min() < 0:
        arr = np.where(arr < 0, arr + n0, arr)
    return RowSpec.from_array(arr)


def _rows_exact(idx: object) -> bool:
    """True when ``idx`` addresses exactly the rows ``_normalize_rows``
    reports — i.e. no tuple index selecting parts of each row."""
    return not (isinstance(idx, tuple) and len(idx) > 1)


#: Worker-side shared-handle resolver (set by
#: :mod:`repro.parallel.worker` while a worker services commands).
#: Pickling a shared variable serialises only its *name*; unpickling
#: resolves the name here, so kernel arguments captured by the process
#: backend rebind to the worker's own proxies instead of dragging the
#: parent's arrays across the pipe.
_PICKLE_REGISTRY: dict[str, "_SharedBase"] | None = None


def _unpickle_shared(name: str) -> "_SharedBase":
    if _PICKLE_REGISTRY is None:
        raise RuntimeError(
            f"shared variable {name!r} can only be unpickled inside a "
            "repro.parallel worker process (shared handles serialise as "
            "name references, not data)"
        )
    return _PICKLE_REGISTRY[name]


class _SharedBase:
    """Common machinery of both shared-variable kinds."""

    def __init__(self, runtime: "PpmRuntime", name: str, shape: tuple[int, ...], dtype) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 0 for s in shape):
            raise ValueError(f"invalid shared-array shape {shape}")
        self.runtime = runtime
        self.name = name
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._trailing = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
        # Per-access cost constants (MachineConfig is frozen); the
        # per-element rate is kind-specific and set by the subclass.
        self._acall = runtime._access_call
        self._elem_rate = runtime._access_elem
        # Access-record cache: index key -> (RowSpec, n_elem, rows_exact).
        # Phase code replays the same index expressions every iteration
        # (a VP's chunk slice, its column-footprint array), so the
        # normalisation/counting work is done once per distinct index.
        self._access_cache: dict = {}
        # Owner-count memo for the bundling engine (global-shared only;
        # see repro.core.bundling).
        self._counts_cache: dict = {}

    def _access_record(self, idx: object, data: np.ndarray) -> tuple:
        """``(rows, n_elem, rows_exact, view_kind, cost)`` for ``idx``,
        cached.  ``cost`` is the simulated per-access software overhead
        (call + per-element), precomputed so the hot path charges it
        with a single add.

        ``view_kind`` classifies what ``data[idx]`` returns: ``True``
        for basic indexing (a view — the read path must freeze and
        flag it), ``False`` for fancy indexing (a fresh copy — nothing
        to guard), ``None`` for unclassified forms (the read path
        falls back to an ``np.may_share_memory`` probe).

        Cacheable forms: plain slices (keyed by their endpoints), ints,
        and non-boolean index arrays (keyed by object identity, entry
        dropped when the array is garbage-collected — index arrays are
        treated as immutable between accesses, matching how phase code
        uses a precomputed footprint).  Boolean masks and tuple indices
        select value- or shape-dependent element sets, so they are
        recomputed every access.
        """
        t = type(idx)
        if t is slice:
            key = (idx.start, idx.stop, idx.step)
            view_kind = True
        elif t is int:
            key = idx
            view_kind = True
        elif t is np.ndarray and idx.dtype != np.bool_:
            key = ("a", id(idx))
            view_kind = False
        else:
            rows = _normalize_rows(idx, self.shape[0])
            n_elem = self._count_elements(idx, rows, data)
            return (
                rows, n_elem, _rows_exact(idx), None,
                self._acall + n_elem * self._elem_rate,
            )
        rec = self._access_cache.get(key)
        if rec is None:
            rows = _normalize_rows(idx, self.shape[0])
            n_elem = self._count_elements(idx, rows, data)
            rec = (
                rows, n_elem, _rows_exact(idx), view_kind,
                self._acall + n_elem * self._elem_rate,
            )
            if t is np.ndarray:
                # Drop the id-keyed entry when the index array dies, so
                # a recycled id can never resolve to stale rows.
                weakref.finalize(idx, self._access_cache.pop, key, None)
            self._access_cache[key] = rec
        return rec

    def __reduce__(self):
        return (_unpickle_shared, (self.name,))

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def _count_elements(self, idx: object, rows: RowSpec, data: np.ndarray) -> int:
        """Elements touched by ``idx`` (exact for tuple indices)."""
        if isinstance(idx, tuple) and len(idx) > 1:
            try:
                return _index_result_size(idx, data.shape)
            except (TypeError, IndexError, ValueError):
                # Index form the analytic path does not model: fall
                # back to a materialising probe (exact but copying).
                probe = data[idx]
                return int(probe.size) if isinstance(probe, np.ndarray) else 1
        return rows.count * self._trailing

    @staticmethod
    def _copy_out(value):
        """Snapshot-read results must not alias the committed store
        (the legacy hot path and driver-level reads)."""
        if isinstance(value, np.ndarray):
            return value.copy()
        return value



class GlobalShared(_SharedBase):
    """A cluster-level shared array (``PPM_global_shared``).

    Axis 0 is block-distributed over the nodes; :meth:`owner_of` and
    :meth:`local_range` expose the distribution, which the runtime
    manages automatically (paper: "Automatic data distribution and
    locality management").
    """

    def __init__(self, runtime: "PpmRuntime", name: str, shape, dtype=np.float64, fill=0) -> None:
        super().__init__(runtime, name, shape, dtype)
        n_nodes = runtime.cluster.n_nodes
        n0 = self.shape[0]
        shm = runtime.shm
        if shm is not None:
            # Process backend: the committed store lives in a shared-
            # memory segment that worker processes map by name.
            self._data = shm.allocate(name, None, self.shape, self.dtype, fill)
        elif fill is None:
            self._data = np.empty(self.shape, dtype=self.dtype)
        else:
            self._data = np.full(self.shape, fill, dtype=self.dtype)
        # True once a snapshot view of the current buffer was handed
        # out; the next commit then swaps buffers (copy-on-commit).
        self._views_taken = False
        # Read-only alias of the committed buffer: snapshot reads index
        # it so basic-index results are born read-only (children of a
        # non-writeable array are non-writeable) — no per-access
        # ``flags.writeable`` toggle needed.  Rebuilt on buffer swap.
        self._ro = self._data.view()
        self._ro.flags.writeable = False
        # Block partition boundaries: node i owns rows
        # [starts[i], starts[i+1]).
        self._starts = np.array(
            [(i * n0) // n_nodes for i in range(n_nodes + 1)], dtype=np.int64
        )
        # Expose each node's block in its physical memory map.
        for node in runtime.cluster:
            lo, hi = self._starts[node.node_id], self._starts[node.node_id + 1]
            node.memory.adopt(f"gshared:{name}", self._data[lo:hi])

    # -- distribution ----------------------------------------------------
    def owner_of(self, rows: np.ndarray | int) -> np.ndarray | int:
        """Owning node id(s) of the given axis-0 row(s)."""
        scalar = np.isscalar(rows) or isinstance(rows, (int, np.integer))
        r = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        owners = np.searchsorted(self._starts, r, side="right") - 1
        return int(owners[0]) if scalar else owners

    def local_range(self, node_id: int) -> tuple[int, int]:
        """Half-open row range owned by ``node_id``."""
        if not 0 <= node_id < self.runtime.cluster.n_nodes:
            raise IndexError(f"node id {node_id} out of range")
        return int(self._starts[node_id]), int(self._starts[node_id + 1])

    def local_view(self, node_id: int) -> np.ndarray:
        """Zero-copy view of a node's owned block.

        This is the paper's node↔global *cast* utility: it bypasses the
        phase access protocol, so it must only be used in driver-level
        setup/teardown code, never inside VP phases.  A handle obtained
        here aliases the *current* committed buffer; a later phase
        commit that triggers the copy-on-commit guard swaps the buffer,
        so re-fetch the view after running phases rather than holding
        one across ``ppm.do``.
        """
        if self.runtime.cursor is not None:
            raise SharedAccessError(
                "local_view bypasses phase semantics and is only legal in "
                "driver code, not inside a phase"
            )
        lo, hi = self.local_range(node_id)
        return self._data[lo:hi]

    # -- commit protocol -------------------------------------------------
    def _commit_target(
        self,
        instance: int | None,
        *,
        force: bool = False,
        retain: bool = False,
        prune: bool = False,
    ) -> np.ndarray:
        """The array buffered writes should apply to.

        Copy-on-commit guard: if any snapshot view of the current
        buffer was handed out, the store swaps to a fresh copy of the
        phase-start buffer first — the old buffer is never written
        again, so every outstanding view keeps observing phase-start
        values (dropped views just release it to the allocator).

        ``force`` swaps even without outstanding views and ``retain``
        keeps the superseded segment attachable — the supervised
        process backend uses both so a pristine pre-commit copy always
        exists to replay a crashed worker's commit from.

        ``prune`` commits in place: the liveness certificate
        (:mod:`repro.analysis.liveness`) proved no view of this array
        outlives the phase segment it was taken in, so the copy the
        guard would make can never be observed — skip it.  Supervised
        (``force``) commits never prune; their pre-commit copy is the
        crash-replay source, not a snapshot-consistency guard.
        """
        rt = self.runtime
        if prune and not force and self._views_taken:
            self._views_taken = False
            rt.stats_pruned_commits += 1
            rt.stats_pruned_bytes += self._data.nbytes
            return self._data
        if self._views_taken or force:
            self._views_taken = False
            shm = rt.shm
            t0 = perf_counter()
            if shm is None:
                self._data = self._data.copy()
            else:
                # Segment swap: workers holding snapshot views keep the
                # retired segment mapped; they remap to the new name
                # with their next round command.
                self._data = shm.swap(self.name, None, retain=retain)
            rt.stats_commit_copy_s += perf_counter() - t0
            rt.stats_commit_copy_bytes += self._data.nbytes
            self._ro = self._data.view()
            self._ro.flags.writeable = False
            starts = self._starts
            name = f"gshared:{self.name}"
            for node in self.runtime.cluster:
                s, e = starts[node.node_id], starts[node.node_id + 1]
                node.memory.rebind(name, self._data[s:e])
        return self._data

    # -- access ----------------------------------------------------------
    def __getitem__(self, idx):
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            return self._copy_out(self._data[idx])
        if rt.zero_copy_reads:
            # Recording is inlined here (every Python call is
            # measurable at this frequency); semantics are identical to
            # rt.record_global_read.
            data = self._ro
            rows, n_elem, _, view_kind, cost = self._access_record(idx, data)
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            ctx._cost += cost
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_global_read(ctx.node_id, self, rows, n_elem)
            else:
                recs = phase.global_read_recs
                rec = recs.get((ctx.node_id, self))
                if rec is None:
                    rec = recs[(ctx.node_id, self)] = [[], 0]
                rec[0].append(rows)
                rec[1] += n_elem
            value = data[idx]
            if view_kind:
                if isinstance(value, np.ndarray):
                    self._views_taken = True
            elif (
                view_kind is None
                and isinstance(value, np.ndarray)
                and np.may_share_memory(value, data)
            ):
                self._views_taken = True
            return value
        data = self._data
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, data)
        rt.record_global_read(self, rows, n_elem, ctx)
        return self._copy_out(data[idx])

    def __setitem__(self, idx, value) -> None:
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            self._data[idx] = value
            return
        if rt.zero_copy_reads:
            rows, n_elem, rows_exact, _vk, cost = self._access_record(idx, self._data)
            if isinstance(value, np.ndarray):
                value = np.array(value, dtype=self.dtype, copy=True)
            rank = ctx.global_rank
            event = WriteEvent(
                self, None, "write", None, idx, value, rows, rank, rows_exact
            )
            # Inlined rt.record_global_write (identical semantics).
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            if phase.kind == "node":
                raise SharedAccessError(
                    "global shared variables cannot be written inside a node "
                    "phase; use a global phase"
                )
            ctx._cost += cost
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_global_write(
                        ctx.node_id, self, rows, n_elem, rank, event
                    )
            else:
                recs = phase.global_write_recs
                rec = recs.get((ctx.node_id, self))
                if rec is None:
                    rec = recs[(ctx.node_id, self)] = [[], 0]
                rec[0].append(rows)
                rec[1] += n_elem
                event.seq = phase._seq = phase._seq + 1
                phase.write_ops.append(event)
            return
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, self._data)
        rows_exact = _rows_exact(idx)
        value_copy = np.array(value, dtype=self.dtype, copy=True) if isinstance(value, np.ndarray) else value
        event = WriteEvent(
            self, None, "write", None, idx, value_copy, rows,
            ctx.global_rank, rows_exact,
        )
        rt.record_global_write(self, rows, n_elem, event, ctx)

    def accumulate(self, rows, values, op: str = "add") -> None:
        """Combine ``values`` into ``self[rows]`` at phase commit with a
        commutative operator; duplicate rows combine (via ``ufunc.at``)
        instead of overwriting.  Outside a phase, applies immediately."""
        try:
            ufunc = ACCUMULATE_UFUNCS[op]
        except KeyError:
            raise ValueError(
                f"unknown accumulate op {op!r}; expected one of {sorted(ACCUMULATE_UFUNCS)}"
            ) from None
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            ufunc.at(self._data, rows, values)
            return
        if rt.zero_copy_reads:
            spec, _, rows_exact, _vk, _c = self._access_record(rows, self._data)
            n_elem = spec.count * self._trailing
            if isinstance(values, np.ndarray):
                values = np.array(values, dtype=self.dtype, copy=True)
            rank = ctx.global_rank
            event = WriteEvent(
                self, None, "accumulate", op, rows, values, spec, rank, rows_exact
            )
            # Inlined rt.record_global_write (identical semantics).
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            if phase.kind == "node":
                raise SharedAccessError(
                    "global shared variables cannot be written inside a node "
                    "phase; use a global phase"
                )
            ctx._cost += rt._access_call + n_elem * rt._access_elem
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_global_write(
                        ctx.node_id, self, spec, n_elem, rank, event
                    )
            else:
                recs = phase.global_write_recs
                rec = recs.get((ctx.node_id, self))
                if rec is None:
                    rec = recs[(ctx.node_id, self)] = [[], 0]
                rec[0].append(spec)
                rec[1] += n_elem
                event.seq = phase._seq = phase._seq + 1
                phase.write_ops.append(event)
            return
        spec = _normalize_rows(rows, self.shape[0])
        rows_exact = _rows_exact(rows)
        n_elem = spec.count * self._trailing
        vals = np.array(values, dtype=self.dtype, copy=True) if isinstance(values, np.ndarray) else values
        event = WriteEvent(
            self, None, "accumulate", op, rows, vals, spec,
            ctx.global_rank, rows_exact,
        )
        rt.record_global_write(self, spec, n_elem, event, ctx)

    @property
    def committed(self) -> np.ndarray:
        """Read-only copy of the committed state (driver/test helper)."""
        return self._data.copy()

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalShared({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class NodeShared(_SharedBase):
    """A node-level shared array (``PPM_node_shared``): one independent
    instance per node, stored in that node's physical shared memory.

    Inside VP code, plain indexing addresses *the executing VP's node's*
    instance.  Driver code must pick an instance explicitly with
    :meth:`instance`.
    """

    def __init__(self, runtime: "PpmRuntime", name: str, shape, dtype=np.float64, fill=0) -> None:
        super().__init__(runtime, name, shape, dtype)
        self._elem_rate = runtime._node_access_elem
        self._data: list[np.ndarray] = []
        # Per-instance read-only alias (see GlobalShared._ro).
        self._ro: list[np.ndarray] = []
        # Per-instance flag: a snapshot view of the current buffer is
        # (or was) out there; the next commit swaps buffers.
        self._views_taken: list[bool] = []
        shm = runtime.shm
        for node in runtime.cluster:
            if shm is not None:
                arr = shm.allocate(name, node.node_id, self.shape, self.dtype, fill)
            elif fill is None:
                arr = np.empty(self.shape, dtype=self.dtype)
            else:
                arr = np.full(self.shape, fill, dtype=self.dtype)
            node.memory.adopt(f"nshared:{name}", arr)
            self._data.append(arr)
            ro = arr.view()
            ro.flags.writeable = False
            self._ro.append(ro)
            self._views_taken.append(False)

    def instance(self, node_id: int) -> np.ndarray:
        """Direct handle on one node's instance (driver code only).

        Like :meth:`GlobalShared.local_view`, the handle aliases the
        current committed buffer and is invalidated if a later phase
        commit triggers the copy-on-commit guard — re-fetch it after
        running phases instead of holding it across ``ppm.do``.
        """
        if self.runtime.cursor is not None:
            raise SharedAccessError(
                "NodeShared.instance is driver-level; VP code must use "
                "plain indexing, which addresses its own node's instance"
            )
        if not 0 <= node_id < len(self._data):
            raise IndexError(f"node id {node_id} out of range")
        return self._data[node_id]

    def _current_node(self) -> int:
        cur = self.runtime.cursor
        if cur is None:
            raise SharedAccessError(
                "node-shared access outside a phase must go through "
                ".instance(node_id)"
            )
        return cur.node_id

    # -- commit protocol -------------------------------------------------
    def _commit_target(
        self,
        instance: int | None,
        *,
        force: bool = False,
        retain: bool = False,
        prune: bool = False,
    ) -> np.ndarray:
        """Node-level copy-on-commit (see
        :meth:`GlobalShared._commit_target`)."""
        rt = self.runtime
        if prune and not force and self._views_taken[instance]:
            self._views_taken[instance] = False
            rt.stats_pruned_commits += 1
            rt.stats_pruned_bytes += self._data[instance].nbytes
            return self._data[instance]
        if self._views_taken[instance] or force:
            self._views_taken[instance] = False
            shm = rt.shm
            t0 = perf_counter()
            if shm is None:
                self._data[instance] = self._data[instance].copy()
            else:
                self._data[instance] = shm.swap(self.name, instance, retain=retain)
            rt.stats_commit_copy_s += perf_counter() - t0
            rt.stats_commit_copy_bytes += self._data[instance].nbytes
            ro = self._data[instance].view()
            ro.flags.writeable = False
            self._ro[instance] = ro
            self.runtime.cluster.node(instance).memory.rebind(
                f"nshared:{self.name}", self._data[instance]
            )
        return self._data[instance]

    def __getitem__(self, idx):
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            self._current_node()  # raises the driver-level usage error
        node = ctx.node_id
        if rt.zero_copy_reads:
            data = self._ro[node]
            rows, n_elem, _, view_kind, cost = self._access_record(idx, data)
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            ctx._cost += cost
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_node_read(n_elem)
            else:
                phase.node_read_ops += 1
                phase.node_read_elems += n_elem
            value = data[idx]
            if view_kind:
                if isinstance(value, np.ndarray):
                    self._views_taken[node] = True
            elif (
                view_kind is None
                and isinstance(value, np.ndarray)
                and np.may_share_memory(value, data)
            ):
                self._views_taken[node] = True
            return value
        data = self._data[node]
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, data)
        rt.record_node_read(self, n_elem, ctx)
        return self._copy_out(data[idx])

    def __setitem__(self, idx, value) -> None:
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            self._current_node()
        node = ctx.node_id
        if rt.zero_copy_reads:
            rows, n_elem, rows_exact, _vk, cost = self._access_record(idx, self._data[node])
            if isinstance(value, np.ndarray):
                value = np.array(value, dtype=self.dtype, copy=True)
            rank = ctx.global_rank
            event = WriteEvent(
                self, node, "write", None, idx, value, rows, rank, rows_exact
            )
            # Inlined rt.record_node_write (identical semantics).
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            ctx._cost += cost
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_node_write(node, n_elem, rank, event)
            else:
                phase.node_write_elems[node] += n_elem
                event.seq = phase._seq = phase._seq + 1
                phase.write_ops.append(event)
            return
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, self._data[node])
        rows_exact = _rows_exact(idx)
        value_copy = np.array(value, dtype=self.dtype, copy=True) if isinstance(value, np.ndarray) else value
        event = WriteEvent(
            self, node, "write", None, idx, value_copy, rows,
            ctx.global_rank, rows_exact,
        )
        rt.record_node_write(self, n_elem, event, ctx)

    def accumulate(self, rows, values, op: str = "add") -> None:
        """Node-level analogue of :meth:`GlobalShared.accumulate`."""
        if op not in ACCUMULATE_UFUNCS:
            raise ValueError(
                f"unknown accumulate op {op!r}; expected one of {sorted(ACCUMULATE_UFUNCS)}"
            )
        rt = self.runtime
        try:
            ctx = rt._tls.cursor
        except AttributeError:
            ctx = None
        if ctx is None:
            self._current_node()
        node = ctx.node_id
        if rt.zero_copy_reads:
            spec, _, rows_exact, _vk, _c = self._access_record(rows, self._data[node])
            n_elem = spec.count * self._trailing
            if isinstance(values, np.ndarray):
                values = np.array(values, dtype=self.dtype, copy=True)
            rank = ctx.global_rank
            event = WriteEvent(
                self, node, "accumulate", op, rows, values, spec, rank, rows_exact
            )
            # Inlined rt.record_node_write (identical semantics).
            phase = rt.phase
            if phase is None:
                rt._require_phase()
            ctx._cost += rt._access_call + n_elem * rt._node_access_elem
            if rt._needs_lock:
                with rt._record_lock:
                    phase.add_node_write(node, n_elem, rank, event)
            else:
                phase.node_write_elems[node] += n_elem
                event.seq = phase._seq = phase._seq + 1
                phase.write_ops.append(event)
            return
        spec = _normalize_rows(rows, self.shape[0])
        rows_exact = _rows_exact(rows)
        n_elem = spec.count * self._trailing
        vals = np.array(values, dtype=self.dtype, copy=True) if isinstance(values, np.ndarray) else values
        event = WriteEvent(
            self, node, "accumulate", op, rows, vals, spec,
            ctx.global_rank, rows_exact,
        )
        rt.record_node_write(self, n_elem, event, ctx)

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeShared({self.name!r}, shape={self.shape}, dtype={self.dtype})"
