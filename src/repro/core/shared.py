"""PPM shared variables: global-shared and node-shared arrays.

Two kinds, exactly as in the paper (section 3.1, item 1):

* :class:`GlobalShared` — *one* variable shared across the whole
  cluster through virtual shared memory, block-distributed over the
  nodes along axis 0;
* :class:`NodeShared` — *one instance per node* (the paper: "multiple
  variables of the same name are declared, one for each physical
  node"), living in the node's physical shared memory.

Both support numpy "array syntax ... as in the mathematical
algorithms" (paper section 3: "Implicit communication").  Inside a
phase, reads return the phase-start snapshot and writes are buffered
until the commit at the phase barrier; outside any phase (driver-level
setup code) accesses apply directly and are not timed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import SharedAccessError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import PpmRuntime

#: Accumulate operators accepted by ``accumulate`` (applied with the
#: matching ``np.ufunc.at``, so duplicate indices combine correctly).
ACCUMULATE_UFUNCS = {
    "add": np.add,
    "subtract": np.subtract,
    "minimum": np.minimum,
    "maximum": np.maximum,
    "multiply": np.multiply,
}


class RowSpec:
    """Rows (axis-0 indices) touched by one access, in either a cheap
    contiguous-range form or a materialised index-array form."""

    __slots__ = ("start", "stop", "array")

    def __init__(self, start: int = 0, stop: int = 0, array: np.ndarray | None = None) -> None:
        self.start = start
        self.stop = stop
        self.array = array

    @classmethod
    def from_range(cls, start: int, stop: int) -> "RowSpec":
        return cls(start=start, stop=max(start, stop))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "RowSpec":
        return cls(array=array)

    @property
    def count(self) -> int:
        if self.array is not None:
            return int(self.array.size)
        return self.stop - self.start

    def materialize(self) -> np.ndarray:
        """Rows as an int64 array."""
        if self.array is not None:
            return self.array
        return np.arange(self.start, self.stop, dtype=np.int64)


class WriteEvent:
    """Sanitizer-grade record of one buffered write or accumulate.

    Only created when the runtime's phase-conflict sanitizer is
    enabled: it carries enough to *replay* the operation onto a scratch
    array (``idx``/``value``/``op``), so the sanitizer can classify
    conflicting footprints without touching the committed store.
    ``instance`` is the node id for node-shared targets, ``None`` for
    global-shared ones.
    """

    __slots__ = ("shared", "instance", "kind", "op", "idx", "value", "rows", "rank", "seq")

    def __init__(
        self,
        *,
        shared: object,
        instance: int | None,
        kind: str,
        op: str | None,
        idx: object,
        value: object,
        rows: RowSpec,
        rank: int,
    ) -> None:
        self.shared = shared
        self.instance = instance
        self.kind = kind  # "write" | "accumulate"
        self.op = op  # accumulate ufunc name, None for plain writes
        self.idx = idx
        self.value = value
        self.rows = rows
        self.rank = rank
        self.seq = 0  # program-order tiebreak, set by the recorder

    def replay(self, target: np.ndarray) -> None:
        """Apply this operation to ``target`` (a scratch ndarray)."""
        if self.kind == "write":
            target[self.idx] = self.value
        else:
            ACCUMULATE_UFUNCS[self.op].at(target, self.idx, self.value)

    def footprint(self, shape: tuple[int, ...]) -> np.ndarray:
        """Boolean mask (of ``shape``) of the elements this op touches."""
        mask = np.zeros(shape, dtype=bool)
        mask[self.idx] = True
        return mask


def _index_result_size(idx: tuple, shape: tuple[int, ...]) -> int:
    """Number of elements selected by ``data[idx]``, computed from the
    index and array shapes alone (no indexing, no copy).

    Follows numpy's rules: basic parts (ints, slices, Ellipsis,
    newaxis) contribute their per-axis lengths; all advanced parts
    (integer / boolean arrays) broadcast together and contribute the
    broadcast size once.  Raises for index forms it does not model
    (callers fall back to an exact materialising probe).
    """
    ndim = len(shape)

    def consumes(entry: object) -> int:
        if entry is None:
            return 0
        if isinstance(entry, np.ndarray) and entry.dtype == bool:
            return entry.ndim
        return 1

    # Expand a single Ellipsis into full slices.
    expanded: list[object] = []
    n_consumed = sum(consumes(e) for e in idx if e is not Ellipsis)
    for entry in idx:
        if entry is Ellipsis:
            expanded.extend([slice(None)] * (ndim - n_consumed))
        else:
            expanded.append(entry)

    basic = 1
    adv_shapes: list[tuple[int, ...]] = []
    axis = 0
    for entry in expanded:
        if entry is None:
            continue  # newaxis: result axis of length 1
        if isinstance(entry, (int, np.integer)):
            axis += 1
            continue
        if isinstance(entry, slice):
            basic *= len(range(*entry.indices(shape[axis])))
            axis += 1
            continue
        arr = entry if isinstance(entry, np.ndarray) else np.asarray(entry)
        if arr.dtype == bool:
            if arr.shape != tuple(shape[axis : axis + arr.ndim]):
                raise IndexError(
                    f"boolean index shape {arr.shape} does not match axes "
                    f"{shape[axis:axis + arr.ndim]}"
                )
            adv_shapes.append((int(np.count_nonzero(arr)),))
            axis += arr.ndim
        elif np.issubdtype(arr.dtype, np.integer):
            adv_shapes.append(arr.shape)
            axis += 1
        else:
            raise TypeError(f"unsupported index entry {entry!r}")
    if axis > ndim:
        raise IndexError(f"too many indices for shape {shape}")
    # Unindexed trailing axes pass through whole.
    for ax in range(axis, ndim):
        basic *= shape[ax]
    if adv_shapes:
        basic *= int(np.prod(np.broadcast_shapes(*adv_shapes), dtype=np.int64))
    return int(basic)


def _normalize_rows(idx: object, n0: int) -> RowSpec:
    """Rows along axis 0 referenced by index expression ``idx``."""
    head = idx[0] if isinstance(idx, tuple) else idx
    if isinstance(head, (int, np.integer)):
        i = int(head)
        if i < 0:
            i += n0
        if not 0 <= i < n0:
            raise IndexError(f"row index {head} out of range for axis of length {n0}")
        return RowSpec.from_range(i, i + 1)
    if isinstance(head, slice):
        start, stop, step = head.indices(n0)
        if step == 1:
            return RowSpec.from_range(start, stop)
        return RowSpec.from_array(np.arange(start, stop, step, dtype=np.int64))
    if head is Ellipsis:
        return RowSpec.from_range(0, n0)
    arr = np.asarray(head)
    if arr.dtype == bool:
        if arr.shape[0] != n0:
            raise IndexError(
                f"boolean mask of length {arr.shape[0]} does not match axis of length {n0}"
            )
        return RowSpec.from_array(np.nonzero(arr)[0].astype(np.int64))
    arr = arr.astype(np.int64, copy=False).ravel()
    if arr.size and (arr.min() < -n0 or arr.max() >= n0):
        raise IndexError(f"row indices out of range for axis of length {n0}")
    if arr.size and arr.min() < 0:
        arr = np.where(arr < 0, arr + n0, arr)
    return RowSpec.from_array(arr)


class _SharedBase:
    """Common machinery of both shared-variable kinds."""

    def __init__(self, runtime: "PpmRuntime", name: str, shape: tuple[int, ...], dtype) -> None:
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 0 for s in shape):
            raise ValueError(f"invalid shared-array shape {shape}")
        self.runtime = runtime
        self.name = name
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self._trailing = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def _count_elements(self, idx: object, rows: RowSpec, data: np.ndarray) -> int:
        """Elements touched by ``idx`` (exact for tuple indices)."""
        if isinstance(idx, tuple) and len(idx) > 1:
            try:
                return _index_result_size(idx, data.shape)
            except (TypeError, IndexError, ValueError):
                # Index form the analytic path does not model: fall
                # back to a materialising probe (exact but copying).
                probe = data[idx]
                return int(probe.size) if isinstance(probe, np.ndarray) else 1
        return rows.count * self._trailing

    @staticmethod
    def _copy_out(value):
        """Snapshot-read results must not alias the committed store."""
        if isinstance(value, np.ndarray):
            return value.copy()
        return value


class GlobalShared(_SharedBase):
    """A cluster-level shared array (``PPM_global_shared``).

    Axis 0 is block-distributed over the nodes; :meth:`owner_of` and
    :meth:`local_range` expose the distribution, which the runtime
    manages automatically (paper: "Automatic data distribution and
    locality management").
    """

    def __init__(self, runtime: "PpmRuntime", name: str, shape, dtype=np.float64, fill=0) -> None:
        super().__init__(runtime, name, shape, dtype)
        n_nodes = runtime.cluster.n_nodes
        n0 = self.shape[0]
        if fill is None:
            self._data = np.empty(self.shape, dtype=self.dtype)
        else:
            self._data = np.full(self.shape, fill, dtype=self.dtype)
        # Block partition boundaries: node i owns rows
        # [starts[i], starts[i+1]).
        self._starts = np.array(
            [(i * n0) // n_nodes for i in range(n_nodes + 1)], dtype=np.int64
        )
        # Expose each node's block in its physical memory map.
        for node in runtime.cluster:
            lo, hi = self._starts[node.node_id], self._starts[node.node_id + 1]
            node.memory.adopt(f"gshared:{name}", self._data[lo:hi])

    # -- distribution ----------------------------------------------------
    def owner_of(self, rows: np.ndarray | int) -> np.ndarray | int:
        """Owning node id(s) of the given axis-0 row(s)."""
        scalar = np.isscalar(rows) or isinstance(rows, (int, np.integer))
        r = np.atleast_1d(np.asarray(rows, dtype=np.int64))
        owners = np.searchsorted(self._starts, r, side="right") - 1
        return int(owners[0]) if scalar else owners

    def local_range(self, node_id: int) -> tuple[int, int]:
        """Half-open row range owned by ``node_id``."""
        if not 0 <= node_id < self.runtime.cluster.n_nodes:
            raise IndexError(f"node id {node_id} out of range")
        return int(self._starts[node_id]), int(self._starts[node_id + 1])

    def local_view(self, node_id: int) -> np.ndarray:
        """Zero-copy view of a node's owned block.

        This is the paper's node↔global *cast* utility: it bypasses the
        phase access protocol, so it must only be used in driver-level
        setup/teardown code, never inside VP phases.
        """
        if self.runtime.cursor is not None:
            raise SharedAccessError(
                "local_view bypasses phase semantics and is only legal in "
                "driver code, not inside a phase"
            )
        lo, hi = self.local_range(node_id)
        return self._data[lo:hi]

    # -- access ----------------------------------------------------------
    def __getitem__(self, idx):
        cur = self.runtime.cursor
        if cur is None:
            return self._copy_out(self._data[idx])
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, self._data)
        self.runtime.record_global_read(self, rows, n_elem)
        return self._copy_out(self._data[idx])

    def __setitem__(self, idx, value) -> None:
        cur = self.runtime.cursor
        if cur is None:
            self._data[idx] = value
            return
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, self._data)
        value_copy = np.array(value, dtype=self.dtype, copy=True) if isinstance(value, np.ndarray) else value
        data = self._data

        def apply(_idx=idx, _v=value_copy):
            data[_idx] = _v

        event = None
        if self.runtime.sanitizer is not None:
            event = WriteEvent(
                shared=self, instance=None, kind="write", op=None,
                idx=idx, value=value_copy, rows=rows, rank=cur.global_rank,
            )
        self.runtime.record_global_write(self, rows, n_elem, apply, event=event)

    def accumulate(self, rows, values, op: str = "add") -> None:
        """Combine ``values`` into ``self[rows]`` at phase commit with a
        commutative operator; duplicate rows combine (via ``ufunc.at``)
        instead of overwriting.  Outside a phase, applies immediately."""
        try:
            ufunc = ACCUMULATE_UFUNCS[op]
        except KeyError:
            raise ValueError(
                f"unknown accumulate op {op!r}; expected one of {sorted(ACCUMULATE_UFUNCS)}"
            ) from None
        cur = self.runtime.cursor
        if cur is None:
            ufunc.at(self._data, rows, values)
            return
        spec = _normalize_rows(rows, self.shape[0])
        n_elem = spec.count * self._trailing
        vals = np.array(values, dtype=self.dtype, copy=True) if isinstance(values, np.ndarray) else values
        data = self._data

        def apply(_rows=rows, _v=vals):
            ufunc.at(data, _rows, _v)

        event = None
        if self.runtime.sanitizer is not None:
            event = WriteEvent(
                shared=self, instance=None, kind="accumulate", op=op,
                idx=rows, value=vals, rows=spec, rank=cur.global_rank,
            )
        self.runtime.record_global_write(self, spec, n_elem, apply, event=event)

    @property
    def committed(self) -> np.ndarray:
        """Read-only copy of the committed state (driver/test helper)."""
        return self._data.copy()

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalShared({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class NodeShared(_SharedBase):
    """A node-level shared array (``PPM_node_shared``): one independent
    instance per node, stored in that node's physical shared memory.

    Inside VP code, plain indexing addresses *the executing VP's node's*
    instance.  Driver code must pick an instance explicitly with
    :meth:`instance`.
    """

    def __init__(self, runtime: "PpmRuntime", name: str, shape, dtype=np.float64, fill=0) -> None:
        super().__init__(runtime, name, shape, dtype)
        self._data: list[np.ndarray] = []
        for node in runtime.cluster:
            if fill is None:
                arr = np.empty(self.shape, dtype=self.dtype)
            else:
                arr = np.full(self.shape, fill, dtype=self.dtype)
            node.memory.adopt(f"nshared:{name}", arr)
            self._data.append(arr)

    def instance(self, node_id: int) -> np.ndarray:
        """Direct handle on one node's instance (driver code only)."""
        if self.runtime.cursor is not None:
            raise SharedAccessError(
                "NodeShared.instance is driver-level; VP code must use "
                "plain indexing, which addresses its own node's instance"
            )
        if not 0 <= node_id < len(self._data):
            raise IndexError(f"node id {node_id} out of range")
        return self._data[node_id]

    def _current_node(self) -> int:
        cur = self.runtime.cursor
        if cur is None:
            raise SharedAccessError(
                "node-shared access outside a phase must go through "
                ".instance(node_id)"
            )
        return cur.node_id

    def __getitem__(self, idx):
        node = self._current_node()
        data = self._data[node]
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, data)
        self.runtime.record_node_read(self, n_elem)
        return self._copy_out(data[idx])

    def __setitem__(self, idx, value) -> None:
        node = self._current_node()
        data = self._data[node]
        rows = _normalize_rows(idx, self.shape[0])
        n_elem = self._count_elements(idx, rows, data)
        value_copy = np.array(value, dtype=self.dtype, copy=True) if isinstance(value, np.ndarray) else value

        def apply(_idx=idx, _v=value_copy, _data=data):
            _data[_idx] = _v

        event = None
        if self.runtime.sanitizer is not None:
            event = WriteEvent(
                shared=self, instance=node, kind="write", op=None,
                idx=idx, value=value_copy, rows=rows,
                rank=self.runtime.cursor.global_rank,
            )
        self.runtime.record_node_write(self, n_elem, apply, event=event)

    def accumulate(self, rows, values, op: str = "add") -> None:
        """Node-level analogue of :meth:`GlobalShared.accumulate`."""
        try:
            ufunc = ACCUMULATE_UFUNCS[op]
        except KeyError:
            raise ValueError(
                f"unknown accumulate op {op!r}; expected one of {sorted(ACCUMULATE_UFUNCS)}"
            ) from None
        node = self._current_node()
        data = self._data[node]
        spec = _normalize_rows(rows, self.shape[0])
        n_elem = spec.count * self._trailing
        vals = np.array(values, dtype=self.dtype, copy=True) if isinstance(values, np.ndarray) else values

        def apply(_rows=rows, _v=vals, _data=data):
            ufunc.at(_data, _rows, _v)

        event = None
        if self.runtime.sanitizer is not None:
            event = WriteEvent(
                shared=self, instance=node, kind="accumulate", op=op,
                idx=rows, value=vals, rows=spec,
                rank=self.runtime.cursor.global_rank,
            )
        self.runtime.record_node_write(self, n_elem, apply, event=event)

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeShared({self.name!r}, shape={self.shape}, dtype={self.dtype})"
