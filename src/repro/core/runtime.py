"""The PPM runtime: VP execution engine and commit protocol.

This is the reproduction of the paper's "light-weight runtime library"
(section 3.4).  It owns:

* the execution of ``PPM_do`` — VP generators advanced in lockstep
  phase rounds, with node phases running asynchronously per node and
  global phases synchronising the cluster;
* the snapshot/commit shared-memory protocol (writes buffered during a
  phase, applied in deterministic global-VP-rank order at the barrier);
* cost accounting — per-access software overhead, VP→core loop
  scheduling, commit-time bundling of remote traffic, comm/compute
  overlap and NIC scheduling.

Execution is sequential and fully deterministic; simulated time lives
in the cluster's logical clocks.
"""

from __future__ import annotations

import inspect
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import MachineConfig
from repro.core.bundling import aggregate_traffic
from repro.core.collectives import CollectiveHandle
from repro.core.constructs import PhaseDecl
from repro.core.errors import (
    ParallelConfigError,
    PhaseUsageError,
    SharedAccessError,
    VpProgramError,
)
from repro.core.phase import CommitPlanCache, PhaseRecorder
from repro.core.scheduler import (
    PhaseTiming,
    compose_phase_timing,
    lpt_core_map,
    node_comm_cost,
    node_compute_time,
    peer_owner_messages,
)
from repro.core.shared import GlobalShared, RowSpec
from repro.core.vp import VpContext, core_of
from repro.machine.cluster import Cluster
from repro.machine.network import ZERO_COST
from repro.obs.events import (
    NodeSlice,
    PhaseBegin,
    PhaseCommit,
    SnapshotPruned,
)


class _VpRecord:
    """Engine-side state of one virtual processor."""

    __slots__ = ("ctx", "gen", "decl", "done", "phase_index", "last_cost")

    def __init__(self, ctx: VpContext, gen) -> None:
        self.ctx = ctx
        self.gen = gen
        self.decl: PhaseDecl | None = None
        self.done = False
        self.phase_index = 0  # phases this VP has completed
        self.last_cost = 0.0  # measured cost of the previous phase


@dataclass(frozen=True)
class PhaseProfile:
    """Timing breakdown of one executed phase (one entry per phase in
    :attr:`PpmRuntime.profile`; node phases carry a single node)."""

    index: int
    kind: str
    latency_rounds: int
    t_end: float
    node_timings: dict
    """node id -> :class:`~repro.core.scheduler.PhaseTiming`."""

    @property
    def busiest_node(self) -> int:
        """Node with the largest busy time this phase."""
        return max(self.node_timings, key=lambda n: self.node_timings[n].busy)


@dataclass
class DoStats:
    """Summary of one ``ppm.do`` invocation."""

    vp_count: int
    global_phases: int
    node_phases: int
    t_start: float
    t_end: float

    @property
    def elapsed(self) -> float:
        """Simulated seconds this ``do`` took."""
        return self.t_end - self.t_start


class PpmRuntime:
    """Shared-variable registry plus the phase execution engine.

    ``vp_executor`` selects how phase bodies run: ``"sequential"``
    (default, fully deterministic single-thread engine) or
    ``"threads"`` — VPs execute as real threads, the paper's "think of
    them as threads" reading.  Both modes produce identical results
    and identical simulated times: phase bodies are independent by
    construction (snapshot reads, buffered writes), recording is
    lock-protected, and the commit still applies writes in global-VP-
    rank order.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        vp_executor: str = "sequential",
        sanitize: str | bool | None = None,
        trace=None,
        hot_path: str = "fast",
        resilience=None,
        executor: str = "inline",
        workers: int | None = None,
        zero_merge: bool = True,
        supervision=None,
        supervision_state=None,
        snapshot: str = "full",
    ) -> None:
        if vp_executor not in ("sequential", "threads"):
            raise ValueError(
                f"vp_executor must be 'sequential' or 'threads', got {vp_executor!r}"
            )
        if hot_path not in ("fast", "legacy"):
            raise ValueError(
                f"hot_path must be 'fast' or 'legacy', got {hot_path!r}"
            )
        if snapshot not in ("full", "pruned"):
            raise ValueError(
                f"snapshot must be 'full' or 'pruned', got {snapshot!r}"
            )
        if executor not in ("inline", "process"):
            raise ParallelConfigError(
                f"executor must be 'inline' or 'process', got {executor!r}",
                code="PPM502",
            )
        if workers is not None:
            if not isinstance(workers, (int, np.integer)) or workers < 1:
                raise ParallelConfigError(
                    f"workers must be a positive integer, got {workers!r}",
                    code="PPM502",
                )
            workers = int(workers)
        if executor == "process" and vp_executor == "threads":
            raise ParallelConfigError(
                "executor='process' already parallelises phase bodies "
                "across worker processes; vp_executor='threads' cannot "
                "be combined with it",
                code="PPM503",
            )
        if supervision is not None and executor != "process":
            raise ParallelConfigError(
                "supervision= configures worker-process crash recovery "
                "and requires executor='process' (the inline executor "
                "has no workers to supervise)",
                code="PPM602",
            )
        #: Worker supervision policy
        #: (:class:`repro.parallel.supervisor.SupervisionPolicy`), or
        #: None (a worker death is fatal, PPM603).  Process executor
        #: only.
        self.supervision = supervision
        #: Cross-restart supervision counters
        #: (:class:`repro.parallel.supervisor.SupervisionState`);
        #: ``run_ppm``'s degradation loop threads one state object
        #: through pool restarts so the final report covers the whole
        #: run.  None means the backend creates a fresh one.
        self.supervision_state = supervision_state
        #: Execution backend selector: ``"inline"`` (default — phase
        #: bodies run in this process, bitwise-identical to every
        #: release before the backend existed) or ``"process"`` — phase
        #: bodies run on real cores via :mod:`repro.parallel`.
        self.executor = executor
        self.workers = workers
        #: Shared-memory segment registry
        #: (:class:`repro.parallel.shm.ShmRegistry`) backing every
        #: shared variable's committed store under the process
        #: executor; None under the inline executor (private numpy
        #: buffers, the unchanged default).
        self.shm = None
        self._backend = None
        if executor == "process":
            from repro.parallel.shm import ShmRegistry

            self.shm = ShmRegistry()
        self.cluster = cluster
        self.vp_executor = vp_executor
        #: Hot-path selector.  ``"fast"`` (default) enables zero-copy
        #: snapshot reads, the vectorized commit engine and sequential
        #: lock elision; ``"legacy"`` restores copy-on-read and
        #: one-op-at-a-time commit replay — the reference semantics the
        #: property tests and the wall-clock benchmark's "before"
        #: column run against.  Both produce bitwise-identical
        #: committed arrays and simulated times.
        self.hot_path = hot_path
        self.zero_copy_reads = hot_path == "fast"
        self.commit_engine = "vectorized" if hot_path == "fast" else "legacy"
        #: Cross-round commit-plan cache: the vectorized engine
        #: compiles each target's access pattern (lexsorted index
        #: buffers, slice replays, ufunc.at argument tuples) once and
        #: revalidates it by interned-spec identity every round; None
        #: in legacy mode (one-op-at-a-time replay has no plans).
        self.commit_plans = (
            CommitPlanCache() if self.commit_engine == "vectorized" else None
        )
        #: Zero-merge commit switch (``executor="process"`` only):
        #: rounds whose phases carry a conflict-freedom certificate
        #: commit worker-side, straight into the shared-memory
        #: segments, and reply with a fixed-size digest.  ``False``
        #: forces every round through the record-shipping replay path —
        #: the documented escape hatch, and what the equivalence tests
        #: diff the zero-merge path against.
        self.zero_merge = zero_merge
        #: Observability event bus (:class:`repro.obs.PhaseTrace`), or
        #: None.  Every instrumented site is gated on a single
        #: ``tracer is not None`` test, so the untraced default path
        #: is unchanged; traced runs commit bitwise-identical results.
        self.tracer = trace
        # The network model emits BarrierWait events for the
        # phase-closing synchronisation it prices (docs/OBSERVABILITY.md).
        cluster.network.tracer = trace
        #: Phase-conflict sanitizer (``repro.analysis``), or None.  When
        #: set, every buffered write also records a
        #: :class:`~repro.core.shared.WriteEvent` and each commit is
        #: checked for cross-VP conflicts before writes apply.
        self.sanitizer = None
        #: ``sanitize="auto"``: run in strict mode, but skip the
        #: dynamic check for phases holding a static conflict-freedom
        #: certificate (:mod:`repro.analysis.certify`).  Uncertified
        #: phases still get the full strict check.
        self.sanitize_auto = sanitize == "auto"
        if sanitize not in (None, False):
            if sanitize is True:
                sanitize = "warn"
            from repro.analysis.sanitizer import PhaseSanitizer

            self.sanitizer = PhaseSanitizer(
                mode="strict" if sanitize == "auto" else sanitize
            )
        #: Resilience orchestrator
        #: (:class:`repro.resilience.manager.ResilienceManager`), or
        #: None.  Like the tracer, every hook site is gated on a single
        #: ``resilience is not None`` test and hooks run per *phase*,
        #: never per access, so disabled resilience costs the hot path
        #: nothing.
        self.resilience = resilience
        self.phase: PhaseRecorder | None = None
        self.shared_registry: dict[str, object] = {}
        self.stats_global_phases = 0
        self.stats_node_phases = 0
        #: Phase rounds that ran under a static overlap certificate
        #: (dynamic conflict check skipped, comm certified-overlappable).
        self.stats_certified_phases = 0
        #: Snapshot engine selector: ``"full"`` (default — every commit
        #: with outstanding views pays copy-on-commit) or ``"pruned"``
        #: — commits of arrays the liveness certificate
        #: (:mod:`repro.analysis.liveness`) proved unread before their
        #: next overwrite apply in place, skipping the copy.  Committed
        #: arrays and simulated times are bitwise-identical either way.
        self.snapshot = snapshot
        #: Names of shared variables the active kernel's liveness
        #: certificate allows to commit in place (``snapshot="pruned"``
        #: only; empty otherwise).
        self._prune_names: frozenset = frozenset()
        #: Commits that skipped copy-on-commit under
        #: ``snapshot="pruned"``, and the copy bytes avoided.
        self.stats_pruned_commits = 0
        self.stats_pruned_bytes = 0
        #: Copy-on-commit swaps actually performed: host seconds spent
        #: copying and bytes moved (what pruning removes).
        self.stats_commit_copy_s = 0.0
        self.stats_commit_copy_bytes = 0
        #: Certificate of the kernel currently inside ``do``, or None.
        self._active_cert = None
        self._tls = threading.local()
        # Seed the constructing thread so hot paths can read
        # ``_tls.cursor`` directly (no getattr default needed).
        self._tls.cursor = None
        # Lock strategy, chosen once: the sequential engine records
        # from a single thread and elides the lock entirely (a plain
        # boolean branch, cheaper than entering even a no-op context
        # manager on every shared-variable access).
        self._record_lock = threading.Lock()
        self._needs_lock = vp_executor == "threads" or hot_path == "legacy"
        self._pool: ThreadPoolExecutor | None = None
        # Per-access cost constants, hoisted out of the recording hot
        # path (MachineConfig is frozen, so these cannot go stale).
        cfg = cluster.config
        self._access_call = cfg.ppm_access_call_overhead
        self._access_elem = cfg.ppm_access_per_element
        self._node_access_elem = cfg.ppm_node_access_per_element
        self._flop_time = cfg.flop_time
        self._mem_time = cfg.mem_access_time
        # Cross-phase comm-cost memo: node_comm_cost depends only on a
        # node's peer footprint (elems + itemsize per peer) and the
        # phase's latency rounds, never on node/owner identities, and
        # iterative solvers repeat the same footprints every phase.
        # Bypassed when tracing (per-transfer events must be emitted)
        # and in legacy mode.
        self._comm_cost_cache: dict = {}
        #: Per-phase timing breakdowns, appended as phases commit.
        self.profile: list[PhaseProfile] = []

    @property
    def cursor(self) -> VpContext | None:
        """The VP whose code is executing on *this* thread (None in
        driver code)."""
        return getattr(self._tls, "cursor", None)

    @cursor.setter
    def cursor(self, value: VpContext | None) -> None:
        self._tls.cursor = value

    @property
    def config(self) -> MachineConfig:
        return self.cluster.config

    @property
    def diagnostics(self) -> list:
        """Sanitizer findings so far (empty when sanitizing is off)."""
        return [] if self.sanitizer is None else list(self.sanitizer.diagnostics)

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def close(self) -> None:
        """Release runtime resources: the lazily created VP thread pool
        of the ``"threads"`` executor, and — under the process executor
        — the worker process pool plus every shared-memory segment.
        Idempotent, and reached on *every* ``run_ppm`` exit path
        (success, application crash, ``KeyboardInterrupt``), so no
        worker process or ``/dev/shm`` segment outlives the program."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()
        if self.shm is not None:
            self.shm.close()

    def __enter__(self) -> "PpmRuntime":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ==================================================================
    # Recording API (called by shared-variable handles and VpContext)
    # ==================================================================
    def _require_phase(self) -> PhaseRecorder:
        if self.phase is None:
            raise SharedAccessError(
                "shared variables cannot be accessed in the VP prologue "
                "(before the first phase declaration)"
            )
        return self.phase

    def record_global_read(
        self, shared: GlobalShared, rows: RowSpec, n_elem: int, ctx=None
    ) -> None:
        phase = self.phase
        if phase is None:
            phase = self._require_phase()
        if ctx is None:
            ctx = self.cursor
        ctx._cost += self._access_call + n_elem * self._access_elem
        if self._needs_lock:
            with self._record_lock:
                phase.add_global_read(ctx.node_id, shared, rows, n_elem)
        else:
            phase.add_global_read(ctx.node_id, shared, rows, n_elem)

    def record_global_write(
        self,
        shared: GlobalShared,
        rows: RowSpec,
        n_elem: int,
        event=None,
        ctx=None,
    ) -> None:
        phase = self.phase
        if phase is None:
            phase = self._require_phase()
        if phase.kind == "node":
            raise SharedAccessError(
                "global shared variables cannot be written inside a node "
                "phase; use a global phase"
            )
        if ctx is None:
            ctx = self.cursor
        ctx._cost += self._access_call + n_elem * self._access_elem
        if self._needs_lock:
            with self._record_lock:
                phase.add_global_write(
                    ctx.node_id, shared, rows, n_elem, ctx.global_rank, event
                )
        else:
            phase.add_global_write(
                ctx.node_id, shared, rows, n_elem, ctx.global_rank, event
            )

    def record_node_read(self, shared, n_elem: int, ctx=None) -> None:
        phase = self.phase
        if phase is None:
            phase = self._require_phase()
        if ctx is None:
            ctx = self.cursor
        ctx._cost += self._access_call + n_elem * self._node_access_elem
        if self._needs_lock:
            with self._record_lock:
                phase.add_node_read(n_elem)
        else:
            phase.add_node_read(n_elem)

    def record_node_write(self, shared, n_elem: int, event=None, ctx=None) -> None:
        phase = self.phase
        if phase is None:
            phase = self._require_phase()
        if ctx is None:
            ctx = self.cursor
        ctx._cost += self._access_call + n_elem * self._node_access_elem
        if self._needs_lock:
            with self._record_lock:
                phase.add_node_write(ctx.node_id, n_elem, ctx.global_rank, event)
        else:
            phase.add_node_write(ctx.node_id, n_elem, ctx.global_rank, event)

    def record_collective(self, ctx: VpContext, kind: str, value: object, op) -> CollectiveHandle:
        phase = self.phase
        if phase is None:
            phase = self._require_phase()
        # In a global phase the collective spans all contributing VPs
        # cluster-wide; in a node phase it spans the node's VPs only
        # (the recorder of a node phase belongs to a single node, so
        # the same slot machinery scopes it naturally).
        index = ctx._coll_index
        if self._needs_lock:
            with self._record_lock:
                slot = phase.collective_slot(index, kind, op)
                handle = slot.add(ctx.global_rank, value)
        else:
            slots = phase.collective_slots
            if index < len(slots):
                slot = slots[index]
                # Identity match is the common case; the full
                # compatibility check handles equal-but-distinct ops.
                if kind != slot.kind or op is not slot.op:
                    slot.check_compatible(kind, op)
            else:
                slot = phase.collective_slot(index, kind, op)
            handle = CollectiveHandle(slot.kind)
            slot.entries.append((ctx.global_rank, value, handle))
        ctx._coll_index = index + 1
        # Contribution cost: one runtime-library call.
        ctx._cost += self._access_call
        return handle

    # ==================================================================
    # PPM_do — the engine
    # ==================================================================
    def do(
        self,
        vp_counts: int | Sequence[int],
        func: Callable | Sequence[Callable],
        *args: object,
        phase: str = "global",
        latency_rounds: int = 1,
        **kwargs: object,
    ) -> DoStats:
        """Execute ``PPM_do(K) func(args)``.

        ``vp_counts`` is the VP count per node — a single int (same K
        everywhere) or one int per node.  ``func`` is a PPM function,
        or one per node (the paper: "the PPM function that is invoked
        can be different on different nodes").  ``phase`` and
        ``latency_rounds`` give the implicit single phase of plain
        (non-generator) functions.
        """
        n_nodes = self.cluster.n_nodes
        counts = self._normalize_counts(vp_counts, n_nodes)
        funcs = self._normalize_funcs(func, n_nodes)
        default_decl = PhaseDecl(phase, latency_rounds=latency_rounds)

        # Static overlap certificate for this kernel (repro.analysis):
        # consulted per phase round to skip the dynamic conflict check
        # and to mark the phase's comm certified-overlappable.  Only a
        # single-kernel do can be certified — per-node functions would
        # need one frame check per distinct kernel.
        self._active_cert = None
        if (
            self.sanitize_auto
            or self.config.certified_overlap_fraction is not None
            or self.executor == "process"
            or self.snapshot == "pruned"
        ):
            distinct = {id(f) for f in funcs if f is not None}
            if len(distinct) == 1 and funcs[0] is not None:
                from repro.analysis.certify import certificate_for

                self._active_cert = certificate_for(funcs[0], args, kwargs)
        # Snapshot pruning: arm the in-place commit for the arrays this
        # kernel's liveness certificate proved safe.  Resilience
        # checkpoints and supervised replays both lean on pre-commit
        # copies existing, so either feature disables pruning outright.
        self._prune_names = frozenset()
        if (
            self.snapshot == "pruned"
            and self._active_cert is not None
            and self.resilience is None
            and self.supervision is None
        ):
            self._prune_names = self._active_cert.prunable

        # Process backend, created lazily at the first do (workers fork
        # after driver-level setup, inheriting the shm mappings warm).
        backend = self._backend
        if backend is None and self.executor == "process":
            from repro.parallel.backend import ProcessBackend

            backend = self._backend = ProcessBackend(self)

        vps_by_node: list[list[_VpRecord]] = []
        global_total = sum(counts)
        offset = 0
        for node_id in range(n_nodes):
            k = counts[node_id]
            node_vps: list[_VpRecord] = []
            f = funcs[node_id]
            genfunc = self._as_generator(f, default_decl) if f is not None else None
            for r in range(k):
                ctx = VpContext(
                    self,
                    node_id=node_id,
                    node_rank=r,
                    global_rank=offset + r,
                    node_vp_count=k,
                    global_vp_count=global_total,
                    core_id=core_of(r, k, self.cluster.cores_per_node),
                )
                ctx._coll_index = 0
                # Under the process backend the generators live in the
                # workers; the parent keeps generator-less records for
                # decl/done/cost bookkeeping.
                gen = None if backend is not None else genfunc(ctx, *args, **kwargs)
                node_vps.append(_VpRecord(ctx, gen))
            vps_by_node.append(node_vps)
            offset += k

        t_start = self.cluster.elapsed
        g0, n0 = self.stats_global_phases, self.stats_node_phases

        if backend is not None:
            backend.start_do(counts, funcs, args, kwargs, default_decl, vps_by_node)
        try:
            # Prologue round: run code before the first phase declaration.
            if backend is not None:
                backend.run_prologue(vps_by_node)
            else:
                for node_vps in vps_by_node:
                    for vp in node_vps:
                        self._advance(vp)

            # Phase rounds.
            while True:
                # One pass per node: collect activity and the (required
                # unanimous) declared phase kind together.
                active_nodes: list[int] = []
                node_kind: dict[int, str] = {}
                for node_id, node_vps in enumerate(vps_by_node):
                    kind = None
                    for vp in node_vps:
                        if vp.done:
                            continue
                        k = vp.decl.kind
                        if kind is None:
                            kind = k
                        elif k != kind:
                            kinds = {
                                v.decl.kind for v in node_vps if not v.done
                            }
                            raise PhaseUsageError(
                                f"VPs on node {node_id} declared mixed phase kinds "
                                f"{sorted(kinds)} for the same round; all VPs of a "
                                "node must agree"
                            )
                    if kind is not None:
                        active_nodes.append(node_id)
                        node_kind[node_id] = kind
                if not active_nodes:
                    break
                node_phase_nodes = [n for n in active_nodes if node_kind[n] == "node"]
                if node_phase_nodes:
                    # Nodes in node phases proceed asynchronously; nodes
                    # waiting at a global phase stall until everyone reaches
                    # it (paper section 3.3, synchronous/asynchronous modes).
                    if backend is not None:
                        backend.begin_round("node", node_phase_nodes, vps_by_node)
                    for node_id in node_phase_nodes:
                        self._run_node_phase(node_id, vps_by_node[node_id])
                else:
                    if backend is not None:
                        backend.begin_round("global", active_nodes, vps_by_node)
                    self._run_global_phase(vps_by_node, active_nodes)
        finally:
            if backend is not None:
                backend.end_do()

        return DoStats(
            vp_count=global_total,
            global_phases=self.stats_global_phases - g0,
            node_phases=self.stats_node_phases - n0,
            t_start=t_start,
            t_end=self.cluster.elapsed,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_counts(vp_counts, n_nodes: int) -> list[int]:
        # numpy integers (np.int64 and friends) are scalar VP counts
        # too — they must not fall into the per-node-sequence branch,
        # where they fail with a confusing length error.
        if isinstance(vp_counts, (int, np.integer)):
            vp_counts = int(vp_counts)
            if vp_counts < 0:
                raise ValueError(f"VP count must be non-negative, got {vp_counts}")
            return [vp_counts] * n_nodes
        counts = [int(k) for k in vp_counts]
        if len(counts) != n_nodes:
            raise ValueError(
                f"per-node VP counts must have length {n_nodes}, got {len(counts)}"
            )
        if any(k < 0 for k in counts):
            raise ValueError(f"VP counts must be non-negative, got {counts}")
        return counts

    @staticmethod
    def _normalize_funcs(func, n_nodes: int) -> list[Callable | None]:
        if callable(func):
            return [func] * n_nodes
        funcs = list(func)
        if len(funcs) != n_nodes:
            raise ValueError(
                f"per-node functions must have length {n_nodes}, got {len(funcs)}"
            )
        return funcs

    @staticmethod
    def _as_generator(func: Callable, default_decl: PhaseDecl) -> Callable:
        if inspect.isgeneratorfunction(func):
            return func

        def single_phase(ctx, *args, **kwargs):
            yield default_decl
            result = func(ctx, *args, **kwargs)
            if inspect.isgenerator(result):
                raise PhaseUsageError(
                    f"{getattr(func, '__name__', func)!r} returned a generator: "
                    "it wraps a multi-phase PPM function but is not itself a "
                    "generator function, so its phases would never run.  Use "
                    "functools.partial (or a generator function with "
                    "'yield from') instead of a plain lambda/def wrapper."
                )

        single_phase.__name__ = getattr(func, "__name__", "ppm_function")
        return single_phase

    # ------------------------------------------------------------------
    def _advance(self, vp: _VpRecord) -> None:
        """Resume one VP generator: executes the body of its current
        phase (or the prologue) up to the next phase declaration."""
        if vp.done:
            return
        tls = self._tls
        tls.cursor = vp.ctx
        try:
            decl = next(vp.gen)
        except StopIteration:
            vp.done = True
            vp.decl = None
            return
        except Exception as exc:
            raise VpProgramError(
                f"VP code raised {type(exc).__name__}: {exc}",
                node=vp.ctx.node_id,
                vp_rank=vp.ctx.node_rank,
                phase_index=vp.phase_index,
            ) from exc
        finally:
            tls.cursor = None
        if not isinstance(decl, PhaseDecl):
            raise PhaseUsageError(
                f"PPM functions must yield phase declarations "
                f"(ctx.global_phase / ctx.node_phase); got {decl!r}"
            )
        vp.decl = decl
        vp.phase_index += 1

    def _execute_phase_bodies(
        self, recorder: PhaseRecorder, vps: list[_VpRecord]
    ) -> None:
        """Run the pending phase body of every listed VP, accumulating
        per-core costs into the recorder."""
        if self._backend is not None:
            # Bodies already ran in the worker processes (begin_round);
            # replay their reports into the recorder in VP order.
            self._backend.fill_recorder(recorder, vps)
            return
        self._assign_cores(vps)
        self.phase = recorder
        try:
            if self.vp_executor == "threads":
                self._execute_threaded(recorder, vps)
            else:
                tr = recorder.tracer
                core_costs = recorder.core_costs
                # VPs arrive node-major, so the inner per-core dict is
                # fetched once per node run.  Costs still accumulate
                # one VP at a time — the float summation order is part
                # of the bitwise-identity contract.
                run_node = -1
                inner = None
                for vp in vps:
                    if vp.done:
                        continue
                    ctx = vp.ctx
                    ctx._cost = 0.0
                    ctx._coll_index = 0
                    self._advance(vp)
                    cost = ctx._cost
                    if tr is not None:
                        recorder.add_vp_cost(
                            ctx.node_id, ctx.core_id, cost, vp=ctx.global_rank
                        )
                    elif cost:
                        if ctx.node_id != run_node:
                            run_node = ctx.node_id
                            inner = core_costs[run_node]
                        core = ctx.core_id
                        inner[core] = inner.get(core, 0.0) + cost
                    vp.last_cost = cost
                    ctx._cost = 0.0
        finally:
            self.phase = None

    def _assign_cores(self, vps: list[_VpRecord]) -> None:
        """Optionally rebalance the VP->core mapping for this phase.

        With ``config.load_balancing`` the runtime uses each VP's
        measured cost from the previous phase to pack VPs onto cores
        greedily (longest processing time first) — the paper's
        "optimizations such as load balancing" enabled by processor
        virtualisation.  Deterministic: ties break on VP rank and core
        id.  Off by default (static contiguous loop chunks).
        """
        if not self.config.load_balancing:
            return
        cores = self.cluster.cores_per_node
        by_node: dict[int, list[_VpRecord]] = {}
        for vp in vps:
            if not vp.done:
                by_node.setdefault(vp.ctx.node_id, []).append(vp)
        for node_vps in by_node.values():
            assignment = lpt_core_map(
                [(vp.ctx.node_rank, vp.last_cost) for vp in node_vps], cores
            )
            if assignment is None:
                continue  # no history yet: keep the static chunks
            for vp in node_vps:
                vp.ctx.core_id = assignment[vp.ctx.node_rank]

    def _execute_threaded(self, recorder: PhaseRecorder, vps: list[_VpRecord]) -> None:
        """Run phase bodies as real threads (the paper's VPs-as-
        threads reading).  Results and times match the sequential
        engine: bodies only see the snapshot, recording is locked, and
        the rank-ordered commit makes the outcome order-independent."""
        if self._pool is None:
            import os

            self._pool = ThreadPoolExecutor(
                max_workers=max(2, min(16, os.cpu_count() or 4)),
                thread_name_prefix="ppm-vp",
            )

        def run_one(vp: _VpRecord):
            if vp.done:
                return None
            ctx = vp.ctx
            ctx._cost = 0.0
            ctx._coll_index = 0
            try:
                self._advance(vp)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                return exc
            with self._record_lock:
                recorder.add_vp_cost(
                    ctx.node_id, ctx.core_id, ctx._cost, vp=ctx.global_rank
                )
            vp.last_cost = ctx._cost
            ctx._cost = 0.0
            return None

        errors = list(self._pool.map(run_one, vps))
        for vp, err in zip(vps, errors):
            if err is not None:
                raise err

    # ------------------------------------------------------------------
    def _run_global_phase(
        self, vps_by_node: list[list[_VpRecord]], active_nodes: list[int]
    ) -> None:
        latency_rounds = max(
            vp.decl.latency_rounds
            for n in active_nodes
            for vp in vps_by_node[n]
            if not vp.done
        )
        res = self.resilience
        phase_index = self.stats_global_phases + self.stats_node_phases
        if res is not None:
            # May raise NodeCrashFault (before any body runs, so the
            # committed state stays the last phase-boundary cut) or,
            # when recovering with no checkpoint, resume at phase 0 —
            # which re-attaches the tracer, so read it afterwards.
            res.on_phase_start(phase_index, self)
        tr = self.tracer
        recorder = PhaseRecorder(
            "global", latency_rounds, tracer=tr, phase_index=phase_index
        )
        body_vps = [vp for n in active_nodes for vp in vps_by_node[n]]
        # A round is certified when every active VP sits at a yield the
        # static verifier proved conflict-free (checked on the suspended
        # frames *before* the bodies run, i.e. at this phase's decl).
        # Under the process backend the frames live in the workers, so
        # the workers checked their own shards and the backend combined
        # the votes when the round was dispatched.
        if self._backend is not None:
            certified = self._backend.round_certified(None)
        else:
            certified = (
                self._active_cert is not None
                and self._active_cert.round_certified(body_vps, "global")
            )
        if tr is not None:
            tr.phase = phase_index
            tr.emit(
                PhaseBegin(
                    phase=phase_index,
                    phase_kind="global",
                    latency_rounds=latency_rounds,
                    vps=sum(1 for vp in body_vps if not vp.done),
                    nodes=tuple(active_nodes),
                    t=min(self.cluster.node(n).clock.now for n in active_nodes),
                )
            )
        self._execute_phase_bodies(recorder, body_vps)

        # Commit: conflict check (strict mode aborts before any write
        # is visible), then writes in rank order, then collectives.
        # Under the process backend a held round resolves first —
        # zero-merge groups commit worker-side (write_ops stays empty
        # and apply_writes below no-ops), fallback groups ship their
        # operations into the recorder for the unchanged path.
        p0, b0 = self.stats_pruned_commits, self.stats_pruned_bytes
        if self._backend is not None:
            self._backend.finish_commit(recorder, None)
        if self.sanitizer is not None and not (certified and self.sanitize_auto):
            self.sanitizer.check_phase(recorder, phase_index=phase_index)
        if certified:
            self.stats_certified_phases += 1
        prune = self._prune_names
        recorder.apply_writes(
            engine=self.commit_engine, plans=self.commit_plans, prune=prune
        )
        if tr is not None and self.stats_pruned_commits > p0:
            tr.emit(
                SnapshotPruned(
                    phase=phase_index,
                    commits=self.stats_pruned_commits - p0,
                    bytes_avoided=self.stats_pruned_bytes - b0,
                )
            )
        n_contrib = recorder.resolve_collectives()
        if self._backend is not None:
            # Ship resolved reduce/scan values back with the next round
            # so worker-held handles resolve before VP code reads them.
            self._backend.harvest_collectives(recorder, None)

        cfg = self.config
        net = self.cluster.network
        traffic = aggregate_traffic(recorder, self.cluster.n_nodes, tracer=tr)

        in_cpu: dict[int, float] = {}
        comm_costs = {}
        total_msgs = 0
        total_bytes = 0
        # Owner-side per-peer message counts repeat across peers with
        # identical element/itemsize footprints (every symmetric stencil
        # exchange); memoise instead of re-deriving a single-peer
        # NodeTraffic cost per peer.
        peer_msg_cache: dict[tuple[int, int, int], int] = {}
        cost_cache = self._comm_cost_cache if tr is None and self.zero_copy_reads else None
        for node_id, nt in traffic.items():
            if cost_cache is not None:
                ck = (
                    recorder.latency_rounds,
                    tuple(
                        (p.read_elems, p.write_elems, p.shared.itemsize)
                        for p in nt.peers
                    ),
                )
                cost = cost_cache.get(ck)
                if cost is None:
                    cost = node_comm_cost(
                        net, nt, latency_rounds=recorder.latency_rounds
                    )
                    if len(cost_cache) >= 4096:
                        cost_cache.clear()
                    cost_cache[ck] = cost
            else:
                cost = node_comm_cost(
                    net, nt, latency_rounds=recorder.latency_rounds, tracer=tr
                )
            comm_costs[node_id] = cost
            total_msgs += cost.messages
            total_bytes += cost.payload_bytes
            for p in nt.peers:
                elems = p.read_elems + p.write_elems
                if elems == 0:
                    continue
                # Owner-side software: message handling plus applying
                # scattered elements into its partition.
                key = (p.read_elems, p.write_elems, p.shared.itemsize)
                msgs = peer_msg_cache.get(key)
                if msgs is None:
                    msgs = peer_msg_cache[key] = peer_owner_messages(net, p)
                in_cpu[p.owner] = in_cpu.get(p.owner, 0.0) + (
                    msgs * cfg.mpi_msg_overhead
                    + p.write_elems * cfg.ppm_commit_per_element
                )

        penalties = (
            res.message_penalties(phase_index, traffic, net)
            if res is not None
            else None
        )

        # Per-node busy time, then cluster-wide barrier.
        t_end = 0.0
        node_timings = {}
        node_t0 = {}
        for node in self.cluster:
            node_id = node.node_id
            node_t0[node_id] = node.clock.now
            compute = node_compute_time(recorder.core_costs.get(node_id, {}))
            if res is not None:
                compute *= res.straggler_factor(phase_index, node_id, self)
            nt = traffic.get(node_id)
            commit_cpu = recorder.node_write_elems.get(node_id, 0) * cfg.ppm_commit_per_element
            if nt is not None:
                commit_cpu += nt.local_write_elems * cfg.ppm_commit_per_element
            timing = compose_phase_timing(
                cfg,
                net,
                compute=compute,
                commit_cpu=commit_cpu,
                comm_cost=comm_costs.get(node_id, ZERO_COST),
                extra_comm_cpu=in_cpu.get(node_id, 0.0),
                certified=certified,
            )
            if penalties is not None:
                extra = penalties.get(node_id, 0.0)
                if extra:
                    # Retry/backoff time is serialized after the
                    # phase's regular traffic (the loss is only
                    # detected at timeout), so it is unoverlappable
                    # communication time.
                    timing = PhaseTiming(
                        compute=timing.compute,
                        commit_cpu=timing.commit_cpu,
                        comm=timing.comm + extra,
                        overlapped=timing.overlapped,
                    )
            node_timings[node_id] = timing
            t_end = max(t_end, node.clock.now + timing.busy)

        # Phase-closing synchronisation: a phase with collectives fuses
        # the reduction into its barrier tree (one sweep up, one down);
        # otherwise a plain barrier suffices.
        if recorder.collective_slots:
            t_end += net.allreduce_time(self.cluster.n_nodes, cfg.element_bytes)
        else:
            t_end += net.barrier_time(self.cluster.n_nodes)

        for node in self.cluster:
            node.clock.merge(t_end)
            for c in node.core_clocks:
                c.merge(t_end)

        self.stats_global_phases += 1
        self.profile.append(
            PhaseProfile(
                index=self.stats_global_phases + self.stats_node_phases - 1,
                kind="global",
                latency_rounds=recorder.latency_rounds,
                t_end=t_end,
                node_timings=node_timings,
            )
        )
        if tr is not None:
            tr.emit(
                PhaseCommit(
                    phase=phase_index,
                    phase_kind="global",
                    latency_rounds=recorder.latency_rounds,
                    t=min(node_t0.values()),
                    t_end=t_end,
                    messages=total_msgs,
                    nbytes=total_bytes,
                    collectives=n_contrib,
                    nodes=tuple(
                        NodeSlice(
                            node=node_id,
                            t0=node_t0[node_id],
                            compute=tm.compute,
                            commit_cpu=tm.commit_cpu,
                            comm=tm.comm,
                            overlapped=tm.overlapped,
                            arrival=node_t0[node_id] + tm.busy,
                            wait=t_end - (node_t0[node_id] + tm.busy),
                        )
                        for node_id, tm in sorted(node_timings.items())
                    ),
                )
            )
        self.cluster.trace.record(
            "ppm_global_phase",
            -1,
            t_end,
            messages=total_msgs,
            nbytes=total_bytes,
            detail=f"vps={len(body_vps)} collectives={n_contrib}",
        )
        if res is not None:
            # Checkpoint when due (its cost lands between phases), or
            # — while fast-forwarding — resume at the restored cut.
            res.after_commit(phase_index, self)

    # ------------------------------------------------------------------
    def _run_node_phase(self, node_id: int, node_vps: list[_VpRecord]) -> None:
        latency_rounds = max(
            vp.decl.latency_rounds for vp in node_vps if not vp.done
        )
        res = self.resilience
        phase_index = self.stats_global_phases + self.stats_node_phases
        if res is not None:
            res.on_phase_start(phase_index, self)
        tr = self.tracer
        recorder = PhaseRecorder(
            "node", latency_rounds, tracer=tr, phase_index=phase_index
        )
        t0 = self.cluster.node(node_id).clock.now
        if self._backend is not None:
            certified = self._backend.round_certified(node_id)
        else:
            certified = (
                self._active_cert is not None
                and self._active_cert.round_certified(node_vps, "node")
            )
        if tr is not None:
            tr.phase = phase_index
            tr.emit(
                PhaseBegin(
                    phase=phase_index,
                    phase_kind="node",
                    latency_rounds=latency_rounds,
                    vps=sum(1 for vp in node_vps if not vp.done),
                    nodes=(node_id,),
                    t=t0,
                )
            )
        self._execute_phase_bodies(recorder, node_vps)

        p0, b0 = self.stats_pruned_commits, self.stats_pruned_bytes
        if self._backend is not None:
            self._backend.finish_commit(recorder, node_id)
        if self.sanitizer is not None and not (certified and self.sanitize_auto):
            self.sanitizer.check_phase(recorder, phase_index=phase_index)
        if certified:
            self.stats_certified_phases += 1
        recorder.apply_writes(
            engine=self.commit_engine,
            plans=self.commit_plans,
            prune=self._prune_names,
        )
        if tr is not None and self.stats_pruned_commits > p0:
            tr.emit(
                SnapshotPruned(
                    phase=phase_index,
                    commits=self.stats_pruned_commits - p0,
                    bytes_avoided=self.stats_pruned_bytes - b0,
                )
            )
        n_contrib = recorder.resolve_collectives()
        if self._backend is not None:
            self._backend.harvest_collectives(recorder, node_id)

        cfg = self.config
        net = self.cluster.network
        node = self.cluster.node(node_id)

        # Global-shared *reads* are permitted in node phases; their
        # fetch traffic is charged here (writes were rejected earlier).
        traffic = aggregate_traffic(recorder, self.cluster.n_nodes, tracer=tr)
        nt = traffic.get(node_id)
        if nt is None:
            comm_cost = ZERO_COST
        elif tr is None and self.zero_copy_reads:
            cost_cache = self._comm_cost_cache
            ck = (
                recorder.latency_rounds,
                tuple(
                    (p.read_elems, p.write_elems, p.shared.itemsize)
                    for p in nt.peers
                ),
            )
            comm_cost = cost_cache.get(ck)
            if comm_cost is None:
                comm_cost = node_comm_cost(
                    net, nt, latency_rounds=recorder.latency_rounds
                )
                if len(cost_cache) >= 4096:
                    cost_cache.clear()
                cost_cache[ck] = comm_cost
        else:
            comm_cost = node_comm_cost(
                net, nt, latency_rounds=recorder.latency_rounds, tracer=tr
            )
        if nt is not None:
            peer_msg_cache: dict[tuple[int, int, int], int] = {}
            for p in nt.peers:
                # Owner-side service cost lands on the owner's clock.
                key = (p.read_elems, p.write_elems, p.shared.itemsize)
                msgs = peer_msg_cache.get(key)
                if msgs is None:
                    msgs = peer_msg_cache[key] = peer_owner_messages(net, p)
                self.cluster.node(p.owner).clock.advance(
                    msgs * cfg.mpi_msg_overhead
                )

        compute = node_compute_time(recorder.core_costs.get(node_id, {}))
        if res is not None:
            compute *= res.straggler_factor(phase_index, node_id, self)
        commit_cpu = recorder.node_write_elems.get(node_id, 0) * cfg.ppm_commit_per_element
        if nt is not None:
            commit_cpu += nt.local_write_elems * cfg.ppm_commit_per_element
        timing = compose_phase_timing(
            cfg,
            net,
            compute=compute,
            commit_cpu=commit_cpu,
            comm_cost=comm_cost,
            certified=certified,
        )
        if res is not None:
            penalties = res.message_penalties(phase_index, traffic, net)
            extra = penalties.get(node_id, 0.0) if penalties else 0.0
            if extra:
                timing = PhaseTiming(
                    compute=timing.compute,
                    commit_cpu=timing.commit_cpu,
                    comm=timing.comm + extra,
                    overlapped=timing.overlapped,
                )
        # Node-level synchronisation: a reduction tree over the node's
        # cores when the phase carried collectives, a plain barrier
        # otherwise.
        if recorder.collective_slots:
            sync = net.allreduce_time(
                self.cluster.cores_per_node, cfg.element_bytes, intra_node=True
            )
        else:
            sync = net.barrier_time(self.cluster.cores_per_node, intra_node=True)
        node.clock.advance(timing.busy + sync)
        for c in node.core_clocks:
            c.merge(node.clock.now)

        self.stats_node_phases += 1
        self.profile.append(
            PhaseProfile(
                index=self.stats_global_phases + self.stats_node_phases - 1,
                kind="node",
                latency_rounds=recorder.latency_rounds,
                t_end=node.clock.now,
                node_timings={node_id: timing},
            )
        )
        if tr is not None:
            tr.emit(
                PhaseCommit(
                    phase=phase_index,
                    phase_kind="node",
                    latency_rounds=recorder.latency_rounds,
                    t=t0,
                    t_end=node.clock.now,
                    messages=comm_cost.messages,
                    nbytes=comm_cost.payload_bytes,
                    collectives=n_contrib,
                    nodes=(
                        NodeSlice(
                            node=node_id,
                            t0=t0,
                            compute=timing.compute,
                            commit_cpu=timing.commit_cpu,
                            comm=timing.comm,
                            overlapped=timing.overlapped,
                            arrival=t0 + timing.busy,
                            wait=node.clock.now - (t0 + timing.busy),
                        ),
                    ),
                )
            )
        self.cluster.trace.record(
            "ppm_node_phase",
            node_id,
            node.clock.now,
            messages=comm_cost.messages,
            nbytes=comm_cost.payload_bytes,
        )
        if res is not None:
            res.after_commit(phase_index, self)
