"""Virtual processors and their execution context.

PPM programs are written for an unbounded number of *virtual
processors* (paper section 3: "Virtualization of processors").  Each VP
executing a PPM function receives a :class:`VpContext` carrying its
identity (the ranks the paper exposes as ``PPM_VP_node_rank`` and
``PPM_VP_global_rank``), the system variables, phase declarations and
the cost-charging / collective entry points.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.constructs import GLOBAL_PHASE, NODE_PHASE, PhaseDecl
from repro.core.errors import PhaseUsageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.collectives import CollectiveHandle
    from repro.core.runtime import PpmRuntime


class VpContext:
    """Identity and services of one virtual processor.

    Application code must not construct these; ``ppm.do`` does.
    """

    __slots__ = (
        "runtime",
        "node_id",
        "node_rank",
        "global_rank",
        "node_vp_count",
        "global_vp_count",
        "core_id",
        "_cost",
        "_coll_index",
    )

    def __init__(
        self,
        runtime: "PpmRuntime",
        *,
        node_id: int,
        node_rank: int,
        global_rank: int,
        node_vp_count: int,
        global_vp_count: int,
        core_id: int,
    ) -> None:
        self.runtime = runtime
        self.node_id = node_id
        self.node_rank = node_rank
        self.global_rank = global_rank
        self.node_vp_count = node_vp_count
        self.global_vp_count = global_vp_count
        self.core_id = core_id
        self._cost = 0.0  # simulated CPU seconds accrued this phase
        self._coll_index = 0  # collective-call matching counter

    # ------------------------------------------------------------------
    # System variables (paper section 3.1, item 5)
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """``PPM_node_count``."""
        return self.runtime.cluster.n_nodes

    @property
    def cores_per_node(self) -> int:
        """``PPM_cores_per_node``."""
        return self.runtime.cluster.cores_per_node

    # ------------------------------------------------------------------
    # Phase declarations (paper section 3.1, item 4)
    # ------------------------------------------------------------------
    @property
    def global_phase(self) -> PhaseDecl:
        """Declaration opening a cluster-level phase."""
        return GLOBAL_PHASE

    @property
    def node_phase(self) -> PhaseDecl:
        """Declaration opening a node-level phase."""
        return NODE_PHASE

    def phase(self, kind: str, *, latency_rounds: int = 1) -> PhaseDecl:
        """Phase declaration with runtime hints (see
        :class:`~repro.core.constructs.PhaseDecl`)."""
        return PhaseDecl(kind, latency_rounds=latency_rounds)

    # ------------------------------------------------------------------
    # Cost charging
    # ------------------------------------------------------------------
    def work(self, flops: float) -> None:
        """Charge ``flops`` floating-point operations to this VP."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        self._cost += flops * self.runtime._flop_time

    def mem_work(self, accesses: float) -> None:
        """Charge ``accesses`` irregular local memory accesses."""
        if accesses < 0:
            raise ValueError(f"accesses must be non-negative, got {accesses}")
        self._cost += accesses * self.runtime._mem_time

    # ------------------------------------------------------------------
    # Phase collectives (paper section 3.1, item 6: utility functions)
    # ------------------------------------------------------------------
    def reduce(self, value: object, op: str | Callable = "sum") -> "CollectiveHandle":
        """Contribute ``value`` to a reduction over the VPs of the
        current phase — cluster-wide in a global phase, this node's
        VPs only in a node phase.  The combined result becomes
        available on the returned handle after the phase commits (read
        it in a later phase or after ``ppm.do`` returns)."""
        return self.runtime.record_collective(self, "reduce", value, op)

    def scan(self, value: object, op: str | Callable = "sum") -> "CollectiveHandle":
        """Inclusive parallel-prefix over the phase's VPs in
        global-rank order (same scoping as :meth:`reduce`); this VP's
        prefix appears on the handle after commit."""
        return self.runtime.record_collective(self, "scan", value, op)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VpContext(node={self.node_id}, node_rank={self.node_rank}, "
            f"global_rank={self.global_rank})"
        )


def core_of(local_rank: int, vp_count: int, cores: int) -> int:
    """Core hosting VP ``local_rank`` of ``vp_count`` on a node with
    ``cores`` cores.

    The runtime converts VP work into loops over contiguous chunks
    (paper section 3.4: "the PPM compiler converts the work of multiple
    virtual processors into loops ... which can then be assigned to the
    processor cores"), so VPs map to cores in contiguous blocks.
    """
    if not 0 <= local_rank < vp_count:
        raise PhaseUsageError(
            f"VP local rank {local_rank} out of range [0, {vp_count})"
        )
    if cores < 1:
        raise PhaseUsageError(f"cores must be >= 1, got {cores}")
    return min(local_rank * cores // vp_count, cores - 1)
