"""Commit-time traffic aggregation — the runtime's bundling engine.

The paper's central performance claim is that "the PPM runtime library
is capable of bundling up fine-grained remote shared data accesses into
coarse-grained packages in order to reduce overall communication
overhead" (section 3.3).  This module implements that aggregation: at a
phase commit, every node's recorded fine-grained reads and writes are
deduplicated (the runtime keeps one copy per node, like a software
cache) and split by owning node, producing per-(reader, owner) element
counts that the network model turns into bundled message costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.phase import PhaseRecorder
from repro.core.shared import GlobalShared, RowSpec
from repro.obs.events import BundleFlushed


@dataclass
class PeerTraffic:
    """Unique elements one node exchanges with one owner for one
    shared variable during one phase."""

    shared: GlobalShared
    owner: int
    read_elems: int = 0
    write_elems: int = 0


@dataclass
class NodeTraffic:
    """One node's commit-time traffic summary."""

    node_id: int
    peers: list[PeerTraffic] = field(default_factory=list)
    local_read_elems: int = 0
    local_write_elems: int = 0

    @property
    def remote_read_elems(self) -> int:
        return sum(p.read_elems for p in self.peers)

    @property
    def remote_write_elems(self) -> int:
        return sum(p.write_elems for p in self.peers)


def _unique_rows(specs: list[RowSpec]) -> np.ndarray:
    """Deduplicated union of the rows in ``specs``."""
    if not specs:
        return np.empty(0, dtype=np.int64)
    if len(specs) == 1:
        rows = specs[0].materialize()
        return np.unique(rows)
    return np.unique(np.concatenate([s.materialize() for s in specs]))


def _owner_counts(shared: GlobalShared, rows: np.ndarray, n_nodes: int) -> np.ndarray:
    """Unique-element count per owning node for the given rows."""
    if rows.size == 0:
        return np.zeros(n_nodes, dtype=np.int64)
    owners = shared.owner_of(rows)
    return np.bincount(owners, minlength=n_nodes) * shared._trailing


def _spec_owner_counts(
    shared: GlobalShared, specs: list[RowSpec], n_nodes: int
) -> np.ndarray:
    """Unique-element count per owning node for the union of ``specs``.

    When every spec is a plain contiguous range — the overwhelmingly
    common case for block-partitioned VP loops — the union is computed
    as a merged interval set clipped against the block-partition
    boundaries, with nothing materialised.  Each merged interval's
    per-owner overlap length equals the number of unique rows
    ``np.unique`` + ``bincount`` would attribute to that owner, so the
    counts are identical to the materialising path (which remains the
    fallback for strided and fancy-index specs).
    """
    if not all(s.is_contiguous for s in specs):
        return _owner_counts(shared, _unique_rows(specs), n_nodes)
    ivs = sorted((s.start, s.stop) for s in specs if s.stop > s.start)
    counts = np.zeros(n_nodes, dtype=np.int64)
    if not ivs:
        return counts
    starts = shared._starts
    merged: list[tuple[int, int]] = []
    cur_lo, cur_hi = ivs[0]
    for lo, hi in ivs[1:]:
        if lo <= cur_hi:
            cur_hi = max(cur_hi, hi)
        else:
            merged.append((cur_lo, cur_hi))
            cur_lo, cur_hi = lo, hi
    merged.append((cur_lo, cur_hi))
    for lo, hi in merged:
        # Owners of the first and last row of the interval (the same
        # side="right" rule as GlobalShared.owner_of, so zero-width
        # partitions resolve identically).
        o0 = int(np.searchsorted(starts, lo, side="right")) - 1
        o1 = int(np.searchsorted(starts, hi - 1, side="right")) - 1
        for o in range(o0, o1 + 1):
            a = max(lo, int(starts[o]))
            b = min(hi, int(starts[o + 1]))
            counts[o] += b - a
    return counts * shared._trailing


def _owner_elem_pairs(
    shared: GlobalShared, specs: list[RowSpec], n_nodes: int, exact_elems: int
) -> tuple[tuple[int, int], ...]:
    """``(owner, elems)`` pairs for the union of ``specs``, memoised.

    ``elems`` is the owner's unique-row count scaled by the access
    density (tuple indices may address only part of each row; the
    exact per-access element totals tell us by how much), floored at
    one element per touched owner — exactly what
    :func:`aggregate_traffic` previously computed inline per phase.

    On the fast hot path, access records (and hence their
    :class:`RowSpec` objects) are cached per index expression, so an
    iterative solver presents the *same* spec objects phase after
    phase; the whole owner split is then a dictionary hit.  Keyed by
    spec object identities plus the exact element total; the memo
    value pins the spec objects, so a key's ids can never be recycled
    while the entry lives.  Legacy mode builds fresh specs every
    access and bypasses the memo entirely.
    """
    fast = shared.runtime.zero_copy_reads
    if fast:
        cache = shared._counts_cache
        key = (tuple(map(id, specs)), exact_elems)
        hit = cache.get(key)
        if hit is not None:
            return hit[1]
    counts = _spec_owner_counts(shared, specs, n_nodes)
    raw = sum(s.count for s in specs) * shared._trailing
    scale = 1.0 if raw <= 0 else min(1.0, exact_elems / raw)
    pairs = tuple(
        (int(o), max(1, int(round(counts[o] * scale))))
        for o in np.nonzero(counts)[0]
    )
    if fast:
        if len(cache) >= 4096:
            cache.clear()
        cache[key] = (list(specs), pairs)
    return pairs


def aggregate_traffic(
    recorder: PhaseRecorder, n_nodes: int, *, tracer=None
) -> dict[int, NodeTraffic]:
    """Aggregate a phase's recorded global-shared accesses.

    Returns a :class:`NodeTraffic` for every node that touched a
    global shared variable, with per-owner deduplicated element counts
    for reads and writes separately.  When ``tracer`` is set, one
    :class:`~repro.obs.events.BundleFlushed` event is emitted per
    (node, variable, direction) aggregation — the raw-vs-deduplicated
    numbers behind the runtime's bundling claim.
    """
    traffic: dict[int, NodeTraffic] = {}

    def entry(node_id: int) -> NodeTraffic:
        if node_id not in traffic:
            traffic[node_id] = NodeTraffic(node_id)
        return traffic[node_id]

    peer_map: dict[tuple[int, int, int], PeerTraffic] = {}

    def peer_entry(nt: NodeTraffic, shared: GlobalShared, owner: int) -> PeerTraffic:
        key = (nt.node_id, id(shared), owner)
        p = peer_map.get(key)
        if p is None:
            p = peer_map[key] = PeerTraffic(shared=shared, owner=owner)
            nt.peers.append(p)
        return p

    for (node_id, shared), (specs, exact_elems) in recorder.global_read_recs.items():
        nt = entry(node_id)
        pairs = _owner_elem_pairs(shared, specs, n_nodes, exact_elems)
        local = remote = peers = 0
        for owner, elems in pairs:
            if owner == node_id:
                nt.local_read_elems += elems
                local += elems
            else:
                peer_entry(nt, shared, owner).read_elems += elems
                remote += elems
                peers += 1
        if tracer is not None:
            tracer.emit(
                BundleFlushed(
                    phase=tracer.phase,
                    node=node_id,
                    variable=shared.name,
                    direction="read",
                    raw_ops=len(specs),
                    raw_elems=exact_elems,
                    unique_elems=local + remote,
                    local_elems=local,
                    remote_elems=remote,
                    peers=peers,
                )
            )

    for (node_id, shared), (specs, exact_elems) in recorder.global_write_recs.items():
        nt = entry(node_id)
        pairs = _owner_elem_pairs(shared, specs, n_nodes, exact_elems)
        local = remote = peers = 0
        for owner, elems in pairs:
            if owner == node_id:
                nt.local_write_elems += elems
                local += elems
            else:
                peer_entry(nt, shared, owner).write_elems += elems
                remote += elems
                peers += 1
        if tracer is not None:
            tracer.emit(
                BundleFlushed(
                    phase=tracer.phase,
                    node=node_id,
                    variable=shared.name,
                    direction="write",
                    raw_ops=len(specs),
                    raw_elems=exact_elems,
                    unique_elems=local + remote,
                    local_elems=local,
                    remote_elems=remote,
                    peers=peers,
                )
            )

    return traffic
