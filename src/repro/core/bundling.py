"""Commit-time traffic aggregation — the runtime's bundling engine.

The paper's central performance claim is that "the PPM runtime library
is capable of bundling up fine-grained remote shared data accesses into
coarse-grained packages in order to reduce overall communication
overhead" (section 3.3).  This module implements that aggregation: at a
phase commit, every node's recorded fine-grained reads and writes are
deduplicated (the runtime keeps one copy per node, like a software
cache) and split by owning node, producing per-(reader, owner) element
counts that the network model turns into bundled message costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.phase import PhaseRecorder
from repro.core.shared import GlobalShared, RowSpec
from repro.obs.events import BundleFlushed


@dataclass
class PeerTraffic:
    """Unique elements one node exchanges with one owner for one
    shared variable during one phase."""

    shared: GlobalShared
    owner: int
    read_elems: int = 0
    write_elems: int = 0


@dataclass
class NodeTraffic:
    """One node's commit-time traffic summary."""

    node_id: int
    peers: list[PeerTraffic] = field(default_factory=list)
    local_read_elems: int = 0
    local_write_elems: int = 0

    @property
    def remote_read_elems(self) -> int:
        return sum(p.read_elems for p in self.peers)

    @property
    def remote_write_elems(self) -> int:
        return sum(p.write_elems for p in self.peers)


def _unique_rows(specs: list[RowSpec]) -> np.ndarray:
    """Deduplicated union of the rows in ``specs``."""
    if not specs:
        return np.empty(0, dtype=np.int64)
    if len(specs) == 1:
        rows = specs[0].materialize()
        return np.unique(rows)
    return np.unique(np.concatenate([s.materialize() for s in specs]))


def _owner_counts(shared: GlobalShared, rows: np.ndarray, n_nodes: int) -> np.ndarray:
    """Unique-element count per owning node for the given rows."""
    if rows.size == 0:
        return np.zeros(n_nodes, dtype=np.int64)
    owners = shared.owner_of(rows)
    return np.bincount(owners, minlength=n_nodes) * shared._trailing


def aggregate_traffic(
    recorder: PhaseRecorder, n_nodes: int, *, tracer=None
) -> dict[int, NodeTraffic]:
    """Aggregate a phase's recorded global-shared accesses.

    Returns a :class:`NodeTraffic` for every node that touched a
    global shared variable, with per-owner deduplicated element counts
    for reads and writes separately.  When ``tracer`` is set, one
    :class:`~repro.obs.events.BundleFlushed` event is emitted per
    (node, variable, direction) aggregation — the raw-vs-deduplicated
    numbers behind the runtime's bundling claim.
    """
    traffic: dict[int, NodeTraffic] = {}

    def entry(node_id: int) -> NodeTraffic:
        if node_id not in traffic:
            traffic[node_id] = NodeTraffic(node_id)
        return traffic[node_id]

    def peer_entry(nt: NodeTraffic, shared: GlobalShared, owner: int) -> PeerTraffic:
        for p in nt.peers:
            if p.shared is shared and p.owner == owner:
                return p
        p = PeerTraffic(shared=shared, owner=owner)
        nt.peers.append(p)
        return p

    def density(specs: list[RowSpec], shared: GlobalShared, exact_elems: int) -> float:
        """Fraction of each touched row actually moved: tuple indices
        may address only part of a row, and the exact per-access
        element counts tell us by how much."""
        raw = sum(s.count for s in specs) * shared._trailing
        if raw <= 0:
            return 1.0
        return min(1.0, exact_elems / raw)

    for node_id, shared_map in recorder.global_reads.items():
        nt = entry(node_id)
        for shared, specs in shared_map.items():
            counts = _owner_counts(shared, _unique_rows(specs), n_nodes)
            scale = density(specs, shared, recorder.global_read_elems[node_id][shared])
            local = remote = peers = 0
            for owner in np.nonzero(counts)[0]:
                owner = int(owner)
                elems = max(1, int(round(counts[owner] * scale)))
                if owner == node_id:
                    nt.local_read_elems += elems
                    local += elems
                else:
                    peer_entry(nt, shared, owner).read_elems += elems
                    remote += elems
                    peers += 1
            if tracer is not None:
                tracer.emit(
                    BundleFlushed(
                        phase=tracer.phase,
                        node=node_id,
                        variable=shared.name,
                        direction="read",
                        raw_ops=len(specs),
                        raw_elems=recorder.global_read_elems[node_id][shared],
                        unique_elems=local + remote,
                        local_elems=local,
                        remote_elems=remote,
                        peers=peers,
                    )
                )

    for node_id, shared_map in recorder.global_writes.items():
        nt = entry(node_id)
        for shared, specs in shared_map.items():
            counts = _owner_counts(shared, _unique_rows(specs), n_nodes)
            scale = density(specs, shared, recorder.global_write_elems[node_id][shared])
            local = remote = peers = 0
            for owner in np.nonzero(counts)[0]:
                owner = int(owner)
                elems = max(1, int(round(counts[owner] * scale)))
                if owner == node_id:
                    nt.local_write_elems += elems
                    local += elems
                else:
                    peer_entry(nt, shared, owner).write_elems += elems
                    remote += elems
                    peers += 1
            if tracer is not None:
                tracer.emit(
                    BundleFlushed(
                        phase=tracer.phase,
                        node=node_id,
                        variable=shared.name,
                        direction="write",
                        raw_ops=len(specs),
                        raw_elems=recorder.global_write_elems[node_id][shared],
                        unique_elems=local + remote,
                        local_elems=local,
                        remote_elems=remote,
                        peers=peers,
                    )
                )

    return traffic
