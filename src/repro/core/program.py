"""Driver-level PPM API: the program object and ``run_ppm``.

A PPM application is a *driver* function receiving a
:class:`PpmProgram`::

    def main(ppm):
        A = ppm.global_shared("A", 1000)
        out = ppm.node_shared("out", 10, dtype=np.int64)
        ppm.do(10, kernel, A, out)        # PPM_do(10) kernel(A, out)
        return out.instance(0).copy()

    ppm, result = run_ppm(main, Cluster(franklin(n_nodes=4)))

Driver code runs once (conceptually the replicated SPMD setup that
every node executes identically); it may access shared variables
directly — such accesses apply immediately and are not timed, mirroring
untimed setup in the paper's experiments.  All timed parallel execution
happens inside ``ppm.do``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.errors import PpmError
from repro.core.runtime import DoStats, PpmRuntime
from repro.core.shared import GlobalShared, NodeShared
from repro.machine.cluster import Cluster
from repro.machine.trace import Trace
from repro.obs.events import PhaseTrace


@dataclass(frozen=True)
class RunSummary:
    """Execution statistics of a PPM run: phase counts, bundled
    communication volume and simulated makespan."""

    global_phases: int
    node_phases: int
    messages: int
    nbytes: int
    elapsed: float

    def __str__(self) -> str:
        return (
            f"{self.global_phases} global / {self.node_phases} node phases, "
            f"{self.messages} bundled messages, {self.nbytes} bytes, "
            f"{self.elapsed * 1e3:.3f} ms simulated"
        )


class PpmProgram:
    """Facade over the runtime, exposing the paper's programming
    environment: shared-variable declaration, ``PPM_do``, and the
    system variables."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        vp_executor: str = "sequential",
        sanitize: str | bool | None = None,
        trace: "PhaseTrace | bool | None" = None,
        hot_path: str = "fast",
        resilience=None,
        executor: str = "inline",
        workers: int | None = None,
        zero_merge: bool = True,
        supervision=None,
        supervision_state=None,
        snapshot: str = "full",
    ) -> None:
        if trace in (None, False):
            tracer = None
        elif trace is True or trace == "on":
            tracer = PhaseTrace()
        elif isinstance(trace, PhaseTrace):
            tracer = trace
        else:
            raise ValueError(
                f"trace must be None, True, 'on' or a PhaseTrace, got {trace!r}"
            )
        self.runtime = PpmRuntime(
            cluster,
            vp_executor=vp_executor,
            sanitize=sanitize,
            trace=tracer,
            hot_path=hot_path,
            resilience=resilience,
            executor=executor,
            workers=workers,
            zero_merge=zero_merge,
            supervision=supervision,
            supervision_state=supervision_state,
            snapshot=snapshot,
        )
        self.cluster = cluster

    def close(self) -> None:
        """Release runtime resources (the VP thread pool, if any)."""
        self.runtime.close()

    def __enter__(self) -> "PpmProgram":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- system variables ----------------------------------------------
    @property
    def node_count(self) -> int:
        """``PPM_node_count``."""
        return self.cluster.n_nodes

    @property
    def cores_per_node(self) -> int:
        """``PPM_cores_per_node``."""
        return self.cluster.cores_per_node

    @property
    def config(self):
        return self.cluster.config

    # -- shared-variable declaration -------------------------------------
    def global_shared(
        self, name: str, shape, dtype=np.float64, fill: float | int | None = 0
    ) -> GlobalShared:
        """Declare a ``PPM_global_shared`` array (also the dynamic
        allocation utility of paper section 3.1, item 6)."""
        handle = GlobalShared(self.runtime, name, shape, dtype, fill)
        self.runtime.shared_registry[name] = handle
        return handle

    def node_shared(
        self, name: str, shape, dtype=np.float64, fill: float | int | None = 0
    ) -> NodeShared:
        """Declare a ``PPM_node_shared`` array (one instance per node)."""
        handle = NodeShared(self.runtime, name, shape, dtype, fill)
        self.runtime.shared_registry[name] = handle
        return handle

    # -- execution --------------------------------------------------------
    def do(
        self,
        vp_counts: int | list[int],
        func: Callable | list[Callable],
        *args: object,
        phase: str = "global",
        latency_rounds: int = 1,
        **kwargs: object,
    ) -> DoStats:
        """``PPM_do(K) func(args)`` — see
        :meth:`repro.core.runtime.PpmRuntime.do`."""
        return self.runtime.do(
            vp_counts,
            func,
            *args,
            phase=phase,
            latency_rounds=latency_rounds,
            **kwargs,
        )

    # -- timing -------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Simulated seconds elapsed (maximum node clock)."""
        return self.cluster.elapsed

    @property
    def trace(self) -> Trace:
        """The cluster's event trace."""
        return self.cluster.trace

    @property
    def tracer(self):
        """The structured :class:`~repro.obs.events.PhaseTrace` attached
        via ``trace=...`` (``None`` when tracing is off)."""
        return self.runtime.tracer

    def report(self):
        """Aggregate the attached tracer's events into a
        :class:`~repro.obs.metrics.RunReport` (per-phase work, traffic,
        overlap and barrier-skew metrics)."""
        if self.runtime.tracer is None:
            raise PpmError(
                "no phase trace attached; run with trace=True "
                "(or pass a PhaseTrace) to collect a report"
            )
        from repro.obs.metrics import RunReport

        return RunReport.from_trace(self.runtime.tracer)

    @property
    def profile(self) -> list:
        """Per-phase timing breakdowns
        (:class:`~repro.core.runtime.PhaseProfile` entries)."""
        return self.runtime.profile

    @property
    def diagnostics(self) -> list:
        """Phase-conflict sanitizer findings
        (:class:`~repro.analysis.diagnostics.Diagnostic` entries;
        empty unless the program was built with ``sanitize=...``)."""
        return self.runtime.diagnostics

    def reset_clocks(self) -> None:
        """Zero all clocks (to exclude setup from a measurement)."""
        self.cluster.reset_clocks()

    def summary(self) -> "RunSummary":
        """Aggregate execution statistics of everything run so far."""
        return RunSummary(
            global_phases=self.runtime.stats_global_phases,
            node_phases=self.runtime.stats_node_phases,
            messages=self.trace.total_messages("ppm_global_phase")
            + self.trace.total_messages("ppm_node_phase"),
            nbytes=self.trace.total_bytes("ppm_global_phase")
            + self.trace.total_bytes("ppm_node_phase"),
            elapsed=self.elapsed,
        )


def run_ppm(
    main: Callable,
    cluster: Cluster,
    *args: object,
    vp_executor: str = "sequential",
    sanitize: str | bool | None = None,
    trace: "PhaseTrace | bool | None" = None,
    hot_path: str = "fast",
    faults=None,
    checkpoint_every: int | None = None,
    resilience=None,
    executor: str = "inline",
    workers: int | None = None,
    zero_merge: bool = True,
    supervision=None,
    snapshot: str = "full",
    **kwargs: object,
):
    """Run a PPM application.

    Parameters
    ----------
    main:
        Driver function, called as ``main(ppm, *args, **kwargs)``.
    cluster:
        The simulated machine.
    vp_executor:
        ``"sequential"`` (default) or ``"threads"`` — run VP phase
        bodies as real threads (identical results and simulated
        times; see :class:`~repro.core.runtime.PpmRuntime`).
    sanitize:
        ``None`` (default, off), ``"warn"``/``True`` (record
        phase-conflict diagnostics on ``ppm.diagnostics``),
        ``"strict"`` (raise
        :class:`~repro.core.errors.PhaseConflictError` before the
        offending phase commits) or ``"auto"`` — strict, but phases
        carrying a static conflict-freedom certificate from the
        :mod:`repro.analysis.dataflow` verifier skip the dynamic
        per-phase check entirely (committed arrays stay bitwise
        identical to ``"strict"``; see docs/ANALYSIS.md).
    trace:
        ``None`` (default, off), ``True``/``"on"`` (attach a fresh
        :class:`~repro.obs.events.PhaseTrace`) or an existing
        ``PhaseTrace`` instance.  With tracing on, structured phase
        events accumulate on ``ppm.tracer`` and ``ppm.report()``
        aggregates them into a
        :class:`~repro.obs.metrics.RunReport`.  Tracing never changes
        simulated results or times.
    hot_path:
        ``"fast"`` (default) — zero-copy snapshot reads, vectorized
        commit, lock elision in the sequential engine; or ``"legacy"``
        — copy-on-read and one-op-at-a-time commit replay (reference
        semantics).  Results and simulated times are bitwise identical
        either way; see :class:`~repro.core.runtime.PpmRuntime`.
    faults:
        ``None`` (default) or a
        :class:`~repro.resilience.faults.FaultPlan` — a deterministic,
        seeded schedule of message drops/corruption/delays/duplicates,
        node crashes and stragglers.  Injected faults cost simulated
        time; committed results stay bitwise-identical to a fault-free
        run (docs/RESILIENCE.md).
    checkpoint_every:
        ``None`` (default, off) or an ``int >= 1`` — snapshot all
        shared instances plus the simulated clock every that many
        phases; an injected crash rolls back to the last checkpoint
        instead of restarting from scratch.
    resilience:
        Optional
        :class:`~repro.resilience.manager.ResiliencePolicy` with the
        retry/timeout/backoff schedule and checkpoint/recovery cost
        knobs (defaults apply when ``faults``/``checkpoint_every`` are
        given without it).

    executor:
        ``"inline"`` (default) — phase bodies run in this process,
        bitwise-identical to every release before the process backend
        existed; or ``"process"`` — phase bodies run on real cores in
        a pool of worker processes mapping the shared arrays through
        :mod:`multiprocessing.shared_memory` (committed arrays and
        simulated times stay bitwise-identical; see docs/PARALLEL.md).
        Requires a picklable kernel and arguments
        (:class:`~repro.core.errors.ParallelConfigError` ``PPM501``)
        and cannot combine with ``vp_executor="threads"``
        (``PPM503``).
    workers:
        Worker process count for ``executor="process"`` (default:
        :func:`repro.parallel.default_workers`, the CPU count clamped
        to [2, 8]).  Ignored under the inline executor.
    zero_merge:
        ``True`` (default): under ``executor="process"``, phase rounds
        whose kernel carries a static conflict-freedom certificate
        commit worker-side, in place, into the shared-memory segments
        — the reply shrinks to a fixed-size digest and the parent
        ships no operation stream at all.  ``False`` forces every
        round through the record-shipping replay path (results are
        bitwise-identical either way; see docs/PARALLEL.md).  Ignored
        under the inline executor.
    supervision:
        ``None`` (default) or a
        :class:`~repro.parallel.supervisor.SupervisionPolicy` —
        fault-tolerant worker pool under ``executor="process"``: a
        crashed, hung or corrupted worker is detected at the phase-
        round boundary, respawned, and its shard's round history
        replayed, with committed arrays, simulated times and traces
        staying bitwise-identical to a fault-free run.  When the
        respawn budget runs out the run *degrades* (restarts with
        fewer workers or falls back to ``executor="inline"``) instead
        of crashing (docs/PARALLEL.md).  Requires
        ``executor="process"``
        (:class:`~repro.core.errors.ParallelConfigError` ``PPM602``);
        without it a worker death raises
        :class:`~repro.core.errors.WorkerDeathError` (``PPM603``).
    snapshot:
        ``"full"`` (default) — every phase commit with outstanding
        snapshot views pays copy-on-commit; or ``"pruned"`` — shared
        arrays whose liveness certificate
        (:mod:`repro.analysis.liveness`) proves every view dies inside
        its own phase segment commit *in place*, skipping the copy
        (and, under ``executor="process"``, the shared-memory segment
        swap).  Committed arrays and simulated times stay
        bitwise-identical; the skipped copies surface as
        :class:`~repro.obs.events.SnapshotPruned` events and the
        report's snapshot-pruning summary.  Kernels without a
        certificate — and all runs with ``resilience``/``faults`` or
        ``supervision`` configured — silently keep the full snapshot
        protocol (pruning is an optimization, never a semantics
        change; see docs/ANALYSIS.md).

    With ``faults``, ``checkpoint_every`` and ``resilience`` all
    ``None`` (the default), this takes exactly the pre-resilience
    fast path — no per-phase hooks, no overhead.

    Returns
    -------
    (PpmProgram, object)
        The program object (for ``elapsed``, ``trace``, shared
        registry) and ``main``'s return value.
    """
    if supervision is None:
        return _run_once(
            main, cluster, args, kwargs,
            vp_executor=vp_executor, sanitize=sanitize, trace=trace,
            hot_path=hot_path, faults=faults,
            checkpoint_every=checkpoint_every, resilience=resilience,
            executor=executor, workers=workers, zero_merge=zero_merge,
            supervision=None, supervision_state=None, snapshot=snapshot,
        )

    # Supervised run: the degradation loop.  A _PoolDegradation escape
    # (respawn budget exhausted) restarts the whole driver from scratch
    # in a weaker configuration — fewer workers, ultimately the inline
    # engine — rather than surfacing an error.  The restart is sound
    # for the same reason resilience incarnations are: driver + kernel
    # re-execute deterministically, and clocks/node memory reset so the
    # final simulated times match an untroubled run of the final
    # configuration.
    from repro.obs.events import PoolDegraded
    from repro.parallel.supervisor import SupervisionState, _PoolDegradation

    # Resolve the tracer once so every restart (and every resilience
    # incarnation) appends to the same PhaseTrace.
    if trace is True or trace == "on":
        trace = PhaseTrace()
    state = SupervisionState()
    while True:
        try:
            return _run_once(
                main, cluster, args, kwargs,
                vp_executor=vp_executor, sanitize=sanitize, trace=trace,
                hot_path=hot_path, faults=faults,
                checkpoint_every=checkpoint_every, resilience=resilience,
                executor=executor, workers=workers, zero_merge=zero_merge,
                supervision=supervision, supervision_state=state,
                snapshot=snapshot,
            )
        except _PoolDegradation as deg:
            state.degradations += 1
            if deg.mode == "shrink" and deg.workers_from - 1 >= 1:
                workers = deg.workers_from - 1
                workers_to = workers
            else:
                executor = "inline"
                supervision = None
                workers_to = 0
            if isinstance(trace, PhaseTrace):
                trace.emit(
                    PoolDegraded(
                        phase=-1,
                        mode=deg.mode,
                        workers_from=deg.workers_from,
                        workers_to=workers_to,
                    )
                )
            cluster.reset_clocks()
            for node in cluster:
                node.memory.clear()
            state.publish()


def _run_once(
    main, cluster, args, kwargs, *,
    vp_executor, sanitize, trace, hot_path, faults, checkpoint_every,
    resilience, executor, workers, zero_merge, supervision,
    supervision_state, snapshot,
):
    """One complete driver execution (one pool configuration); the
    body ``run_ppm`` wraps in its supervised degradation loop."""
    if faults is None and checkpoint_every is None and resilience is None:
        ppm = PpmProgram(
            cluster,
            vp_executor=vp_executor,
            sanitize=sanitize,
            trace=trace,
            hot_path=hot_path,
            executor=executor,
            workers=workers,
            zero_merge=zero_merge,
            supervision=supervision,
            supervision_state=supervision_state,
            snapshot=snapshot,
        )
        try:
            result = main(ppm, *args, **kwargs)
        finally:
            ppm.close()
        return ppm, result

    # Deferred import: repro.core must stay importable without the
    # resilience package being touched on the default path.
    from repro.core.errors import NodeCrashFault, ResilienceError
    from repro.resilience.manager import ResilienceManager, ResiliencePolicy

    if resilience is not None and not isinstance(resilience, ResiliencePolicy):
        raise ValueError(
            f"resilience must be a ResiliencePolicy or None, got {resilience!r}"
        )
    # Resolve the tracer once so every incarnation appends to the same
    # PhaseTrace (a crashed incarnation's events are part of the run).
    if trace is True or trace == "on":
        trace = PhaseTrace()
    manager = ResilienceManager(
        cluster,
        plan=faults,
        checkpoint_every=checkpoint_every,
        policy=resilience,
    )
    manager.tracer = trace if isinstance(trace, PhaseTrace) else None
    for _ in range(manager.policy.max_incarnations):
        ppm = PpmProgram(
            cluster,
            vp_executor=vp_executor,
            sanitize=sanitize,
            trace=trace,
            hot_path=hot_path,
            resilience=manager,
            executor=executor,
            workers=workers,
            zero_merge=zero_merge,
            supervision=supervision,
            supervision_state=supervision_state,
            snapshot=snapshot,
        )
        manager.begin_incarnation(ppm.runtime)
        try:
            result = main(ppm, *args, **kwargs)
        except NodeCrashFault as crash:
            # Plan the rollback (cut selection, detection + restore
            # cost, memory release) and re-execute the driver.
            manager.handle_crash(crash, ppm.runtime)
        else:
            return ppm, result
        finally:
            ppm.close()
    raise ResilienceError(
        f"run did not complete within {manager.policy.max_incarnations} "
        "incarnations (more planned crashes than max_incarnations allows?)"
    )
