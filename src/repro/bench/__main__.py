"""Regenerate every experiment from the command line.

Usage::

    python -m repro.bench            # everything (figures, table, ablations)
    python -m repro.bench fig1 fig2  # a subset
    python -m repro.bench --list     # show available experiment names

Each experiment prints its table and writes it under ``bench_results/``
(same outputs as ``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.bench.analyzer import analyzer_cost
from repro.bench.codesize import table1_codesize
from repro.bench.figures import (
    ablation_bundling,
    ablation_loadbalance,
    ext_bfs,
    ext_multigrid,
    ext_trsv,
    ablation_manycore,
    ablation_overlap,
    ablation_smartmap,
    fig1_cg,
    fig2_matgen,
    fig3_barneshut,
)
from repro.bench.obs_traffic import obs_cg_traffic
from repro.bench.report import render_chart, save_result
from repro.bench.resilience import bench_resilience
from repro.bench.wallclock import wallclock

EXPERIMENTS: dict[str, Callable] = {
    "fig1": fig1_cg,
    "fig2": fig2_matgen,
    "fig3": fig3_barneshut,
    "table1": table1_codesize,
    "manycore": ablation_manycore,
    "bundling": ablation_bundling,
    "overlap": ablation_overlap,
    "smartmap": ablation_smartmap,
    "loadbalance": ablation_loadbalance,
    "ext_bfs": ext_bfs,
    "ext_trsv": ext_trsv,
    "ext_multigrid": ext_multigrid,
    "obs_cg": obs_cg_traffic,
    "wallclock": wallclock,
    "resilience": bench_resilience,
    "analyzer": analyzer_cost,
}


#: Experiments with their own CLI (``main(argv)``): extra flags on the
#: ``python -m repro.bench`` command line are forwarded to them instead
#: of being silently dropped.
CLI_EXPERIMENTS: dict[str, Callable[[list], int]] = {}


def _wallclock_cli(argv: list) -> int:
    from repro.bench import wallclock as wallclock_module

    return wallclock_module.main(argv)


def _resilience_cli(argv: list) -> int:
    from repro.bench import resilience as resilience_module

    return resilience_module.main(argv)


def _analyzer_cli(argv: list) -> int:
    from repro.bench import analyzer as analyzer_module

    return analyzer_module.main(argv)


CLI_EXPERIMENTS["wallclock"] = _wallclock_cli
CLI_EXPERIMENTS["resilience"] = _resilience_cli
CLI_EXPERIMENTS["analyzer"] = _analyzer_cli


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for name in EXPERIMENTS:
            print(name)
        return 0
    # An experiment with its own CLI consumes everything after its
    # name (e.g. ``wallclock --small --executor process --check``).
    if argv and argv[0] in CLI_EXPERIMENTS and len(argv) > 1:
        return CLI_EXPERIMENTS[argv[0]](argv[1:])
    flags = [a for a in argv if a.startswith("-")]
    if flags:
        flag_aware = ", ".join(CLI_EXPERIMENTS)
        print(
            f"flags {' '.join(flags)} are only understood when they "
            f"follow a flag-aware experiment name ({flag_aware}), e.g. "
            "`python -m repro.bench wallclock --small`",
            file=sys.stderr,
        )
        return 2
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"running {name} ...", flush=True)
        result = EXPERIMENTS[name]()
        print(save_result(result))
        chart = render_chart(result)
        if chart:
            print()
            print(chart)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
