"""Regenerate every experiment from the command line.

Usage::

    python -m repro.bench            # everything (figures, table, ablations)
    python -m repro.bench fig1 fig2  # a subset
    python -m repro.bench --list     # show available experiment names

Each experiment prints its table and writes it under ``bench_results/``
(same outputs as ``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.bench.analyzer import analyzer_cost
from repro.bench.codesize import table1_codesize
from repro.bench.figures import (
    ablation_bundling,
    ablation_loadbalance,
    ext_bfs,
    ext_multigrid,
    ext_trsv,
    ablation_manycore,
    ablation_overlap,
    ablation_smartmap,
    fig1_cg,
    fig2_matgen,
    fig3_barneshut,
)
from repro.bench.obs_traffic import obs_cg_traffic
from repro.bench.report import render_chart, save_result
from repro.bench.resilience import bench_resilience
from repro.bench.wallclock import wallclock

EXPERIMENTS: dict[str, Callable] = {
    "fig1": fig1_cg,
    "fig2": fig2_matgen,
    "fig3": fig3_barneshut,
    "table1": table1_codesize,
    "manycore": ablation_manycore,
    "bundling": ablation_bundling,
    "overlap": ablation_overlap,
    "smartmap": ablation_smartmap,
    "loadbalance": ablation_loadbalance,
    "ext_bfs": ext_bfs,
    "ext_trsv": ext_trsv,
    "ext_multigrid": ext_multigrid,
    "obs_cg": obs_cg_traffic,
    "wallclock": wallclock,
    "resilience": bench_resilience,
    "analyzer": analyzer_cost,
}


def main(argv: list[str]) -> int:
    if "--list" in argv:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = [a for a in argv if not a.startswith("-")] or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        print(f"running {name} ...", flush=True)
        result = EXPERIMENTS[name]()
        print(save_result(result))
        chart = render_chart(result)
        if chart:
            print()
            print(chart)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
