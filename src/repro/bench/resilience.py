"""Checkpoint overhead and crash-recovery cost on the Figure-1 CG run.

All numbers are **simulated** seconds on the Franklin-like machine
model (unlike :mod:`repro.bench.wallclock`, which times the host).
Two questions, one sweep over the checkpoint interval:

* **Fault-free overhead** — how much simulated time phase-boundary
  checkpointing adds when nothing fails (``clean_s`` vs the
  no-resilience ``base_s``; ``overhead%``).  Tighter intervals pay
  more checkpoints.
* **Recovery cost** — the same run with a node crash two thirds of
  the way through: detection, restore and the re-execution of lost
  work (``crash_s``; ``recovery_s = crash_s - clean_s``).  Tighter
  intervals lose less work, so the two columns pull the interval in
  opposite directions — the classic checkpoint-interval trade-off.

The ``off`` row runs without checkpointing: the crash restarts the
run from phase 0, bounding the trade-off from the other side.  Every
crashed run's committed solution is verified bitwise-identical to the
fault-free one before its row is accepted.

Run via ``python -m repro.bench resilience`` — writes the table under
``bench_results/`` and the machine-readable ``BENCH_resilience.json``
at the repo root.
"""

from __future__ import annotations

import json
import os
import platform

import numpy as np

from repro.bench.harness import SweepResult
from repro.config import franklin
from repro.machine import Cluster

INTERVALS: tuple[int | None, ...] = (1, 5, 10, None)

_JSON_DEFAULT = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "BENCH_resilience.json"
)


def bench_resilience(
    *,
    nodes: int = 8,
    nx: int = 12,
    iters: int = 30,
    seed: int = 7,
    json_path: str | None = _JSON_DEFAULT,
) -> SweepResult:
    """Sweep the checkpoint interval on the Figure-1 CG workload.

    Returns the table and (unless ``json_path`` is None) writes
    ``BENCH_resilience.json``.
    """
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.resilience import FaultPlan

    problem = build_chimney_problem(nx)
    # CG runs 3 global phases per iteration plus setup; crash two
    # thirds of the way through, offset so the crash phase is not a
    # common multiple of the swept intervals (a crash right after
    # everyone's checkpoint would hide the lost-work differences).
    crash_phase = 2 * iters + 7

    def cluster() -> Cluster:
        return Cluster(franklin(n_nodes=nodes))

    base_result, base_s = ppm_cg_solve(
        problem, cluster(), max_iters=iters, tol=0.0
    )

    rows: list[dict] = []
    for every in INTERVALS:
        label = "off" if every is None else str(every)
        if every is None:
            clean_s = base_s
        else:
            _, clean_s = ppm_cg_solve(
                problem,
                cluster(),
                max_iters=iters,
                tol=0.0,
                checkpoint_every=every,
            )
        plan = FaultPlan(seed=seed).crash(node=nodes - 1, phase=crash_phase)
        crashed, crash_s = ppm_cg_solve(
            problem,
            cluster(),
            max_iters=iters,
            tol=0.0,
            faults=plan,
            checkpoint_every=every,
        )
        if not np.array_equal(base_result.x, crashed.x):
            raise AssertionError(
                f"recovery equivalence violated at checkpoint_every={label}"
            )
        rows.append(
            {
                "checkpoint_every": label,
                "base_s": base_s,
                "clean_s": clean_s,
                "overhead%": 100.0 * (clean_s / base_s - 1.0),
                "crash_s": crash_s,
                "recovery_s": crash_s - clean_s,
            }
        )

    result = SweepResult(
        name="resilience",
        columns=[
            "checkpoint_every",
            "base_s",
            "clean_s",
            "overhead%",
            "crash_s",
            "recovery_s",
        ],
        rows=rows,
        notes=(
            f"SIMULATED seconds: PPM CG ({nx}x{nx}x{2*nx} chimney grid, "
            f"{iters} iterations) on {nodes} Franklin-like nodes; "
            f"clean_s = fault-free with checkpointing, crash_s = node "
            f"{nodes - 1} crashes at phase {crash_phase} and the run "
            "rolls back to its last checkpoint (or restarts, row 'off'); "
            "every crashed run's solution verified bitwise-identical to "
            "the fault-free one"
        ),
    )
    if json_path is not None:
        write_resilience_json(result, json_path, nodes=nodes, nx=nx, iters=iters)
    return result


def write_resilience_json(
    result: SweepResult,
    path: str = _JSON_DEFAULT,
    **params,
) -> dict:
    """Serialise the resilience sweep to ``BENCH_resilience.json``."""
    report = {
        "schema": "ppm-resilience/1",
        "generated_by": "python -m repro.bench resilience",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "units": "simulated seconds on the Franklin-like machine model",
        "params": params,
        "rows": result.rows,
        "acceptance": {
            "recovery_equivalence": (
                "every crashed run committed a solution bitwise-identical "
                "to the fault-free run (asserted during the sweep)"
            ),
            "disabled_cost": (
                "with faults/checkpoint_every/resilience all None, run_ppm "
                "takes the pre-resilience code path — the wallclock CI "
                "guard band (python -m repro.bench.wallclock --check) "
                "covers the no-overhead claim"
            ),
        },
        "notes": result.notes,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report
