"""Checkpoint overhead and crash-recovery cost on the Figure-1 CG run.

All numbers are **simulated** seconds on the Franklin-like machine
model (unlike :mod:`repro.bench.wallclock`, which times the host).
Two questions, one sweep over the checkpoint interval:

* **Fault-free overhead** — how much simulated time phase-boundary
  checkpointing adds when nothing fails (``clean_s`` vs the
  no-resilience ``base_s``; ``overhead%``).  Tighter intervals pay
  more checkpoints.
* **Recovery cost** — the same run with a node crash two thirds of
  the way through: detection, restore and the re-execution of lost
  work (``crash_s``; ``recovery_s = crash_s - clean_s``).  Tighter
  intervals lose less work, so the two columns pull the interval in
  opposite directions — the classic checkpoint-interval trade-off.

The ``off`` row runs without checkpointing: the crash restarts the
run from phase 0, bounding the trade-off from the other side.  Every
crashed run's committed solution is verified bitwise-identical to the
fault-free one before its row is accepted.

Run via ``python -m repro.bench resilience`` — writes the table under
``bench_results/`` and the machine-readable ``BENCH_resilience.json``
at the repo root.

``python -m repro.bench resilience --executor process`` measures the
*other* fault domain in **host** seconds: the worker supervisor
(docs/PARALLEL.md).  Fault-free supervision must stay inside a 1.05×
guard band of the unsupervised pool (detection is passive deadline
bookkeeping on the reply gather the parent performs anyway), and a
``ProcessChaos`` SIGKILL run reports the host-side recovery latency
per respawn.  The table is merged into ``BENCH_resilience.json``
under the ``process_executor`` key.
"""

from __future__ import annotations

import json
import os
import platform
import time

import numpy as np

from repro.bench.harness import SweepResult
from repro.config import franklin
from repro.machine import Cluster

INTERVALS: tuple[int | None, ...] = (1, 5, 10, None)

#: Fault-free supervised/unsupervised host-seconds ratio the process
#: sweep's ``--check`` enforces.
SUPERVISION_GUARD_BAND = 1.05

_JSON_DEFAULT = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "BENCH_resilience.json"
)


def bench_resilience(
    *,
    nodes: int = 8,
    nx: int = 12,
    iters: int = 30,
    seed: int = 7,
    json_path: str | None = _JSON_DEFAULT,
) -> SweepResult:
    """Sweep the checkpoint interval on the Figure-1 CG workload.

    Returns the table and (unless ``json_path`` is None) writes
    ``BENCH_resilience.json``.
    """
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.resilience import FaultPlan

    problem = build_chimney_problem(nx)
    # CG runs 3 global phases per iteration plus setup; crash two
    # thirds of the way through, offset so the crash phase is not a
    # common multiple of the swept intervals (a crash right after
    # everyone's checkpoint would hide the lost-work differences).
    crash_phase = 2 * iters + 7

    def cluster() -> Cluster:
        return Cluster(franklin(n_nodes=nodes))

    base_result, base_s = ppm_cg_solve(
        problem, cluster(), max_iters=iters, tol=0.0
    )

    rows: list[dict] = []
    for every in INTERVALS:
        label = "off" if every is None else str(every)
        if every is None:
            clean_s = base_s
        else:
            _, clean_s = ppm_cg_solve(
                problem,
                cluster(),
                max_iters=iters,
                tol=0.0,
                checkpoint_every=every,
            )
        plan = FaultPlan(seed=seed).crash(node=nodes - 1, phase=crash_phase)
        crashed, crash_s = ppm_cg_solve(
            problem,
            cluster(),
            max_iters=iters,
            tol=0.0,
            faults=plan,
            checkpoint_every=every,
        )
        if not np.array_equal(base_result.x, crashed.x):
            raise AssertionError(
                f"recovery equivalence violated at checkpoint_every={label}"
            )
        rows.append(
            {
                "checkpoint_every": label,
                "base_s": base_s,
                "clean_s": clean_s,
                "overhead%": 100.0 * (clean_s / base_s - 1.0),
                "crash_s": crash_s,
                "recovery_s": crash_s - clean_s,
            }
        )

    result = SweepResult(
        name="resilience",
        columns=[
            "checkpoint_every",
            "base_s",
            "clean_s",
            "overhead%",
            "crash_s",
            "recovery_s",
        ],
        rows=rows,
        notes=(
            f"SIMULATED seconds: PPM CG ({nx}x{nx}x{2*nx} chimney grid, "
            f"{iters} iterations) on {nodes} Franklin-like nodes; "
            f"clean_s = fault-free with checkpointing, crash_s = node "
            f"{nodes - 1} crashes at phase {crash_phase} and the run "
            "rolls back to its last checkpoint (or restarts, row 'off'); "
            "every crashed run's solution verified bitwise-identical to "
            "the fault-free one"
        ),
    )
    if json_path is not None:
        write_resilience_json(result, json_path, nodes=nodes, nx=nx, iters=iters)
    return result


def write_resilience_json(
    result: SweepResult,
    path: str = _JSON_DEFAULT,
    **params,
) -> dict:
    """Serialise the resilience sweep to ``BENCH_resilience.json``
    (preserving an existing ``process_executor`` section)."""
    previous: dict = {}
    try:
        with open(path) as fh:
            previous = json.load(fh)
    except (OSError, ValueError):
        previous = {}
    report = {
        "schema": "ppm-resilience/1",
        "generated_by": "python -m repro.bench resilience",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "units": "simulated seconds on the Franklin-like machine model",
        "params": params,
        "rows": result.rows,
        "acceptance": {
            "recovery_equivalence": (
                "every crashed run committed a solution bitwise-identical "
                "to the fault-free run (asserted during the sweep)"
            ),
            "disabled_cost": (
                "with faults/checkpoint_every/resilience all None, run_ppm "
                "takes the pre-resilience code path — the wallclock CI "
                "guard band (python -m repro.bench.wallclock --check) "
                "covers the no-overhead claim"
            ),
        },
        "notes": result.notes,
    }
    if "process_executor" in previous:
        report["process_executor"] = previous["process_executor"]
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


# ----------------------------------------------------------------------
# Process executor: supervision overhead and real recovery latency
# ----------------------------------------------------------------------

def bench_resilience_process(
    *,
    nodes: int = 4,
    nx: int = 8,
    iters: int = 10,
    seed: int = 7,
    workers: int = 2,
    reps: int = 3,
    small: bool = False,
    json_path: str | None = _JSON_DEFAULT,
) -> SweepResult:
    """Measure the worker supervisor in **host** seconds on the
    Figure-1 CG workload under ``executor="process"``.

    Three scenarios, one row each:

    * ``unsupervised`` — the plain pool (the reference clock);
    * ``supervised`` — the same run under a default
      :class:`~repro.parallel.SupervisionPolicy`; ``overhead_x`` is
      its ratio to the reference and must stay inside
      :data:`SUPERVISION_GUARD_BAND` (detection costs one deadline
      computation and one history-log append per round);
    * ``supervised+sigkill`` — :class:`~repro.parallel.ProcessChaos`
      SIGKILLs a worker on every 3rd round; ``recovery_ms`` is the
      total host-side recovery time and ``ms_per_respawn`` the
      per-victim latency (fork + re-init + replay), both from the
      supervisor's published counters.

    The chaos run's solution is asserted bitwise-identical to the
    inline engine before its row is accepted.
    """
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.parallel import ProcessChaos, SupervisionPolicy
    from repro.parallel.supervisor import LAST_SUPERVISION

    if small:
        nodes, nx, iters, reps = min(nodes, 2), min(nx, 4), min(iters, 6), 2

    problem = build_chimney_problem(nx)

    def cluster() -> Cluster:
        return Cluster(franklin(n_nodes=nodes))

    def run(**opts):
        return ppm_cg_solve(
            problem, cluster(), max_iters=iters, tol=0.0,
            executor="process", workers=workers, **opts,
        )

    ref, _ = ppm_cg_solve(problem, cluster(), max_iters=iters, tol=0.0)
    run()  # warmup: imports, fork template, problem caches

    def best_of(**opts) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            run(**opts)
            best = min(best, time.perf_counter() - t0)
        return best

    unsup_s = best_of()
    sup_s = best_of(supervision=SupervisionPolicy())

    t0 = time.perf_counter()
    # A generous respawn budget: the row measures recovery latency,
    # not degradation, so every kill must be recovered in place.
    chaotic, _ = run(
        supervision=SupervisionPolicy(
            chaos=ProcessChaos(seed=seed, every=3), max_respawns=1024
        )
    )
    chaos_s = time.perf_counter() - t0
    sup = dict(LAST_SUPERVISION)
    if not np.array_equal(ref.x, chaotic.x):
        raise AssertionError(
            "supervised recovery equivalence violated under SIGKILL chaos"
        )
    respawns = sup.get("respawns", 0)
    recovery_s = sup.get("recovery_host_s", 0.0)

    rows = [
        {
            "scenario": "unsupervised",
            "host_s": unsup_s,
            "overhead_x": 1.0,
            "crashes": 0,
            "respawns": 0,
            "recovery_ms": 0.0,
            "ms_per_respawn": 0.0,
        },
        {
            "scenario": "supervised",
            "host_s": sup_s,
            "overhead_x": sup_s / unsup_s,
            "crashes": 0,
            "respawns": 0,
            "recovery_ms": 0.0,
            "ms_per_respawn": 0.0,
        },
        {
            "scenario": "supervised+sigkill",
            "host_s": chaos_s,
            "overhead_x": chaos_s / unsup_s,
            "crashes": sup.get("crashes", 0),
            "respawns": respawns,
            "recovery_ms": 1e3 * recovery_s,
            "ms_per_respawn": 1e3 * recovery_s / respawns if respawns else 0.0,
        },
    ]
    result = SweepResult(
        name="resilience_process",
        columns=[
            "scenario",
            "host_s",
            "overhead_x",
            "crashes",
            "respawns",
            "recovery_ms",
            "ms_per_respawn",
        ],
        rows=rows,
        notes=(
            f"HOST seconds: PPM CG ({nx}x{nx}x{2*nx} chimney grid, "
            f"{iters} iterations) on {nodes} Franklin-like nodes, "
            f"executor=process with {workers} workers "
            f"({os.cpu_count()} host cpu(s)), min of {reps} rep(s); "
            "supervised = default SupervisionPolicy, fault-free; "
            "supervised+sigkill = ProcessChaos kills a worker on every "
            "3rd round and the supervisor respawns-and-replays "
            "(solution asserted bitwise-identical to inline); "
            "recovery_ms is the supervisor's total host-side recovery "
            f"time.  Guard band: overhead_x <= {SUPERVISION_GUARD_BAND} "
            "for the fault-free supervised row"
        ),
    )
    if json_path is not None:
        write_resilience_process_json(
            result, json_path,
            nodes=nodes, nx=nx, iters=iters, workers=workers,
        )
    return result


def write_resilience_process_json(
    result: SweepResult,
    path: str = _JSON_DEFAULT,
    **params,
) -> dict:
    """Merge the process-executor supervision sweep into
    ``BENCH_resilience.json`` under ``process_executor`` (the
    simulated-sweep keys are preserved when the file exists)."""
    report: dict = {}
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {
            "schema": "ppm-resilience/1",
            "generated_by": "python -m repro.bench resilience",
        }
    report["process_executor"] = {
        "generated_by": "python -m repro.bench resilience --executor process",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "units": "host seconds (wall clock), not simulated seconds",
        "params": params,
        "rows": result.rows,
        "acceptance": {
            "supervision_guard_band": SUPERVISION_GUARD_BAND,
            "recovery_equivalence": (
                "the SIGKILL-chaos run committed a solution "
                "bitwise-identical to the inline engine (asserted "
                "during the sweep)"
            ),
        },
        "notes": result.notes,
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.bench resilience [--executor process]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Resilience benchmarks (checkpoint sweep / supervisor)"
    )
    parser.add_argument(
        "--executor",
        choices=("simulated", "process"),
        default="simulated",
        help="simulated: checkpoint-interval sweep in simulated seconds "
        "(default); process: supervision overhead and recovery latency "
        "in host seconds",
    )
    parser.add_argument("--small", action="store_true", help="CI-sized workload")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--check",
        action="store_true",
        help="process only: nonzero exit if fault-free supervision "
        f"exceeds the {SUPERVISION_GUARD_BAND}x guard band or no "
        "worker died under chaos",
    )
    args = parser.parse_args(argv)

    from repro.bench.report import format_table, save_result

    if args.executor == "process":
        result = bench_resilience_process(
            small=args.small,
            workers=args.workers,
            json_path=None if args.small else _JSON_DEFAULT,
        )
        if args.small:
            print(format_table(result))
        else:
            print(save_result(result))
        if args.check:
            sup_row = result.rows[1]
            kill_row = result.rows[2]
            ok = (
                sup_row["overhead_x"] <= SUPERVISION_GUARD_BAND
                and kill_row["crashes"] > 0
                and kill_row["respawns"] > 0
            )
            print(
                f"guard band: supervised overhead {sup_row['overhead_x']:.3f}x "
                f"(band {SUPERVISION_GUARD_BAND}x), "
                f"{kill_row['crashes']} kill(s), "
                f"{kill_row['respawns']} respawn(s) -> "
                f"{'ok' if ok else 'FAIL'}"
            )
            return 0 if ok else 1
        return 0

    result = bench_resilience()
    print(save_result(result))
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
