"""Plain-text reporting for the experiment harness."""

from __future__ import annotations

import os

from repro.bench.harness import SweepResult

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "bench_results")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-2 or abs(value) >= 1e5:
            return f"{value:.4g}"
        return f"{value:.4f}"
    return str(value)


def format_table(result: SweepResult) -> str:
    """Aligned text table of a sweep result."""
    headers = result.columns
    body = [[_fmt(row.get(c, "")) for c in headers] for row in result.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"== {result.name} =="]
    if result.notes:
        lines.append(result.notes)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def save_result(result: SweepResult, filename: str | None = None) -> str:
    """Write the formatted table under ``bench_results/`` (repo root)
    and return the text.  Benchmarks call this so EXPERIMENTS.md can
    quote regenerated numbers."""
    text = format_table(result)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    fname = filename or f"{result.name}.txt"
    with open(os.path.join(RESULTS_DIR, fname), "w") as fh:
        fh.write(text + "\n")
    return text


def render_chart(result: SweepResult, *, width: int = 48) -> str:
    """Text rendering of a sweep's time-like series (columns ending in
    ``_s``) as horizontal bars — the closest an offline terminal gets
    to the paper's figures.  Bars share one scale per chart so series
    are visually comparable."""
    x_col = result.columns[0]
    y_cols = [c for c in result.columns if c.endswith("_s")]
    if not y_cols:
        return ""
    values = [
        row.get(c)
        for c in y_cols
        for row in result.rows
        if isinstance(row.get(c), (int, float))
    ]
    if not values:
        return ""
    vmax = max(values) or 1.0
    label_w = max(len(f"{row[x_col]}") for row in result.rows)
    name_w = max(len(c) for c in y_cols)
    lines = [f"-- {result.name} ({', '.join(y_cols)}; full bar = {vmax:.3g}s) --"]
    for row in result.rows:
        for i, c in enumerate(y_cols):
            v = row.get(c)
            x_label = f"{row[x_col]}".rjust(label_w) if i == 0 else " " * label_w
            if not isinstance(v, (int, float)):
                lines.append(f"{x_label}  {c.ljust(name_w)}  (n/a)")
                continue
            bar = "#" * max(1, int(round(width * v / vmax)))
            lines.append(f"{x_label}  {c.ljust(name_w)}  {bar} {v:.3g}")
    return "\n".join(lines)
