"""Wall-clock cost of the phase-conflict sanitizer.

The sanitizer is opt-in precisely because it pays real host time:
every buffered write additionally records a
:class:`~repro.core.shared.WriteEvent`, and each phase commit replays
the events of any overlapping writers onto scratch snapshots.  This
sweep quantifies that price on the CG solver (the most phase-intensive
app: four global phases per iteration) — with the sanitizer *off* the
instrumentation must be a single ``is not None`` test per write.

Columns: host seconds with the sanitizer off and in ``warn`` mode,
the relative overhead, and the number of findings (the shipped apps
are conflict-free, so this column doubles as a regression check).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.bench.harness import SweepResult, run_sweep
from repro.config import franklin
from repro.machine import Cluster

import repro.apps.cg.ppm_cg as _ppm_cg_module


def _timed_solve(problem, *, sanitize, max_iters):
    """Host-time one PPM CG solve; returns (seconds, diagnostics)."""
    diagnostics = []
    orig = _ppm_cg_module.run_ppm

    def wrapped(main, cluster, *args, **kwargs):
        kwargs["sanitize"] = sanitize
        ppm, result = orig(main, cluster, *args, **kwargs)
        diagnostics.extend(ppm.diagnostics)
        return ppm, result

    _ppm_cg_module.run_ppm = wrapped
    try:
        t0 = time.perf_counter()
        ppm_cg_solve(problem, Cluster(franklin(n_nodes=2)), max_iters=max_iters)
        elapsed = time.perf_counter() - t0
    finally:
        _ppm_cg_module.run_ppm = orig
    return elapsed, diagnostics


def sanitizer_overhead(
    sizes: Sequence[int] = (4, 6, 8),
    *,
    max_iters: int = 40,
    repeats: int = 3,
) -> SweepResult:
    """Sweep CG problem sizes, timing each solve with the sanitizer off
    and in ``warn`` mode (best of ``repeats`` runs each)."""

    def runner(nx: int) -> dict:
        problem = build_chimney_problem(nx)
        off = min(
            _timed_solve(problem, sanitize=None, max_iters=max_iters)[0]
            for _ in range(repeats)
        )
        warn_s, diags = min(
            (
                _timed_solve(problem, sanitize="warn", max_iters=max_iters)
                for _ in range(repeats)
            ),
            key=lambda timed: timed[0],
        )
        return {
            "off_s": off,
            "warn_s": warn_s,
            "overhead_pct": 100.0 * (warn_s - off) / off,
            "findings": len(diags),
        }

    return run_sweep(
        "sanitizer_overhead",
        "nx",
        list(sizes),
        runner,
        notes=(
            f"PPM CG (nx*nx*2nx chimney), 2 Franklin nodes, {max_iters} "
            f"iterations; host seconds, best of {repeats}; sanitize=warn "
            "vs off"
        ),
    )
