"""Host wall-clock benchmark of the runtime hot path.

Every other experiment in this suite reports *simulated* seconds on the
modelled machine; this one reports **host** seconds — how long the
simulator itself takes to run — because that is what the hot-path work
(zero-copy snapshot reads, the vectorized commit engine, sequential
lock elision) actually buys.  Simulated times and committed results are
bitwise identical between the two hot paths; only the wall clock moves.

Three macro workloads (the Figure-1 CG sweep, BFS, multigrid) run under
``hot_path="legacy"`` and ``hot_path="fast"``, plus four microbenchmarks
that hammer one access kind each (read, write, accumulate, commit) and
report accesses per second.  Reps of the two modes interleave and the
minimum is kept, which is the standard defence against noisy shared
hosts.

Two "before" columns exist, deliberately:

* ``legacy_s`` — the in-repo ``hot_path="legacy"`` toggle, reproducible
  on any checkout.  It restores copy-on-read and one-op-at-a-time
  commit replay but still benefits from this overhaul's engine-wide
  improvements (inlined recording, cached access records, the leaner
  scheduler loop), so it *understates* the full before/after gap.
* ``SEED_BASELINE`` — the true pre-overhaul baseline, measured once
  against the seed revision with both trees alternating in the same
  measurement window (see its ``methodology`` field).  The acceptance
  speedup in ``BENCH_wallclock.json`` is seed -> fast.

Run via ``python -m repro.bench wallclock`` (writes the table under
``bench_results/`` and the machine-readable ``BENCH_wallclock.json`` at
the repo root) or directly::

    python -m repro.bench.wallclock --small --check

``--small`` shrinks every workload for CI smoke runs; ``--check`` also
measures the traced and sanitized paths on a small CG workload and
fails if either regresses the untraced default beyond the guard band.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable

import numpy as np

from repro.bench.harness import SweepResult
from repro.config import franklin
from repro.core import ppm_function, run_ppm
from repro.machine import Cluster

#: Pre-overhaul before/after, measured once on the development host
#: against the seed revision (the commit this PR branched from), with
#: the seed and current trees alternating as subprocesses *within the
#: same measurement window* so both sides see the same machine state.
#: Recorded here rather than re-measured because the legacy *mode* of
#: the current tree is already faster than the seed (it shares this
#: overhaul's engine-wide improvements) and so understates the gap;
#: the JSON report carries both comparisons.
SEED_BASELINE = {
    "rev": "ff71318",
    "methodology": (
        "seed and current trees alternating as subprocesses in the same "
        "measurement window, one warmup pass per subprocess, min over "
        "interleaved reps (7 for cg_fig1, 3 for the micros); each tree "
        "runs its default hot path; single-core host, so minima are the "
        "meaningful statistic"
    ),
    "cg_fig1": {"before_s": 7.450, "after_s": 2.183, "speedup": 3.41},
    "micro_read": {"before_s": 4.823, "after_s": 0.102, "speedup": 47.5},
    "micro_write": {"before_s": 1.211, "after_s": 0.131, "speedup": 9.2},
    "micro_accumulate": {"before_s": 0.288, "after_s": 0.186, "speedup": 1.55},
    "micro_commit": {"before_s": 0.274, "after_s": 0.225, "speedup": 1.22},
    "micro_note": (
        "32000 reads / 16000 writes / 16000 accumulates / 16000 "
        "fancy-index commit writes across 8 VPs on 2 nodes; the seed's "
        "read cost is dominated by its per-access copies plus "
        "commit-time spec materialisation, which the interval-merge + "
        "memoised bundler and zero-copy views remove"
    ),
}

#: Multicore before/after of the ``executor="process"`` backend,
#: measured once on the development host (8 hardware cores) — the CI
#: container is single-core, where a process pool pays IPC overhead
#: with no cores to win back, so live CI numbers cannot show the
#: speedup.  Same precedent as :data:`SEED_BASELINE`: the acceptance
#: figure is recorded with its methodology; every run re-measures
#: ``measured_*`` live next to it.
PROCESS_BASELINE = {
    "rev": "zero-merge commit overhaul (this tree); "
    "record-shipping predecessor measured at dc7552a",
    "host": "8-core development host; re-run on any multicore machine "
    "to reproduce (the CI container is single-core)",
    "workers": 4,
    "methodology": (
        "Figure-1 CG sweep (full size), inline and process executors "
        "alternating in the same measurement window, one warmup pass "
        "each, min over 5 interleaved reps; process pool at 4 workers "
        "(default_workers clamp on the 8-core host).  The zero-merge "
        "row commits CG's certified phases worker-side (digest-only "
        "replies); the record_shipping row is the same window's "
        "measurement of the dc7552a protocol, kept for the before/after"
    ),
    "cg_fig1": {
        "inline_s": 2.183,
        "process_s": 0.846,
        "speedup": 2.58,
        "plan_cache_hit_rate": 0.96,
    },
    "record_shipping": {"inline_s": 2.183, "process_s": 1.247, "speedup": 1.75},
}

#: CI guard band: traced / sanitized runs may cost at most this factor
#: over the untraced default on the same workload.  Generous on
#: purpose — observability is allowed to cost something, it is not
#: allowed to quietly become the bottleneck again.
GUARD_BAND = 4.0

HOT_PATHS = ("legacy", "fast")

_JSON_DEFAULT = os.path.join(
    os.path.dirname(__file__), "..", "..", "..", "BENCH_wallclock.json"
)


def _cluster(nodes: int, **overrides) -> Cluster:
    return Cluster(franklin(n_nodes=nodes, **overrides))


def _interleaved_min(run: Callable[[str], None], reps: int) -> dict[str, float]:
    """Best-of-``reps`` host seconds per hot path, reps interleaved."""
    best = {hp: float("inf") for hp in HOT_PATHS}
    for _ in range(reps):
        for hp in HOT_PATHS:
            t0 = time.perf_counter()
            run(hp)
            best[hp] = min(best[hp], time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Macro workloads — the applications the rest of the suite measures,
# timed on the host clock instead of the simulated one.
# ----------------------------------------------------------------------

def _cg_workload(small: bool) -> tuple[Callable[[str], None], str]:
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve

    nodes = (1, 2, 4) if small else (1, 2, 4, 8, 16, 32, 64)
    iters = 10 if small else 30
    problem = build_chimney_problem(12)

    def run(hot_path: str) -> None:
        for n in nodes:
            ppm_cg_solve(
                problem, _cluster(n), max_iters=iters, tol=0.0, hot_path=hot_path
            )

    return run, f"PPM CG sweep, nodes {nodes}, {iters} iters (Figure 1 workload)"


def _bfs_workload(small: bool) -> tuple[Callable[[str], None], str]:
    from repro.apps.graph import hashed_graph, ppm_bfs

    n_vertices = 2000 if small else 20000
    graph = hashed_graph(n_vertices, degree=8, seed=7)

    def run(hot_path: str) -> None:
        ppm_bfs(graph, 0, _cluster(8), hot_path=hot_path)

    # An honest near-1.0x row: BFS spends its host time in the graph
    # kernel's own numpy work (frontier gathers on fancy indices, which
    # copy under either mode), not in per-access runtime overhead.
    return run, f"PPM BFS, {n_vertices} vertices, degree 8, 8 nodes"


def _multigrid_workload(small: bool) -> tuple[Callable[[str], None], str]:
    from repro.apps.multigrid import build_mg_problem, ppm_mg_solve

    levels = 6 if small else 8
    cycles = 2 if small else 5
    problem = build_mg_problem(levels=levels)

    def run(hot_path: str) -> None:
        ppm_mg_solve(problem, _cluster(8), cycles=cycles, hot_path=hot_path)

    return run, f"PPM multigrid, L={levels}, {cycles} V-cycles, 8 nodes"


# ----------------------------------------------------------------------
# Microbenchmarks — one access kind per run, accesses/second.
# ----------------------------------------------------------------------

@ppm_function
def _micro_kernel(ctx, xs, mode, ops):
    from repro.apps.common import split_range

    node_lo, node_hi = xs.local_range(ctx.node_id)
    lo, hi = split_range(node_hi - node_lo, ctx.node_vp_count)[ctx.node_rank]
    lo, hi = node_lo + lo, node_lo + hi
    vals = np.ones(hi - lo)
    # Fine-grained access pattern: each op touches a small block, ops
    # cycle over the VP's chunk — the "many small accesses" shape whose
    # per-access overhead the hot path targets.  The block index arrays
    # are built once and reused, like an iterative solver's footprints.
    w = 16
    blocks = [np.arange(s, min(s + w, hi)) for s in range(lo, hi, w)]
    bvals = np.ones(w)
    nb = len(blocks)
    yield ctx.global_phase
    if mode == "read":
        for _ in range(ops):
            xs[lo:hi]
    elif mode == "write":
        for _ in range(ops):
            xs[lo:hi] = vals
    elif mode == "accumulate":
        for i in range(ops):
            b = blocks[i % nb]
            xs.accumulate(b, bvals[: b.size])
    else:  # "commit": buffer fancy-index writes; the barrier applies them
        for i in range(ops):
            b = blocks[i % nb]
            xs[b] = bvals[: b.size]
    yield ctx.global_phase


def _micro_workload(
    mode: str, small: bool, *, nodes: int = 2, n: int = 4096
) -> tuple[Callable[[str], None], str, int]:
    ops = {"read": 4000, "write": 2000, "accumulate": 2000, "commit": 2000}[mode]
    if small:
        ops //= 8

    cluster = _cluster(nodes)
    total_vps = nodes * cluster.cores_per_node
    total_accesses = ops * total_vps

    def run(hot_path: str) -> None:
        def main(ppm):
            xs = ppm.global_shared("micro_x", n)
            xs[:] = 0.0
            ppm.reset_clocks()
            ppm.do(ppm.cores_per_node, _micro_kernel, xs, mode, ops)

        run_ppm(main, _cluster(nodes), hot_path=hot_path)

    note = f"{total_accesses} {mode} accesses ({total_vps} VPs x {ops} ops)"
    return run, note, total_accesses


# ----------------------------------------------------------------------
# The experiment
# ----------------------------------------------------------------------

def wallclock(
    *, small: bool = False, reps: int | None = None, json_path: str | None = _JSON_DEFAULT
) -> SweepResult:
    """Host-seconds comparison of ``hot_path="legacy"`` vs ``"fast"``.

    Returns the sweep table and (unless ``json_path`` is None) writes
    the machine-readable report to ``BENCH_wallclock.json``.
    """
    if reps is None:
        reps = 1 if small else 2

    rows: list[dict] = []
    notes: list[str] = []

    macro = {
        "cg_fig1": _cg_workload,
        "bfs": _bfs_workload,
        "multigrid": _multigrid_workload,
    }
    for name, factory in macro.items():
        run, note = factory(small)
        run("fast")  # warmup: imports, problem caches, JIT-free but cold numpy
        best = _interleaved_min(run, reps)
        rows.append(
            {
                "workload": name,
                "legacy_s": best["legacy"],
                "fast_s": best["fast"],
                "speedup": best["legacy"] / best["fast"],
            }
        )
        notes.append(f"{name}: {note}")

    for mode in ("read", "write", "accumulate", "commit"):
        run, note, total = _micro_workload(mode, small)
        run("fast")
        best = _interleaved_min(run, reps)
        rows.append(
            {
                "workload": f"micro_{mode}",
                "legacy_s": best["legacy"],
                "fast_s": best["fast"],
                "speedup": best["legacy"] / best["fast"],
                "legacy_acc/s": total / best["legacy"],
                "fast_acc/s": total / best["fast"],
            }
        )
        notes.append(f"micro_{mode}: {note}")

    result = SweepResult(
        name="wallclock",
        columns=[
            "workload",
            "legacy_s",
            "fast_s",
            "speedup",
            "legacy_acc/s",
            "fast_acc/s",
        ],
        rows=rows,
        notes=(
            "HOST seconds (not simulated): hot_path legacy vs fast, "
            f"min of {reps} interleaved rep(s); "
            "simulated times/results are bitwise identical between modes. "
            + " | ".join(notes)
        ),
    )
    if json_path is not None:
        write_wallclock_json(result, json_path, small=small)
    return result


def write_wallclock_json(
    result: SweepResult, path: str = _JSON_DEFAULT, *, small: bool = False
) -> dict:
    """Serialise a wallclock sweep (plus the recorded seed baseline and
    the acceptance before/after) to ``BENCH_wallclock.json``."""
    by_name = {row["workload"]: row for row in result.rows}
    cg = by_name.get("cg_fig1", {})
    report = {
        "schema": "ppm-wallclock/1",
        "generated_by": "python -m repro.bench wallclock",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "small": small,
        "units": "host seconds (wall clock), not simulated seconds",
        "seed_baseline": SEED_BASELINE,
        "workloads": {
            row["workload"]: {k: v for k, v in row.items() if k != "workload"}
            for row in result.rows
        },
        "acceptance": {
            "workload": "cg_fig1 (Figure-1 CG sweep, PPM side)",
            "before_rev": SEED_BASELINE["rev"],
            "before_s": SEED_BASELINE["cg_fig1"]["before_s"],
            "after_s": SEED_BASELINE["cg_fig1"]["after_s"],
            "speedup": SEED_BASELINE["cg_fig1"]["speedup"],
            "target": 3.0,
            "fresh_legacy_vs_fast": cg.get("speedup"),
            "note": (
                "before_s/after_s are the recorded same-window seed-vs-"
                "current pair (see seed_baseline.methodology) — the true "
                "pre-PR baseline.  fresh_legacy_vs_fast is re-measured by "
                "every run against the in-repo hot_path='legacy' toggle, "
                "which understates the gap because legacy mode shares "
                "this overhaul's engine-wide improvements."
            ),
        },
    }
    # Preserve the sections written by ``--executor process`` and
    # ``--snapshot pruned`` runs; the halves update independently.
    try:
        with open(path) as fh:
            prev = json.load(fh)
        for section in ("process_backend", "snapshot_pruning"):
            if section in prev:
                report[section] = prev[section]
    except (OSError, ValueError):
        pass
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


# ----------------------------------------------------------------------
# Snapshot pruning: snapshot="full" vs snapshot="pruned" host seconds.
# ----------------------------------------------------------------------

def _pruned_run(app: str, small: bool):
    """One (runner, note) pair; the runner executes the app under the
    given ``snapshot`` mode and returns (result_array, simulated_s,
    runtime) so the caller can read the pruning counters."""
    if app == "cg_fig1":
        import repro.apps.cg.ppm_cg as cg_module
        from repro.apps.cg import build_chimney_problem, ppm_cg_solve

        nodes = (1, 2, 4) if small else (1, 2, 4, 8)
        iters = 10 if small else 30
        problem = build_chimney_problem(12)

        def run(snapshot: str):
            captured = {}
            orig = cg_module.run_ppm

            def wrapped(main, cluster, *a, **kw):
                ppm, out = orig(main, cluster, *a, **kw)
                captured["rt"] = ppm.runtime
                return ppm, out

            cg_module.run_ppm = wrapped
            try:
                copy_s = copy_b = pruned_b = 0.0
                elapsed = 0.0
                res = None
                for n in nodes:
                    res, t = ppm_cg_solve(
                        problem, _cluster(n), max_iters=iters, tol=0.0,
                        snapshot=snapshot,
                    )
                    rt = captured["rt"]
                    copy_s += rt.stats_commit_copy_s
                    copy_b += rt.stats_commit_copy_bytes
                    pruned_b += rt.stats_pruned_bytes
                    elapsed += t
                return res.x, elapsed, (copy_s, copy_b, pruned_b)
            finally:
                cg_module.run_ppm = orig

        note = f"PPM CG sweep, nodes {nodes}, {iters} iters"
        return run, note

    import repro.apps.multigrid.ppm_mg as mg_module
    from repro.apps.multigrid import build_mg_problem, ppm_mg_solve

    levels = 6 if small else 8
    cycles = 2 if small else 5
    problem = build_mg_problem(levels=levels)

    def run(snapshot: str):
        captured = {}
        orig = mg_module.run_ppm

        def wrapped(main, cluster, *a, **kw):
            ppm, out = orig(main, cluster, *a, **kw)
            captured["rt"] = ppm.runtime
            return ppm, out

        mg_module.run_ppm = wrapped
        try:
            res, t = ppm_mg_solve(
                problem, _cluster(8), cycles=cycles, snapshot=snapshot
            )
            rt = captured["rt"]
            return (
                res.u if hasattr(res, "u") else res,
                t,
                (
                    rt.stats_commit_copy_s,
                    rt.stats_commit_copy_bytes,
                    rt.stats_pruned_bytes,
                ),
            )
        finally:
            mg_module.run_ppm = orig

    note = f"PPM multigrid, L={levels}, {cycles} V-cycles, 8 nodes"
    return run, note


def wallclock_pruned(
    *, small: bool = False, reps: int | None = None
) -> SweepResult:
    """Host-seconds comparison of ``snapshot="full"`` vs ``"pruned"``.

    The liveness certificates let pruned runs skip copy-on-commit for
    arrays proven unread through stale views; this sweep measures what
    that is worth on the two apps with non-trivial certificates (CG:
    all five arrays; multigrid: all twelve level arrays) and records
    the *measured* savings next to the wall clock: ``bytes_avoided``
    (snapshot copies not taken, from the runtime's pruning counters)
    and ``copy_s_avoided`` (the full run's timed copy-on-commit cost
    minus the pruned run's — host seconds actually not spent copying).
    Committed results and simulated times are asserted bitwise
    identical between the modes on every rep.
    """
    if reps is None:
        reps = 1 if small else 2
    rows: list[dict] = []
    notes: list[str] = []
    for app in ("cg_fig1", "multigrid"):
        run, note = _pruned_run(app, small)
        # Warm up both modes: the first pruned run also pays the one-off
        # static analysis (cached on the kernel thereafter), which is
        # analyzer cost — tracked by `bench analyzer` — not commit cost.
        run("full")
        run("pruned")
        best = {"full": float("inf"), "pruned": float("inf")}
        stats = {}
        for _ in range(max(reps, 1)):
            for mode in ("full", "pruned"):
                t0 = time.perf_counter()
                out, sim_t, counters = run(mode)
                best[mode] = min(best[mode], time.perf_counter() - t0)
                stats[mode] = (out, sim_t, counters)
        full_out, full_t, (full_copy_s, full_copy_b, _) = stats["full"]
        pr_out, pr_t, (pr_copy_s, pr_copy_b, pr_bytes) = stats["pruned"]
        if not np.array_equal(full_out, pr_out) or full_t != pr_t:
            raise AssertionError(
                f"{app}: snapshot='pruned' diverged from the default "
                "(committed arrays or simulated time differ)"
            )
        rows.append(
            {
                "workload": app,
                "full_s": best["full"],
                "pruned_s": best["pruned"],
                "speedup": best["full"] / best["pruned"],
                "bytes_avoided": int(pr_bytes),
                "copy_s_avoided": full_copy_s - pr_copy_s,
            }
        )
        notes.append(f"{app}: {note}")
    return SweepResult(
        name="wallclock_pruned",
        columns=[
            "workload",
            "full_s",
            "pruned_s",
            "speedup",
            "bytes_avoided",
            "copy_s_avoided",
        ],
        rows=rows,
        notes=(
            "HOST seconds: snapshot='full' vs 'pruned' (liveness-"
            f"certified copy-on-commit skipping), min of {reps} "
            "interleaved rep(s); committed results and simulated times "
            "are bitwise identical between modes (asserted). "
            "bytes_avoided = snapshot copies skipped (runtime counter); "
            "copy_s_avoided = timed copy-on-commit host cost of the "
            "full run minus the pruned run's. " + " | ".join(notes)
        ),
    )


def write_pruned_json(
    result: SweepResult, path: str = _JSON_DEFAULT, *, small: bool = False
) -> dict:
    """Merge a ``snapshot_pruning`` section into ``BENCH_wallclock.json``
    (the rest of the report is preserved, as with ``process_backend``)."""
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {"schema": "ppm-wallclock/1"}
    report["snapshot_pruning"] = {
        "generated_by": "python -m repro.bench wallclock --snapshot pruned",
        "small": small,
        "units": "host seconds; bytes_avoided in bytes",
        "workloads": {
            row["workload"]: {k: v for k, v in row.items() if k != "workload"}
            for row in result.rows
        },
        "note": (
            "snapshot='pruned' skips copy-on-commit for arrays the "
            "liveness pass proves unread through stale views; committed "
            "results and simulated times are bitwise identical "
            "(asserted by the sweep)."
        ),
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


# ----------------------------------------------------------------------
# Process-backend comparison: inline vs executor="process" host seconds.
# ----------------------------------------------------------------------

def _executor_workloads(small: bool):
    """``(name, run(**run_opts), note)`` triples for the executor
    comparison — the same macro workloads as the hot-path table, but
    parameterised on ``run_ppm`` options instead of the hot path."""
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.apps.graph import hashed_graph, ppm_bfs
    from repro.apps.multigrid import build_mg_problem, ppm_mg_solve

    cg_nodes = (1, 2, 4) if small else (1, 2, 4, 8, 16, 32, 64)
    cg_iters = 10 if small else 30
    cg_problem = build_chimney_problem(12)

    def cg_run(**run_opts) -> None:
        for n in cg_nodes:
            ppm_cg_solve(
                cg_problem, _cluster(n), max_iters=cg_iters, tol=0.0, **run_opts
            )

    n_vertices = 2000 if small else 20000
    graph = hashed_graph(n_vertices, degree=8, seed=7)

    def bfs_run(**run_opts) -> None:
        ppm_bfs(graph, 0, _cluster(8), **run_opts)

    mg_levels = 6 if small else 8
    mg_cycles = 2 if small else 5
    mg_problem = build_mg_problem(levels=mg_levels)

    def mg_run(**run_opts) -> None:
        ppm_mg_solve(mg_problem, _cluster(8), cycles=mg_cycles, **run_opts)

    return [
        ("cg_fig1", cg_run, f"PPM CG sweep, nodes {cg_nodes}, {cg_iters} iters"),
        ("bfs", bfs_run, f"PPM BFS, {n_vertices} vertices, degree 8, 8 nodes"),
        ("multigrid", mg_run, f"PPM multigrid, L={mg_levels}, {mg_cycles} V-cycles"),
    ]


def wallclock_process(
    *,
    small: bool = False,
    workers: int | None = None,
    reps: int | None = None,
    supervised: bool = False,
) -> SweepResult:
    """Host-seconds comparison of ``executor="inline"`` vs
    ``executor="process"`` on the macro workloads.

    Simulated times and committed arrays are bitwise identical between
    the executors (the backend's contract, enforced by
    ``tests/parallel/``); only the host clock moves.  On a single-core
    host the process rows are *slower* — the pool pays fork + IPC with
    no extra cores to win back — which is why the acceptance figure in
    ``BENCH_wallclock.json`` carries the recorded multicore baseline
    (:data:`PROCESS_BASELINE`) next to the live measurement.
    """
    if workers is None:
        from repro.parallel.backend import default_workers

        workers = default_workers()
    if reps is None:
        reps = 1 if small else 2

    from repro.parallel import backend as backend_mod

    process_opts: dict = {"executor": "process", "workers": workers}
    if supervised:
        from repro.parallel import SupervisionPolicy

        # A fresh default policy per run: fault-free supervision is
        # pure deadline bookkeeping on the existing reply gather.
        process_opts["supervision"] = SupervisionPolicy()
    variants = {
        "inline": {},
        "process": process_opts,
    }
    rows: list[dict] = []
    notes: list[str] = []
    for name, run, note in _executor_workloads(small):
        run()  # warmup (inline: imports and problem caches)
        best = {v: float("inf") for v in variants}
        for _ in range(reps):
            for variant, opts in variants.items():
                t0 = time.perf_counter()
                run(**opts)
                best[variant] = min(best[variant], time.perf_counter() - t0)
        # Zero-merge statistics of the process run just finished (the
        # final run_ppm of the workload — for the CG sweep, the largest
        # node count): commit-plan cache hit rate and the pipe bytes
        # the in-place commits avoided shipping.
        stats = dict(backend_mod.LAST_RUN_STATS)
        hits = stats.get("plan_hits", 0)
        misses = stats.get("plan_misses", 0)
        rows.append(
            {
                "workload": name,
                "inline_s": best["inline"],
                "process_s": best["process"],
                "speedup": best["inline"] / best["process"],
                "plan_hit_rate": (
                    hits / (hits + misses) if hits + misses else 0.0
                ),
                "merge_bytes_avoided": stats.get("bytes_avoided", 0),
            }
        )
        notes.append(f"{name}: {note}")

    return SweepResult(
        name="wallclock_process",
        columns=[
            "workload",
            "inline_s",
            "process_s",
            "speedup",
            "plan_hit_rate",
            "merge_bytes_avoided",
        ],
        rows=rows,
        notes=(
            "HOST seconds: executor inline vs process "
            + ("(supervised pool) " if supervised else "")
            + f"({workers} workers, {os.cpu_count()} host cpu(s)), "
            f"min of {reps} interleaved rep(s); simulated times and "
            "committed arrays are bitwise identical between executors. "
            "On a single-core host the process column is expected to be "
            "slower (fork + IPC, no cores to win back); the multicore "
            "acceptance figure lives in BENCH_wallclock.json "
            "(process_backend.baseline). "
            "plan_hit_rate / merge_bytes_avoided are the zero-merge "
            "statistics of each workload's final process run. "
            + " | ".join(notes)
        ),
    )


def process_equivalence_check(*, workers: int = 2, supervised: bool = False) -> dict:
    """Three-engine bitwise check on a small CG workload (the
    ``--check`` half of the CI ``parallel-smoke`` job).

    Inline, process zero-merge and process record-replay
    (``zero_merge=False``) must commit the identical solution and
    report the identical simulated time, and the pool must leave no
    shared-memory segments behind.  The zero-merge run executes with
    ``PPM_ZERO_MERGE_VERIFY`` set, so the parent recomputes and checks
    every worker's committed-rows digest checksum each round — a
    certificate that did not hold raises instead of passing silently.
    The commit-plan cache must also converge: hit rate >= 0.9 over the
    run (every access pattern compiles once and hits thereafter).

    With ``supervised=True`` both process runs execute under a default
    :class:`~repro.parallel.SupervisionPolicy` — the fault-free
    supervised pool must clear the same bar.
    """
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve
    from repro.parallel import backend as backend_mod
    from repro.parallel.shm import live_ppm_segments

    sup_opts: dict = {}
    if supervised:
        from repro.parallel import SupervisionPolicy

        sup_opts["supervision"] = SupervisionPolicy()
    problem = build_chimney_problem(8)
    r1, t1 = ppm_cg_solve(problem, _cluster(4), max_iters=14, tol=0.0)
    prev_verify = os.environ.get("PPM_ZERO_MERGE_VERIFY")
    os.environ["PPM_ZERO_MERGE_VERIFY"] = "1"
    try:
        r2, t2 = ppm_cg_solve(
            problem,
            _cluster(4),
            max_iters=14,
            tol=0.0,
            executor="process",
            workers=workers,
            **sup_opts,
        )
    finally:
        if prev_verify is None:
            del os.environ["PPM_ZERO_MERGE_VERIFY"]
        else:
            os.environ["PPM_ZERO_MERGE_VERIFY"] = prev_verify
    stats = dict(backend_mod.LAST_RUN_STATS)
    r3, t3 = ppm_cg_solve(
        problem,
        _cluster(4),
        max_iters=14,
        tol=0.0,
        executor="process",
        workers=workers,
        zero_merge=False,
        **sup_opts,
    )
    leaked = live_ppm_segments()
    bitwise = bool(np.array_equal(r1.x, r2.x) and np.array_equal(r1.x, r3.x))
    times = bool(t1 == t2 == t3)
    hits = stats.get("plan_hits", 0)
    misses = stats.get("plan_misses", 0)
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    zm_ok = stats.get("zm_rounds", 0) > 0 and hit_rate >= 0.9
    return {
        "workers": workers,
        "supervised": supervised,
        "bitwise_identical": bitwise,
        "simulated_time_identical": times,
        "leaked_segments": leaked,
        "digest_verified_rounds": stats.get("zm_rounds", 0),
        "plan_cache_hit_rate": hit_rate,
        "merge_bytes_avoided": stats.get("bytes_avoided", 0),
        "ok": bitwise and times and not leaked and zm_ok,
    }


def write_process_json(
    result: SweepResult,
    path: str = _JSON_DEFAULT,
    *,
    small: bool = False,
    workers: int | None = None,
    check: dict | None = None,
) -> dict:
    """Merge the executor comparison into ``BENCH_wallclock.json``
    under the ``process_backend`` key (the hot-path report keys are
    preserved when the file already exists)."""
    report: dict = {}
    try:
        with open(path) as fh:
            report = json.load(fh)
    except (OSError, ValueError):
        report = {
            "schema": "ppm-wallclock/1",
            "generated_by": "python -m repro.bench wallclock",
        }
    report["process_backend"] = {
        "generated_by": "python -m repro.bench wallclock --executor process",
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "small": small,
        "workers": workers,
        "units": "host seconds (wall clock), not simulated seconds",
        "measured": {
            row["workload"]: {k: v for k, v in row.items() if k != "workload"}
            for row in result.rows
        },
        "baseline": PROCESS_BASELINE,
        "acceptance": {
            "workload": "cg_fig1 (Figure-1 CG sweep, PPM side)",
            "workers": PROCESS_BASELINE["workers"],
            "inline_s": PROCESS_BASELINE["cg_fig1"]["inline_s"],
            "process_s": PROCESS_BASELINE["cg_fig1"]["process_s"],
            "speedup": PROCESS_BASELINE["cg_fig1"]["speedup"],
            "plan_cache_hit_rate": PROCESS_BASELINE["cg_fig1"][
                "plan_cache_hit_rate"
            ],
            "record_shipping_speedup": PROCESS_BASELINE["record_shipping"][
                "speedup"
            ],
            "target": 2.5,
            "note": (
                "speedup is the recorded multicore baseline of the "
                "zero-merge commit path (see baseline.methodology); "
                "record_shipping_speedup is the same window's "
                "measurement of the previous ship-every-record "
                "protocol.  'measured' is re-measured live by every "
                "run — its plan_hit_rate/merge_bytes_avoided columns "
                "are live on any host, while the wall-clock speedup is "
                "expected to fall below target on single-core hosts, "
                "where the pool has no cores to win back"
            ),
        },
        **({"equivalence_check": check} if check is not None else {}),
    }
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    return report


# ----------------------------------------------------------------------
# CI guard band: tracing and sanitizing must stay within a bounded
# factor of the untraced default.
# ----------------------------------------------------------------------

def guard_band_check(*, band: float = GUARD_BAND) -> dict:
    """Measure untraced vs traced vs sanitized vs certified-auto host
    seconds on a small CG workload; returns the factors (callers
    decide pass/fail).

    The ``auto`` variant runs ``sanitize="auto"``: the static verifier
    certifies every CG phase conflict-free, so the dynamic per-phase
    check is skipped and the run must stay within the *untraced* guard
    band — that is the end-to-end payoff the certificate promises.
    """
    import repro.apps.cg.ppm_cg as _ppm_cg_module
    from repro.apps.cg import build_chimney_problem, ppm_cg_solve

    problem = build_chimney_problem(8)
    variants = {
        "untraced": {},
        "traced": {"trace": True},
        "sanitized": {"sanitize": "warn"},
        "auto": {"sanitize": "auto"},
    }

    def run(kwargs) -> None:
        # The app signature exposes trace but (deliberately, for Table
        # 1's line counts) not sanitize; inject it the same way the
        # sanitizer-overhead sweep does.
        orig = _ppm_cg_module.run_ppm
        if "sanitize" in kwargs:
            def wrapped(main, cluster, *a, **kw):
                kw["sanitize"] = kwargs["sanitize"]
                return orig(main, cluster, *a, **kw)

            _ppm_cg_module.run_ppm = wrapped
        try:
            call_kwargs = {k: v for k, v in kwargs.items() if k != "sanitize"}
            ppm_cg_solve(problem, _cluster(4), max_iters=10, tol=0.0, **call_kwargs)
        finally:
            _ppm_cg_module.run_ppm = orig

    run({})  # warmup
    best = {name: float("inf") for name in variants}
    for _ in range(3):
        for name, kwargs in variants.items():
            t0 = time.perf_counter()
            run(kwargs)
            best[name] = min(best[name], time.perf_counter() - t0)
    return {
        "untraced_s": best["untraced"],
        "traced_s": best["traced"],
        "sanitized_s": best["sanitized"],
        "auto_s": best["auto"],
        "traced_factor": best["traced"] / best["untraced"],
        "sanitized_factor": best["sanitized"] / best["untraced"],
        "auto_factor": best["auto"] / best["untraced"],
        "band": band,
        "ok": best["traced"] / best["untraced"] <= band
        and best["sanitized"] / best["untraced"] <= band
        and best["auto"] / best["untraced"] <= band,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Hot-path wall-clock benchmark (host seconds)"
    )
    parser.add_argument("--small", action="store_true", help="CI-sized workloads")
    parser.add_argument("--out", default=_JSON_DEFAULT, help="JSON report path")
    parser.add_argument(
        "--executor",
        choices=("inline", "process"),
        default="inline",
        help="inline: hot-path legacy-vs-fast table (default); "
        "process: inline-vs-process executor comparison",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process pool size for --executor process (default: "
        "default_workers() clamp)",
    )
    parser.add_argument(
        "--snapshot",
        choices=("full", "pruned"),
        default="full",
        help="pruned: measure snapshot='full' vs snapshot='pruned' "
        "(liveness-certified copy-on-commit skipping) and record the "
        "snapshot_pruning section of BENCH_wallclock.json",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="inline: traced/sanitized guard-band check; process: "
        "three-engine equivalence + zero-merge digest/plan-cache check; "
        "with --snapshot pruned: require measurable pruning savings; "
        "nonzero exit on breach",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="with --executor process: run the process variants under "
        "a default SupervisionPolicy (fault-tolerant pool); the "
        "equivalence bar is unchanged",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the benchmark: parent top-20 cumulative to "
        "bench_results/profiles/parent.prof.txt; with --executor "
        "process, each worker subprocess also dumps "
        "worker-<pid>.prof.txt there (via PPM_PROFILE_DIR)",
    )
    args = parser.parse_args(argv)

    from repro.bench.report import RESULTS_DIR, format_table, save_result

    profiler = None
    if args.profile:
        import cProfile

        prof_dir = os.path.abspath(os.path.join(RESULTS_DIR, "profiles"))
        os.makedirs(prof_dir, exist_ok=True)
        # Workers read this at process start (worker_main) and dump
        # their own top-20 tables on exit.
        os.environ["PPM_PROFILE_DIR"] = prof_dir
        profiler = cProfile.Profile()
        profiler.enable()

    def _dump_profile() -> None:
        if profiler is None:
            return
        import io
        import pstats

        profiler.disable()
        buf = io.StringIO()
        pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(20)
        prof_dir = os.environ["PPM_PROFILE_DIR"]
        with open(os.path.join(prof_dir, "parent.prof.txt"), "w") as fh:
            fh.write(buf.getvalue())
        print(f"profiles in {prof_dir}")

    if args.supervised and args.executor != "process":
        parser.error("--supervised requires --executor process")
    if args.snapshot == "pruned":
        if args.executor != "inline":
            parser.error("--snapshot pruned runs on the inline executor")
        result = wallclock_pruned(small=args.small)
        write_pruned_json(result, args.out, small=args.small)
        if args.small:
            print(format_table(result))
        else:
            print(save_result(result))
        status = 0
        if args.check:
            # The sweep itself asserts bitwise identity; the check adds
            # that the certificates actually bought something.
            starved = [
                row["workload"]
                for row in result.rows
                if row["bytes_avoided"] <= 0
            ]
            ok = not starved
            print(
                "pruning: "
                + ", ".join(
                    f"{row['workload']} {row['bytes_avoided']} B avoided"
                    for row in result.rows
                )
                + f" -> {'ok' if ok else 'FAIL (' + ', '.join(starved) + ')'}"
            )
            status = 0 if ok else 1
        _dump_profile()
        print(f"wrote {os.path.abspath(args.out)}")
        return status
    if args.executor == "process":
        result = wallclock_process(
            small=args.small, workers=args.workers, supervised=args.supervised
        )
        check = None
        if args.check:
            check = process_equivalence_check(
                workers=args.workers or 2, supervised=args.supervised
            )
            print(
                "equivalence: "
                f"bitwise={check['bitwise_identical']} "
                f"time={check['simulated_time_identical']} "
                f"leaked={check['leaked_segments']} "
                f"digest-verified rounds={check['digest_verified_rounds']} "
                f"plan hits={check['plan_cache_hit_rate']:.0%} -> "
                f"{'ok' if check['ok'] else 'FAIL'}"
            )
        write_process_json(
            result,
            args.out,
            small=args.small,
            workers=args.workers,
            check=check,
        )
        if args.small:
            print(format_table(result))
        else:
            print(save_result(result))
        _dump_profile()
        print(f"wrote {os.path.abspath(args.out)}")
        return 0 if (check is None or check["ok"]) else 1

    result = wallclock(small=args.small, json_path=None)
    report = write_wallclock_json(result, args.out, small=args.small)
    if args.small:
        # CI-sized numbers must not overwrite the committed full-size
        # table under bench_results/.
        print(format_table(result))
    else:
        print(save_result(result))

    status = 0
    if args.check:
        guard = guard_band_check()
        report["guard_band"] = guard
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(
            f"guard band: traced {guard['traced_factor']:.2f}x, "
            f"sanitized {guard['sanitized_factor']:.2f}x, "
            f"certified-auto {guard['auto_factor']:.2f}x "
            f"(allowed {guard['band']:.1f}x) -> {'ok' if guard['ok'] else 'FAIL'}"
        )
        if not guard["ok"]:
            status = 1
    _dump_profile()
    print(f"wrote {os.path.abspath(args.out)}")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
