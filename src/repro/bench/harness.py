"""Generic sweep runner for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class SweepResult:
    """Rows of one experiment sweep.

    ``columns`` names the values each row carries (first column is the
    sweep variable); ``rows`` is a list of dicts keyed by column.
    """

    name: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""

    def series(self, column: str) -> list:
        """One column as a list (for shape assertions)."""
        if column not in self.columns:
            raise KeyError(f"no column {column!r} in sweep {self.name!r}")
        return [row.get(column) for row in self.rows]


def run_sweep(
    name: str,
    variable: str,
    values: Sequence,
    runner: Callable[[object], dict],
    *,
    notes: str = "",
) -> SweepResult:
    """Run ``runner(value)`` for each sweep value and collect rows.

    The runner returns a dict of measured columns; the sweep variable
    is prepended automatically.
    """
    rows = []
    columns: list[str] = [variable]
    for value in values:
        measured = runner(value)
        row = {variable: value, **measured}
        for key in measured:
            if key not in columns:
                columns.append(key)
        rows.append(row)
    return SweepResult(name=name, columns=columns, rows=rows, notes=notes)
