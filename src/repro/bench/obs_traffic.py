"""Observability sweep: traced CG traffic and bundling effectiveness.

Runs the PPM CG under a :class:`~repro.obs.events.PhaseTrace` and
reports, per node count, the runtime's communication picture straight
from the :class:`~repro.obs.metrics.RunReport`: fine-grained access
operations, the deduplicated unbundled message count (what a
bundling-disabled runtime would put on the wire), the bundled wire
messages actually sent, the resulting bundling ratio, bytes moved,
the fraction of communication hidden under compute, and the worst
barrier skew.  This is the quantitative backing for the paper's
section 3.3 bundling claim, measured rather than asserted.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.cg import build_chimney_problem, ppm_cg_solve
from repro.bench.harness import SweepResult, run_sweep
from repro.config import franklin
from repro.machine import Cluster
from repro.obs import PhaseTrace, RunReport


def obs_cg_traffic(
    node_counts: Sequence[int] = (2, 4, 8, 16),
    *,
    nx: int = 10,
    iters: int = 10,
    **overrides,
) -> SweepResult:
    """Traced CG: per-node-count traffic and bundling metrics."""
    problem = build_chimney_problem(nx)

    def runner(nodes: int) -> dict:
        trace = PhaseTrace()
        cluster = Cluster(franklin(n_nodes=nodes, **overrides))
        _, t_ppm = ppm_cg_solve(
            problem, cluster, max_iters=iters, tol=0.0, trace=trace
        )
        report = RunReport.from_trace(trace)
        return {
            "ppm_s": t_ppm,
            "phases": len(report.phases),
            "access_ops": report.access_ops,
            "unbundled_msgs": report.unbundled_messages,
            "bundled_msgs": report.total_messages,
            "bundling_ratio": report.bundling_ratio,
            "bytes": report.total_bytes,
            "overlap_pct": 100.0 * report.overlap_fraction,
            "skew_us": 1e6 * report.max_barrier_skew,
        }

    return run_sweep(
        "obs_cg_traffic",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"Traced PPM CG, 27-pt stencil on {nx}x{nx}x{2*nx} grid "
            f"({problem.n} rows), {iters} iterations; metrics from "
            "RunReport (see docs/OBSERVABILITY.md for formulas)"
        ),
    )
