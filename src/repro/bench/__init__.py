"""Experiment harness regenerating the paper's evaluation section.

One entry point per table/figure (see DESIGN.md's per-experiment
index):

* :func:`~repro.bench.figures.fig1_cg` — Figure 1, CG solver;
* :func:`~repro.bench.figures.fig2_matgen` — Figure 2, matrix
  generation;
* :func:`~repro.bench.figures.fig3_barneshut` — Figure 3, Barnes-Hut;
* :func:`~repro.bench.codesize.table1_codesize` — Table 1, code size;
* the ``ablation_*`` functions — the paper's design-choice claims.
"""

from repro.bench.codesize import count_loc, table1_codesize
from repro.bench.figures import (
    ablation_bundling,
    ablation_loadbalance,
    ablation_manycore,
    ablation_overlap,
    ablation_smartmap,
    ext_bfs,
    ext_multigrid,
    ext_trsv,
    fig1_cg,
    fig2_matgen,
    fig3_barneshut,
)
from repro.bench.harness import SweepResult, run_sweep
from repro.bench.report import format_table, save_result
from repro.bench.sanitizer_overhead import sanitizer_overhead

__all__ = [
    "SweepResult",
    "ablation_bundling",
    "ablation_loadbalance",
    "ablation_manycore",
    "ablation_overlap",
    "ablation_smartmap",
    "count_loc",
    "ext_bfs",
    "ext_multigrid",
    "ext_trsv",
    "fig1_cg",
    "fig2_matgen",
    "fig3_barneshut",
    "format_table",
    "run_sweep",
    "sanitizer_overhead",
    "save_result",
    "table1_codesize",
]
