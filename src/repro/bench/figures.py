"""Series builders for every figure of the paper plus the ablations.

Each function runs the relevant application(s) over a node-count (or
cores-per-node) sweep on freshly built simulated clusters and returns
a :class:`~repro.bench.harness.SweepResult` whose rows mirror the
figure's data series.  Times are simulated seconds on the Franklin-like
machine model — the *shape* (who wins, by what factor, where curves
cross) is the reproduction target, not absolute values.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.barneshut import make_plummer_cloud, mpi_bh_simulate, ppm_bh_simulate
from repro.apps.cg import build_chimney_problem, mpi_cg_solve, ppm_cg_solve
from repro.apps.collocation import CollocationConfig, MultiscaleProblem, mpi_generate, ppm_generate
from repro.bench.harness import SweepResult, run_sweep
from repro.config import franklin
from repro.machine import Cluster

DEFAULT_NODES = (1, 2, 4, 8, 16, 32, 64)


def _cluster(nodes: int, **overrides) -> Cluster:
    return Cluster(franklin(n_nodes=nodes, **overrides))


# ----------------------------------------------------------------------
# Figure 1: Conjugate Gradient solver
# ----------------------------------------------------------------------

def fig1_cg(
    node_counts: Sequence[int] = DEFAULT_NODES,
    *,
    nx: int = 12,
    iters: int = 30,
    **overrides,
) -> SweepResult:
    """Figure 1: CG solve time, PPM vs tuned MPI, strong scaling."""
    problem = build_chimney_problem(nx)

    def runner(nodes: int) -> dict:
        _, t_ppm = ppm_cg_solve(
            problem, _cluster(nodes, **overrides), max_iters=iters, tol=0.0
        )
        _, t_mpi = mpi_cg_solve(
            problem, _cluster(nodes, **overrides), max_iters=iters, tol=0.0
        )
        return {
            "ppm_s": t_ppm,
            "mpi_s": t_mpi,
            "ppm/mpi": t_ppm / t_mpi,
        }

    return run_sweep(
        "fig1_cg",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"CG, 27-pt stencil on {nx}x{nx}x{2*nx} chimney grid "
            f"({problem.n} rows, {problem.nnz} nnz), {iters} iterations, "
            "4 cores/node (Franklin-like)"
        ),
    )


# ----------------------------------------------------------------------
# Figure 2: multiscale collocation matrix generation
# ----------------------------------------------------------------------

def fig2_matgen(
    node_counts: Sequence[int] = DEFAULT_NODES,
    *,
    levels: int = 10,
    **overrides,
) -> SweepResult:
    """Figure 2: matrix generation time, PPM vs MPI request/reply."""
    problem = MultiscaleProblem(CollocationConfig(levels=levels))

    def runner(nodes: int) -> dict:
        _, t_ppm = ppm_generate(problem, _cluster(nodes, **overrides))
        _, t_mpi = mpi_generate(problem, _cluster(nodes, **overrides))
        return {
            "ppm_s": t_ppm,
            "mpi_s": t_mpi,
            "ppm/mpi": t_ppm / t_mpi,
        }

    return run_sweep(
        "fig2_matgen",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"Multiscale collocation generation, L={levels} "
            f"({problem.n} rows, cache {problem.cache_total} integrals), "
            "4 cores/node"
        ),
    )


# ----------------------------------------------------------------------
# Figure 3: Barnes-Hut
# ----------------------------------------------------------------------

def fig3_barneshut(
    node_counts: Sequence[int] = DEFAULT_NODES,
    *,
    n_particles: int = 2048,
    steps: int = 2,
    mpi_reference_max_nodes: int = 8,
    **overrides,
) -> SweepResult:
    """Figure 3: Barnes-Hut step time, PPM scaling.

    The paper had no MPI Barnes-Hut (Table 1 lists it as N/A); the
    tree-replication method it criticises ([9]) is included here as a
    reference up to ``mpi_reference_max_nodes`` nodes.
    """
    pos, vel, mass = make_plummer_cloud(n_particles, seed=11)

    def runner(nodes: int) -> dict:
        _, _, t_ppm = ppm_bh_simulate(
            pos, vel, mass, _cluster(nodes, **overrides), steps=steps
        )
        row = {"ppm_s": t_ppm}
        if nodes <= mpi_reference_max_nodes:
            _, _, t_mpi = mpi_bh_simulate(
                pos, vel, mass, _cluster(nodes, **overrides), steps=steps
            )
            row["mpi_repl_s"] = t_mpi
        return row

    return run_sweep(
        "fig3_barneshut",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"Barnes-Hut, {n_particles} particles, theta=0.5, "
            f"{steps} steps, 4 cores/node; mpi_repl_s = tree-replication "
            "reference [9] (not in the paper's figure)"
        ),
    )


# ----------------------------------------------------------------------
# Ablations (claims A1-A4 in DESIGN.md)
# ----------------------------------------------------------------------

def ablation_manycore(
    cores_sweep: Sequence[int] = (4, 16, 64),
    *,
    total_cores: int = 256,
    nx: int = 12,
    iters: int = 20,
) -> SweepResult:
    """A1: "the benefits of the PPM model ... will be more significant
    when the number of cores per node increases."  Fixed total core
    budget, redistributed into fatter nodes (always keeping a
    multi-node cluster — a single fat node has no network and is
    outside the claim)."""
    problem = build_chimney_problem(nx)

    def runner(cores: int) -> dict:
        nodes = max(1, total_cores // cores)
        cluster_p = Cluster(franklin(n_nodes=nodes).replace(cores_per_node=cores))
        _, t_ppm = ppm_cg_solve(problem, cluster_p, max_iters=iters, tol=0.0)
        cluster_m = Cluster(franklin(n_nodes=nodes).replace(cores_per_node=cores))
        _, t_mpi = mpi_cg_solve(problem, cluster_m, max_iters=iters, tol=0.0)
        return {
            "nodes": nodes,
            "ppm_s": t_ppm,
            "mpi_s": t_mpi,
            "ppm/mpi": t_ppm / t_mpi,
        }

    return run_sweep(
        "ablation_manycore",
        "cores_per_node",
        cores_sweep,
        runner,
        notes=f"CG ({nx}^2 x {2*nx} grid), {total_cores} total cores redistributed",
    )


def ablation_bundling(
    node_counts: Sequence[int] = (2, 4, 8),
    *,
    n_particles: int = 1024,
) -> SweepResult:
    """A2: message bundling is what makes fine-grained shared access
    viable (paper section 3.3)."""
    pos, vel, mass = make_plummer_cloud(n_particles, seed=11)

    def runner(nodes: int) -> dict:
        _, _, t_on = ppm_bh_simulate(
            pos, vel, mass, _cluster(nodes), steps=1
        )
        _, _, t_off = ppm_bh_simulate(
            pos, vel, mass, _cluster(nodes, bundling=False), steps=1
        )
        return {"bundled_s": t_on, "unbundled_s": t_off, "speedup": t_off / t_on}

    return run_sweep(
        "ablation_bundling",
        "nodes",
        node_counts,
        runner,
        notes=f"PPM Barnes-Hut, {n_particles} particles, bundling on vs one message per element",
    )


def ablation_overlap(
    node_counts: Sequence[int] = (4, 16, 64),
    *,
    nx: int = 12,
    iters: int = 20,
) -> SweepResult:
    """A3: comm/computation overlap and NIC scheduling help at scale."""
    problem = build_chimney_problem(nx)

    def runner(nodes: int) -> dict:
        _, t_on = ppm_cg_solve(problem, _cluster(nodes), max_iters=iters, tol=0.0)
        _, t_off = ppm_cg_solve(
            problem,
            _cluster(nodes, overlap_fraction=0.0, nic_scheduling=False),
            max_iters=iters,
            tol=0.0,
        )
        return {"optimised_s": t_on, "disabled_s": t_off, "speedup": t_off / t_on}

    return run_sweep(
        "ablation_overlap",
        "nodes",
        node_counts,
        runner,
        notes=f"PPM CG ({nx} grid), overlap+NIC scheduling on vs off",
    )


def ablation_smartmap(
    node_counts: Sequence[int] = (1, 2, 4),
    *,
    nx: int = 12,
    iters: int = 20,
) -> SweepResult:
    """A4 (the paper's footnote 1): SmartMap-style cheap intra-node MPI
    reduces the baseline's overhead where ranks share a node."""
    problem = build_chimney_problem(nx)

    def runner(nodes: int) -> dict:
        _, t_plain = mpi_cg_solve(problem, _cluster(nodes), max_iters=iters, tol=0.0)
        _, t_smart = mpi_cg_solve(
            problem, _cluster(nodes, smartmap=True), max_iters=iters, tol=0.0
        )
        return {"mpi_s": t_plain, "mpi_smartmap_s": t_smart, "speedup": t_plain / t_smart}

    return run_sweep(
        "ablation_smartmap",
        "nodes",
        node_counts,
        runner,
        notes=f"MPI CG ({nx} grid), stock intra-node messaging vs SmartMap-like",
    )


# ----------------------------------------------------------------------
# Extension experiments (motivating workloads the paper never measured)
# ----------------------------------------------------------------------

def ext_bfs(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    n_vertices: int = 4000,
    degree: int = 4,
) -> SweepResult:
    """Extension: level-synchronous BFS (the intro's "graph
    algorithms"), PPM vs MPI owner-directed updates."""
    from repro.apps.graph import hashed_graph, mpi_bfs, ppm_bfs

    graph = hashed_graph(n_vertices, degree=degree, seed=7)

    def runner(nodes: int) -> dict:
        _, t_ppm = ppm_bfs(graph, 0, _cluster(nodes))
        _, t_mpi = mpi_bfs(graph, 0, _cluster(nodes))
        return {"ppm_s": t_ppm, "mpi_s": t_mpi, "ppm/mpi": t_ppm / t_mpi}

    return run_sweep(
        "ext_bfs",
        "nodes",
        node_counts,
        runner,
        notes=f"BFS from vertex 0 on a hashed expander ({n_vertices} vertices, degree {degree})",
    )


def ext_trsv(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    nx: int = 8,
) -> SweepResult:
    """Extension: wavefront sparse triangular solve (the intro's [20]).
    Documents an honest limitation: the tuned asynchronous MPI push
    wins this latency-bound kernel against phase-per-wavefront PPM."""
    from repro.apps.sptrsv import build_trsv_problem, mpi_trsv, ppm_trsv

    problem = build_trsv_problem(nx)

    def runner(nodes: int) -> dict:
        _, t_ppm = ppm_trsv(problem, _cluster(nodes))
        _, t_mpi = mpi_trsv(problem, _cluster(nodes))
        return {"ppm_s": t_ppm, "mpi_s": t_mpi, "ppm/mpi": t_ppm / t_mpi}

    return run_sweep(
        "ext_trsv",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"Forward substitution, tril of the {nx}^2x{2*nx} stencil matrix "
            f"({problem.n} rows, {problem.n_levels} wavefront levels)"
        ),
    )


def ablation_loadbalance(
    vp_factors: Sequence[int] = (2, 4, 8),
    *,
    n_nodes: int = 4,
    phases: int = 6,
) -> SweepResult:
    """A5 (section 3): processor virtualisation lets the runtime load-
    balance.  A skewed synthetic workload — per-VP cost drawn from a
    heavy-tailed hash — under static loop chunking vs measured-cost
    rebalancing, at increasing virtualisation factors (VPs per core)."""
    from repro.apps.common import hash_unit
    from repro.core import ppm_function, run_ppm

    def make_main(vps_per_core: int):
        @ppm_function
        def skewed(ctx):
            # Persistent per-VP skew (e.g. spatial imbalance): the
            # regime where measured history predicts the next phase.
            u = float(hash_unit(ctx.global_rank * 131))
            for _p in range(phases):
                yield ctx.global_phase
                ctx.work(50_000 + int(2_000_000 * u**4))  # heavy tail

        def main(ppm):
            ppm.do(ppm.cores_per_node * vps_per_core, skewed)
            return ppm.elapsed

        return main

    def runner(vpf: int) -> dict:
        main = make_main(vpf)
        _, t_static = run_ppm(main, _cluster(n_nodes))
        _, t_lb = run_ppm(main, _cluster(n_nodes, load_balancing=True))
        return {"static_s": t_static, "balanced_s": t_lb, "speedup": t_static / t_lb}

    return run_sweep(
        "ablation_loadbalance",
        "vps_per_core",
        vp_factors,
        runner,
        notes=(
            f"Synthetic heavy-tailed per-VP work, {n_nodes} nodes x 4 cores, "
            f"{phases} phases; static loop chunks vs measured-cost LPT"
        ),
    )


def ext_multigrid(
    node_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    levels: int = 8,
    cycles: int = 5,
) -> SweepResult:
    """Extension: geometric multigrid V-cycles (the intro's
    "multi-grid").  Both models hit the coarse-level synchronisation
    squeeze; PPM's fixed phase cost versus MPI's per-op halo plans."""
    from repro.apps.multigrid import build_mg_problem, mpi_mg_solve, ppm_mg_solve

    problem = build_mg_problem(levels=levels)

    def runner(nodes: int) -> dict:
        _, t_ppm = ppm_mg_solve(problem, _cluster(nodes), cycles=cycles)
        _, t_mpi = mpi_mg_solve(problem, _cluster(nodes), cycles=cycles)
        return {"ppm_s": t_ppm, "mpi_s": t_mpi, "ppm/mpi": t_ppm / t_mpi}

    return run_sweep(
        "ext_multigrid",
        "nodes",
        node_counts,
        runner,
        notes=(
            f"1-D Poisson V(2,2) cycles x{cycles}, {2 ** levels * 4 + 1} fine "
            f"points, {levels + 1} levels"
        ),
    )
