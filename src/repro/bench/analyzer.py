"""Wall-clock cost of the static phase-dataflow verifier.

``sanitize="auto"`` and the CI verify gate make static analysis part
of the development loop, so its cost is tracked like runtime cost:
this sweep times ``repro.analysis.dataflow.verify_file`` on each of
the six shipped apps (best of ``repeats`` runs, parse included) and
records the verdict alongside — the table doubles as a regression
check that every app still certifies conflict-free.

Columns: app name, analyzer host-milliseconds, number of phases
summarised, dependence edges found, findings emitted, and whether the
kernel holds a full conflict-freedom certificate.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import SweepResult
from repro.bench.report import render_chart, save_result

#: The six shipped PPM apps, as paths relative to the repo root.
APP_MODULES = (
    ("cg", "src/repro/apps/cg/ppm_cg.py"),
    ("matgen", "src/repro/apps/collocation/ppm_gen.py"),
    ("barneshut", "src/repro/apps/barneshut/ppm_bh.py"),
    ("multigrid", "src/repro/apps/multigrid/ppm_mg.py"),
    ("bfs", "src/repro/apps/graph/ppm_bfs.py"),
    ("sptrsv", "src/repro/apps/sptrsv/ppm_trsv.py"),
)


def _repo_root() -> str:
    return os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..")
    )


def analyzer_cost(*, repeats: int = 3, quiet: bool = False) -> SweepResult:
    """Time the verifier on all six apps; returns the sweep table."""
    from repro.analysis.dataflow import verify_file

    root = _repo_root()
    result = SweepResult(
        name="analyzer_cost",
        columns=[
            "app",
            "analyze_ms",
            "phases",
            "dep_edges",
            "findings",
            "certified",
        ],
        notes=(
            "Static dataflow verifier (repro.analysis.dataflow) host "
            f"cost per app, best of {repeats}; certified=True means "
            "every phase carries a conflict-freedom certificate."
        ),
    )
    for app, rel in APP_MODULES:
        path = os.path.join(root, rel)
        best = float("inf")
        diags: list = []
        summaries: list = []
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            diags, summaries = verify_file(path)
            best = min(best, time.perf_counter() - t0)
        result.rows.append(
            {
                "app": app,
                "analyze_ms": best * 1e3,
                "phases": sum(len(s.phases) for s in summaries),
                "dep_edges": sum(len(s.edges) for s in summaries),
                "findings": len(diags),
                "certified": all(s.certified for s in summaries)
                and bool(summaries),
            }
        )
    text = save_result(result)
    if not quiet:
        print(text)
        chart = render_chart(result)
        if chart:
            print(chart)
    return result
