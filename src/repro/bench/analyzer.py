"""Wall-clock cost of the static phase-dataflow verifier.

``sanitize="auto"`` and the CI verify gate make static analysis part
of the development loop, so its cost is tracked like runtime cost:
this sweep times ``repro.analysis.dataflow.verify_file`` on each of
the six shipped apps (best of ``repeats`` runs, parse included) and
records the verdict alongside — the table doubles as a regression
check that every app still certifies conflict-free.

Columns: app name, analyzer host-milliseconds, number of phases
summarised, dependence edges found, findings emitted, and whether the
kernel holds a full conflict-freedom certificate.

``python -m repro.bench analyzer --check`` re-times the apps and fails
(exit 1) if any app analyzes more than 2x slower than the baseline
recorded in ``bench_results/analyzer_cost.txt`` — the CI regression
gate for analyzer cost.  Re-record the baseline by running the sweep
without ``--check``.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.bench.harness import SweepResult
from repro.bench.report import render_chart, save_result

#: The six shipped PPM apps, as paths relative to the repo root.
APP_MODULES = (
    ("cg", "src/repro/apps/cg/ppm_cg.py"),
    ("matgen", "src/repro/apps/collocation/ppm_gen.py"),
    ("barneshut", "src/repro/apps/barneshut/ppm_bh.py"),
    ("multigrid", "src/repro/apps/multigrid/ppm_mg.py"),
    ("bfs", "src/repro/apps/graph/ppm_bfs.py"),
    ("sptrsv", "src/repro/apps/sptrsv/ppm_trsv.py"),
)


def _repo_root() -> str:
    return os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..")
    )


#: A fresh timing may exceed the recorded baseline by this factor
#: before ``--check`` fails.  Generous because CI hosts are noisy; a
#: genuine pass added to the analyzer shows up well past 2x on at
#: least one app.
CHECK_FACTOR = 2.0


def analyzer_cost(
    *, repeats: int = 3, quiet: bool = False, save: bool = True
) -> SweepResult:
    """Time the verifier on all six apps; returns the sweep table."""
    from repro.analysis.dataflow import verify_file

    root = _repo_root()
    result = SweepResult(
        name="analyzer_cost",
        columns=[
            "app",
            "analyze_ms",
            "phases",
            "dep_edges",
            "findings",
            "certified",
        ],
        notes=(
            "Static dataflow verifier (repro.analysis.dataflow) host "
            f"cost per app, best of {repeats}; certified=True means "
            "every phase carries a conflict-freedom certificate."
        ),
    )
    for app, rel in APP_MODULES:
        path = os.path.join(root, rel)
        best = float("inf")
        diags: list = []
        summaries: list = []
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            diags, summaries = verify_file(path)
            best = min(best, time.perf_counter() - t0)
        result.rows.append(
            {
                "app": app,
                "analyze_ms": best * 1e3,
                "phases": sum(len(s.phases) for s in summaries),
                "dep_edges": sum(len(s.edges) for s in summaries),
                "findings": len(diags),
                "certified": all(s.certified for s in summaries)
                and bool(summaries),
            }
        )
    if save:
        text = save_result(result)
    else:
        from repro.bench.report import format_table

        text = format_table(result)
    if not quiet:
        print(text)
        chart = render_chart(result)
        if chart:
            print(chart)
    return result


def load_baseline(path: str | None = None) -> dict[str, float]:
    """Parse per-app ``analyze_ms`` from a recorded analyzer table.

    Returns ``{app: analyze_ms}``; raises :class:`FileNotFoundError`
    when no baseline has been recorded yet.
    """
    if path is None:
        path = os.path.join(
            _repo_root(), "bench_results", "analyzer_cost.txt"
        )
    known = {app for app, _ in APP_MODULES}
    baseline: dict[str, float] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            parts = line.split()
            if len(parts) >= 2 and parts[0] in known:
                baseline[parts[0]] = float(parts[1])
    if not baseline:
        raise ValueError(f"no analyzer rows found in {path}")
    return baseline


def check_regression(
    result: SweepResult,
    baseline: dict[str, float],
    *,
    factor: float = CHECK_FACTOR,
) -> list[str]:
    """Return one failure line per app exceeding ``factor``x baseline."""
    failures = []
    for row in result.rows:
        app = row["app"]
        base = baseline.get(app)
        if base is None:
            failures.append(f"{app}: no baseline recorded")
            continue
        now = row["analyze_ms"]
        if now > factor * base:
            failures.append(
                f"{app}: {now:.1f} ms > {factor:g}x baseline "
                f"({base:.1f} ms)"
            )
        if not row["certified"]:
            failures.append(f"{app}: lost its conflict-freedom certificate")
    return failures


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench analyzer",
        description="Time the static analyzer on the six shipped apps.",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per app (best-of; default 3)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare against bench_results/analyzer_cost.txt and fail "
            f"if any app exceeds {CHECK_FACTOR:g}x its recorded "
            "analyze_ms (the recorded file is left untouched)"
        ),
    )
    args = parser.parse_args(argv)

    if not args.check:
        analyzer_cost(repeats=args.repeats)
        return 0

    try:
        baseline = load_baseline()
    except (FileNotFoundError, ValueError) as exc:
        print(f"analyzer --check: cannot load baseline: {exc}")
        print("record one with `python -m repro.bench analyzer`")
        return 1
    result = analyzer_cost(repeats=args.repeats, save=False)
    failures = check_regression(result, baseline)
    if failures:
        print("analyzer cost regression:")
        for line in failures:
            print(f"  {line}")
        return 1
    worst = max(
        row["analyze_ms"] / baseline[row["app"]] for row in result.rows
    )
    print(
        f"analyzer cost ok: worst ratio {worst:.2f}x of recorded "
        f"baseline (gate {CHECK_FACTOR:g}x)"
    )
    return 0
