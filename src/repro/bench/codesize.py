"""Table 1: application code size, PPM vs MPI.

The paper counts the lines of each application's PPM and MPI source
(CG: 161 vs 733; matrix generation: 424 vs 744; Barnes-Hut: 499 vs
N/A) to argue that implicit communication/synchronisation removes most
of the hard code.  We apply the same measurement to this repository's
implementations: logical lines only — blank lines, comments and
docstrings excluded — counted with the tokenizer so the numbers aren't
gameable by formatting.

Shared code (problem generators, the traversal engine, serial
references) is excluded from both sides, exactly as the paper's
computation-kernel lines are common to both versions.
"""

from __future__ import annotations

import io
import os
import tokenize

import repro.apps as _apps
from repro.bench.harness import SweepResult

_APPS_DIR = os.path.dirname(_apps.__file__)

#: Application -> (PPM sources, MPI sources), relative to repro/apps.
TABLE1_FILES: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "Conjugate Gradient": (("cg/ppm_cg.py",), ("cg/mpi_cg.py",)),
    "Matrix Generation": (("collocation/ppm_gen.py",), ("collocation/mpi_gen.py",)),
    "Barnes Hut": (("barneshut/ppm_bh.py",), ("barneshut/mpi_bh.py",)),
}

#: Lines reported by the paper's Table 1 (MPI Barnes-Hut was N/A).
PAPER_TABLE1: dict[str, tuple[int, int | None]] = {
    "Conjugate Gradient": (161, 733),
    "Matrix Generation": (424, 744),
    "Barnes Hut": (499, None),
}


def count_loc(path: str) -> int:
    """Logical lines of code in a Python source file: lines carrying at
    least one real token (not comments, blank lines or docstrings)."""
    with open(path, "rb") as fh:
        source = fh.read()
    lines_with_code: set[int] = set()
    at_statement_start = True  # docstring detector state
    for tok in tokenize.tokenize(io.BytesIO(source).readline):
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if tok.type in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            at_statement_start = True
            continue
        if tok.type == tokenize.STRING and at_statement_start:
            # Expression-statement string at statement start: a
            # docstring (or a bare no-op string) — not code.
            continue
        at_statement_start = False
        for line in range(tok.start[0], tok.end[0] + 1):
            lines_with_code.add(line)
    return len(lines_with_code)


def _count_files(relpaths: tuple[str, ...]) -> int:
    return sum(count_loc(os.path.join(_APPS_DIR, rel)) for rel in relpaths)


def table1_codesize() -> SweepResult:
    """Regenerate Table 1 for this repository's implementations."""
    rows = []
    for app, (ppm_files, mpi_files) in TABLE1_FILES.items():
        paper_ppm, paper_mpi = PAPER_TABLE1[app]
        ppm_loc = _count_files(ppm_files)
        mpi_loc = _count_files(mpi_files)
        rows.append(
            {
                "application": app,
                "ppm_loc": ppm_loc,
                "mpi_loc": mpi_loc,
                "mpi/ppm": round(mpi_loc / ppm_loc, 2),
                "paper_ppm": paper_ppm,
                "paper_mpi": paper_mpi if paper_mpi is not None else "N/A",
            }
        )
    return SweepResult(
        name="table1_codesize",
        columns=["application", "ppm_loc", "mpi_loc", "mpi/ppm", "paper_ppm", "paper_mpi"],
        rows=rows,
        notes=(
            "Logical lines (tokenizer-counted; no blanks/comments/docstrings). "
            "Shared substrates (problem generators, traversal engine, serial "
            "references) excluded from both sides, as in the paper."
        ),
    )
